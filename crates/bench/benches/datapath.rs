//! Criterion benchmarks for the online data path: buffer recycling vs
//! per-frame allocation, and the end-to-end pooled tracker.

use criterion::{criterion_group, criterion_main, Criterion};
use runtime::{BufPool, OnlineExecutor, TrackerApp, TrackerConfig};
use vision::{change_detection, change_detection_into, BitMask, Frame, Scene};

const W: usize = 128;
const H: usize = 128;

fn bench_datapath(c: &mut Criterion) {
    let scene = Scene::demo(W, H, 4, 42);
    let prev = scene.render(0);
    let frame = scene.render(1);

    let mut g = c.benchmark_group("frame_produce");
    g.bench_function("render_alloc", |b| {
        b.iter(|| scene.render(std::hint::black_box(7)))
    });
    g.bench_function("render_pooled", |b| {
        let pool: BufPool<Frame> = BufPool::new(2);
        b.iter(|| {
            let mut buf = pool.take_or(|| Frame::new(W, H));
            scene.render_into(std::hint::black_box(7), &mut buf);
        });
    });
    g.finish();

    let mut g = c.benchmark_group("mask_produce");
    g.bench_function("change_alloc", |b| {
        b.iter(|| change_detection(std::hint::black_box(&frame), Some(&prev), 24))
    });
    g.bench_function("change_pooled", |b| {
        let mut buf = BitMask::new(W, H);
        b.iter(|| {
            change_detection_into(std::hint::black_box(&frame), Some(&prev), 24, &mut buf);
        });
    });
    g.finish();

    let mut g = c.benchmark_group("tracker_e2e_8_frames");
    g.sample_size(10);
    for (label, recycle) in [("alloc", false), ("pooled", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = TrackerConfig::small(2, 8);
                cfg.period = std::time::Duration::ZERO;
                cfg.recycle_buffers = recycle;
                let app = TrackerApp::build(&cfg, None);
                let stats = OnlineExecutor::run(&app, 0);
                std::hint::black_box(stats.frames_completed)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
