//! Criterion microbenchmarks for the vision kernels (the raw material for
//! calibrated cost models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vision::{
    change_detection, change_detection_scalar, detect_chunks, image_histogram,
    image_histogram_scalar, peak_detection, target_detection, target_detection_chunk, BitMask,
    Scene,
};

const W: usize = 160;
const H: usize = 120;

fn bench_kernels(c: &mut Criterion) {
    let scene = Scene::demo(W, H, 8, 42);
    let models = scene.models();
    let prev = scene.render(0);
    let frame = scene.render(1);
    let hist = image_histogram(&frame);
    let mask = BitMask::all_set(W, H);

    c.bench_function("histogram_t2", |b| {
        b.iter(|| image_histogram(std::hint::black_box(&frame)))
    });

    c.bench_function("change_detection_t3", |b| {
        b.iter(|| change_detection(std::hint::black_box(&frame), Some(&prev), 24))
    });

    let mut g = c.benchmark_group("target_detection_t4");
    for n in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("models", n), &n, |b, &n| {
            b.iter(|| target_detection(&frame, &hist, &models[..n], &mask))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("t4_chunk");
    for fp in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("fp", fp), &fp, |b, &fp| {
            let chunk = detect_chunks(W, H, 8, fp, 1)[0];
            b.iter(|| target_detection_chunk(&frame, &hist, &models, &mask, chunk))
        });
    }
    g.finish();

    let scores = target_detection(&frame, &hist, &models, &mask);
    c.bench_function("peak_detection_t5", |b| {
        b.iter(|| peak_detection(std::hint::black_box(&scores), 1.0))
    });

    c.bench_function("scene_render_t1", |b| {
        b.iter(|| scene.render(std::hint::black_box(7)))
    });

    // The ISSUE's headline criterion: row-sliced vs pixel-at-a-time
    // histogram at 128×128 (fast path must be ≥2× the scalar oracle).
    let scene128 = Scene::demo(128, 128, 4, 42);
    let f128 = scene128.render(1);
    let p128 = scene128.render(0);
    let mut g = c.benchmark_group("image_histogram_128");
    g.bench_function("sliced", |b| {
        b.iter(|| image_histogram(std::hint::black_box(&f128)))
    });
    g.bench_function("scalar", |b| {
        b.iter(|| image_histogram_scalar(std::hint::black_box(&f128)))
    });
    g.finish();

    let mut g = c.benchmark_group("change_detection_128");
    g.bench_function("linear", |b| {
        b.iter(|| change_detection(std::hint::black_box(&f128), Some(&p128), 24))
    });
    g.bench_function("scalar", |b| {
        b.iter(|| change_detection_scalar(std::hint::black_box(&f128), Some(&p128), 24))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
