//! Criterion benchmarks for the regime machinery: detection, replay, and a
//! full switching simulation — the run-time costs of constrained dynamism
//! ("perform a table look-up … perform a transition").

use criterion::{criterion_group, criterion_main, Criterion};

use cds_core::detector::RegimeDetector;
use cds_core::optimal::OptimalConfig;
use cds_core::switcher::{
    simulate_regime_switched, ScheduleStrategy, SwitchConfig, TransitionPolicy,
};
use cds_core::table::ScheduleTable;
use cluster::{ClusterSpec, FrameClock, StateTrack};
use taskgraph::{builders, AppState, Micros};

fn bench_regime(c: &mut Criterion) {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let states: Vec<AppState> = (0..=4u32).map(AppState::new).collect();
    let table = ScheduleTable::precompute(&graph, &cluster, &states, &OptimalConfig::default());
    let track = StateTrack::from_changes(vec![
        (0, AppState::new(1)),
        (50, AppState::new(4)),
        (120, AppState::new(2)),
        (200, AppState::new(3)),
    ]);

    c.bench_function("detector_observe", |b| {
        let mut d = RegimeDetector::new(AppState::new(1), 3);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 7;
            std::hint::black_box(d.observe(AppState::new(i / 3 + 1)))
        });
    });

    c.bench_function("table_lookup", |b| {
        b.iter(|| std::hint::black_box(table.get(&AppState::new(3))));
    });

    let mut g = c.benchmark_group("switching_simulation_300_frames");
    g.sample_size(20);
    for (name, strategy) in [
        ("static", ScheduleStrategy::Static(AppState::new(2))),
        (
            "regime_table",
            ScheduleStrategy::RegimeTable {
                confirm_after: 3,
                policy: TransitionPolicy::CutOver,
            },
        ),
        ("oracle", ScheduleStrategy::Oracle),
    ] {
        g.bench_function(name, |b| {
            let cfg = SwitchConfig {
                clock: FrameClock::new(Micros::from_millis(500), 300),
                strategy,
                warmup_frames: 2,
            };
            b.iter(|| simulate_regime_switched(&graph, &cluster, &table, &track, &cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_regime);
criterion_main!(benches);
