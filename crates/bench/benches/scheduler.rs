//! Criterion benchmarks for the scheduling core: how long does the offline
//! phase take? (The paper: "since the resulting schedule will be operating
//! for months, we can afford to evaluate all legal schedules".)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;

use cds_core::expand::ExpandedGraph;
use cds_core::ii::find_best_ii;
use cds_core::listsched::list_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::persist::ScheduleCache;
use cds_core::table::ScheduleTable;
use cluster::ClusterSpec;
use taskgraph::{builders, AppState, Decomposition};

fn bench_scheduler(c: &mut Criterion) {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);

    let mut g = c.benchmark_group("optimal_schedule");
    g.sample_size(10);
    for n in [1u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("models", n), &n, |b, &n| {
            let state = AppState::new(n);
            b.iter(|| optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default()))
        });
    }
    g.finish();

    c.bench_function("list_schedule_mp8", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(1, 8));
        let e = ExpandedGraph::build(&graph, &state, &d);
        b.iter(|| list_schedule(&e, &cluster))
    });

    c.bench_function("find_best_ii", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(1, 8));
        let e = ExpandedGraph::build(&graph, &state, &d);
        let s = list_schedule(&e, &cluster);
        b.iter(|| find_best_ii(&s, 4))
    });

    c.bench_function("expand_graph", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(4, 8));
        b.iter(|| ExpandedGraph::build(&graph, &state, &d))
    });

    // Parallel fan-out vs the serial search (same optimum, different
    // wall-clock; on a 1-CPU host the two coincide).
    let mut g = c.benchmark_group("search_threads");
    g.sample_size(10);
    let state8 = AppState::new(8);
    for threads in [1usize, OptimalConfig::default().effective_threads()] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            let cfg = OptimalConfig {
                threads: t,
                ..OptimalConfig::default()
            };
            b.iter(|| optimal_schedule(&graph, &cluster, &state8, &cfg))
        });
    }
    g.finish();

    // Dominance memo on vs off.
    let mut g = c.benchmark_group("dominance");
    g.sample_size(10);
    for cap in [0usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("cap", cap), &cap, |b, &cap| {
            let cfg = OptimalConfig {
                dominance_cap: cap,
                ..OptimalConfig::default()
            };
            b.iter(|| optimal_schedule(&graph, &cluster, &state8, &cfg))
        });
    }
    g.finish();

    // Cold table build vs warm rebuild from the persistent cache.
    let mut g = c.benchmark_group("table_build");
    g.sample_size(10);
    let states: Vec<AppState> = [1u32, 4, 8].iter().map(|&n| AppState::new(n)).collect();
    g.bench_function("cold", |b| {
        b.iter(|| {
            ScheduleTable::precompute_with_cache(
                &graph,
                &cluster,
                &states,
                &OptimalConfig::default(),
                None,
            )
        })
    });
    g.bench_function("warm_cache", |b| {
        let dir = std::env::temp_dir().join(format!("cds-bench-cache-{}", std::process::id()));
        let cache = ScheduleCache::open(&dir).expect("cache dir");
        // Prime once; the measured body is pure load+validate.
        let _ = ScheduleTable::precompute_with_cache(
            &graph,
            &cluster,
            &states,
            &OptimalConfig::default(),
            Some(&cache),
        );
        b.iter(|| {
            ScheduleTable::precompute_with_cache(
                &graph,
                &cluster,
                &states,
                &OptimalConfig::default(),
                Some(&cache),
            )
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
