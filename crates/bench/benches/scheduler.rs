//! Criterion benchmarks for the scheduling core: how long does the offline
//! phase take? (The paper: "since the resulting schedule will be operating
//! for months, we can afford to evaluate all legal schedules".)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;

use cds_core::expand::ExpandedGraph;
use cds_core::ii::find_best_ii;
use cds_core::listsched::list_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cluster::ClusterSpec;
use taskgraph::{builders, AppState, Decomposition};

fn bench_scheduler(c: &mut Criterion) {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);

    let mut g = c.benchmark_group("optimal_schedule");
    g.sample_size(10);
    for n in [1u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("models", n), &n, |b, &n| {
            let state = AppState::new(n);
            b.iter(|| optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default()))
        });
    }
    g.finish();

    c.bench_function("list_schedule_mp8", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(1, 8));
        let e = ExpandedGraph::build(&graph, &state, &d);
        b.iter(|| list_schedule(&e, &cluster))
    });

    c.bench_function("find_best_ii", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(1, 8));
        let e = ExpandedGraph::build(&graph, &state, &d);
        let s = list_schedule(&e, &cluster);
        b.iter(|| find_best_ii(&s, 4))
    });

    c.bench_function("expand_graph", |b| {
        let state = AppState::new(8);
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(4, 8));
        b.iter(|| ExpandedGraph::build(&graph, &state, &d))
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
