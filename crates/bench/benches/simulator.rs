//! Criterion benchmarks for the online simulator event engine: the frozen
//! pre-overhaul reference (`simulate_online_ref`) against the arena engine
//! at each trace mode, plus the sweep driver over a small Fig. 3 grid.

use criterion::{criterion_group, criterion_main, Criterion};

use cluster::sweep::{sweep, SweepConfig};
use cluster::{simulate_online_ref, ClusterSpec, FrameClock, OnlineConfig, SimArena, TraceMode};
use taskgraph::{builders, AppState, Decomposition, Micros, TaskGraph};

const FRAMES: u64 = 40;

fn config(graph: &TaskGraph, period_ms: u64) -> OnlineConfig {
    let t4 = graph.task_by_name("Target Detection").unwrap();
    let mut cfg = OnlineConfig::new(
        FrameClock::new(Micros::from_millis(period_ms), FRAMES),
        AppState::new(8),
    );
    cfg.decomposition.insert(t4, Decomposition::new(1, 8));
    cfg.channel_capacity = 3;
    cfg.warmup_frames = 4;
    cfg.quantum = Some(Micros::from_millis(20));
    cfg
}

fn bench_simulator(c: &mut Criterion) {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);

    // One saturated run (period well under the pipeline's service rate):
    // the old engine vs the arena engine under each trace mode.
    let mut g = c.benchmark_group("online_sim_saturated");
    g.sample_size(20);
    g.bench_function("reference_engine", |b| {
        b.iter(|| simulate_online_ref(&graph, &cluster, config(&graph, 33)))
    });
    for (label, mode) in [
        ("arena_full_trace", TraceMode::Full),
        ("arena_summary", TraceMode::Summary),
        ("arena_trace_off", TraceMode::Off),
    ] {
        g.bench_function(label, |b| {
            let mut arena = SimArena::new();
            let mut cfg = config(&graph, 33);
            cfg.trace_mode = mode;
            b.iter(|| arena.simulate(&graph, &cluster, &cfg));
        });
    }
    g.finish();

    // A small tuning-curve-shaped sweep: the historical per-run style vs
    // the sweep driver with arena reuse.
    let periods: Vec<u64> = vec![33, 66, 100, 200, 400, 1000, 2500, 5000];
    let mut g = c.benchmark_group("tuning_sweep_8_periods");
    g.sample_size(10);
    g.bench_function("per_run_reference", |b| {
        b.iter(|| {
            periods
                .iter()
                .map(|&p| simulate_online_ref(&graph, &cluster, config(&graph, p)).metrics)
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("sweep_driver", |b| {
        b.iter(|| {
            sweep(SweepConfig::serial(), periods.clone(), |arena, _, p| {
                let mut cfg = config(&graph, p);
                cfg.trace_mode = TraceMode::Off;
                arena.simulate(&graph, &cluster, &cfg).metrics
            })
            .results
        })
    });
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
