//! Criterion benchmarks for the Space-Time Memory substrate: channel
//! operation costs and a two-thread pipeline round trip.

use criterion::{criterion_group, criterion_main, Criterion};
use stm::{Channel, Timestamp, TsSpec};

fn bench_stm(c: &mut Criterion) {
    c.bench_function("put_get_consume_cycle", |b| {
        let ch: Channel<u64> = Channel::new("bench");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut ts = 0u64;
        b.iter(|| {
            out.put(Timestamp(ts), ts).unwrap();
            let got = inp.try_get(TsSpec::Exact(Timestamp(ts))).unwrap();
            std::hint::black_box(*got.value);
            inp.consume(Timestamp(ts)).unwrap();
            ts += 1;
        });
    });

    c.bench_function("newest_unseen_scan", |b| {
        let ch: Channel<u64> = Channel::new("bench2");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let _hold = ch.attach_input(); // keeps items live
        for ts in 0..64u64 {
            out.put(Timestamp(ts), ts).unwrap();
        }
        let mut ts = 64u64;
        b.iter(|| {
            out.put(Timestamp(ts), ts).unwrap();
            let got = inp.try_get(TsSpec::NewestUnseen).unwrap();
            std::hint::black_box(got.ts);
            ts += 1;
        });
    });

    c.bench_function("put_many_batch_64", |b| {
        let ch: Channel<u64> = Channel::new("bench_batch");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut ts = 0u64;
        b.iter(|| {
            let base = ts;
            out.put_many((base..base + 64).map(|t| (Timestamp(t), t)))
                .unwrap();
            inp.consume_range(Timestamp(base), Timestamp(base + 64));
            ts += 64;
        });
    });

    c.bench_function("put_loop_64", |b| {
        let ch: Channel<u64> = Channel::new("bench_loop");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut ts = 0u64;
        b.iter(|| {
            let base = ts;
            for t in base..base + 64 {
                out.put(Timestamp(t), t).unwrap();
            }
            for t in base..base + 64 {
                inp.consume(Timestamp(t)).unwrap();
            }
            ts += 64;
        });
    });

    c.bench_function("snapshot_read", |b| {
        let ch: Channel<u64> = Channel::new("bench_snap");
        let out = ch.attach_output();
        let _hold = ch.attach_input();
        for ts in 0..64u64 {
            out.put(Timestamp(ts), ts).unwrap();
        }
        b.iter(|| std::hint::black_box(ch.snapshot()));
    });

    c.bench_function("cross_thread_pipeline_1000", |b| {
        b.iter(|| {
            let ch: Channel<u64> = Channel::with_capacity("pipe", 16);
            let out = ch.attach_output();
            let inp = ch.attach_input();
            let producer = std::thread::spawn(move || {
                for ts in 0..1000u64 {
                    out.put(Timestamp(ts), ts).unwrap();
                }
            });
            let mut sum = 0u64;
            for _ in 0..1000u64 {
                let got = inp.get(TsSpec::NextUnseen).unwrap();
                sum += *got.value;
                inp.consume_through(got.ts);
            }
            producer.join().unwrap();
            std::hint::black_box(sum)
        });
    });
}

criterion_group!(benches, bench_stm);
criterion_main!(benches);
