//! Ablation — how much does each ingredient of the Fig. 6 algorithm buy?
//! Across every regime (1–8 models), compare:
//!
//! * naive software pipelining (Fig. 4(b)) — no latency optimization;
//! * list scheduling over the best decomposition — a classic heuristic;
//! * the optimal enumerator without data decompositions (Fig. 5(a));
//! * the full optimal enumerator (Fig. 5(b)).

use std::collections::BTreeMap;

use cds_core::expand::ExpandedGraph;
use cds_core::ii::find_best_ii;
use cds_core::listsched::list_schedule;
use cds_core::optimal::{decomposition_combos, optimal_schedule, OptimalConfig};
use cds_core::pipeline::naive_pipeline;
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table};
use taskgraph::{builders, AppState, Micros};

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);

    println!("Ablation: scheduling strategies across regimes (4 processors)");

    let mut rows = Vec::new();
    let mut all_pass = true;
    for n in 1..=8u32 {
        let state = AppState::new(n);

        let pipe = naive_pipeline(&graph, &cluster, &state);

        // Best list schedule over all decompositions.
        let (list_lat, list_ii) = decomposition_combos(&graph, &state, true)
            .into_iter()
            .map(|d| {
                let e = ExpandedGraph::build(&graph, &state, &d);
                let s = list_schedule(&e, &cluster);
                let p = find_best_ii(&s, cluster.n_procs());
                (s.latency, p.ii)
            })
            .min()
            .unwrap();

        let cfg_task = OptimalConfig {
            explore_decompositions: false,
            ..OptimalConfig::default()
        };
        let task_only = optimal_schedule(&graph, &cluster, &state, &cfg_task);
        let full = optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default());

        let ok = full.minimal_latency <= list_lat
            && full.minimal_latency <= task_only.minimal_latency
            && task_only.minimal_latency <= pipe.iteration.latency;
        all_pass &= ok;

        let s = |m: Micros| format!("{:.3}", m.as_secs_f64());
        rows.push(vec![
            n.to_string(),
            s(pipe.iteration.latency),
            s(list_lat),
            s(task_only.minimal_latency),
            s(full.minimal_latency),
            s(full.best.ii),
            full.nodes_explored.to_string(),
            full.candidates.to_string(),
        ]);
        csv_line(&[
            "ablation".to_string(),
            n.to_string(),
            format!("{:.4}", pipe.iteration.latency.as_secs_f64()),
            format!("{:.4}", list_lat.as_secs_f64()),
            format!("{:.4}", task_only.minimal_latency.as_secs_f64()),
            format!("{:.4}", full.minimal_latency.as_secs_f64()),
            format!("{:.4}", full.best.ii.as_secs_f64()),
        ]);
        let _ = list_ii;
    }
    print_table(
        "Iteration latency (s) by strategy and regime",
        &[
            "models",
            "pipeline",
            "list(best decomp)",
            "optimal(no DP)",
            "optimal(full)",
            "optimal II",
            "B&B nodes",
            "|S|",
        ],
        &rows,
    );

    // The headline regime claim: the optimal decomposition changes with
    // the state.
    let t4 = graph.task_by_name("Target Detection").unwrap();
    let mut decomp_by_state: BTreeMap<u32, String> = BTreeMap::new();
    for n in 1..=8u32 {
        let r = optimal_schedule(
            &graph,
            &cluster,
            &AppState::new(n),
            &OptimalConfig::default(),
        );
        let d = r
            .best
            .iteration
            .decomp
            .get(&t4)
            .map_or("serial".to_string(), ToString::to_string);
        decomp_by_state.insert(n, d);
    }
    println!("\noptimal T4 decomposition per regime:");
    for (n, d) in &decomp_by_state {
        println!("  {n} models → {d}");
    }
    let distinct: std::collections::HashSet<&String> = decomp_by_state.values().collect();

    println!("\nshape checks:");
    let checks = [
        (
            "optimal <= list <= pipeline orderings hold in every regime",
            all_pass,
        ),
        (
            "the optimal decomposition is regime-dependent",
            distinct.len() > 1,
        ),
    ];
    for (name, ok) in checks {
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    }
}
