//! Ablation — how much does each ingredient of the Fig. 6 algorithm buy?
//! Across every regime (1–8 models), compare:
//!
//! * naive software pipelining (Fig. 4(b)) — no latency optimization;
//! * list scheduling over the best decomposition — a classic heuristic;
//! * the optimal enumerator without data decompositions (Fig. 5(a));
//! * the full optimal enumerator (Fig. 5(b)).
//!
//! The per-regime work items are independent, so they run through the
//! parallel sweep driver; results come back in regime order.

use cds_core::expand::ExpandedGraph;
use cds_core::ii::find_best_ii;
use cds_core::listsched::list_schedule;
use cds_core::optimal::{decomposition_combos, optimal_schedule, OptimalConfig};
use cds_core::pipeline::naive_pipeline;
use cluster::sweep::{sweep, SweepConfig};
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState, Micros};

struct RegimeResult {
    n: u32,
    pipe_lat: Micros,
    list_lat: Micros,
    task_only_lat: Micros,
    full_lat: Micros,
    full_ii: Micros,
    nodes_explored: u64,
    candidates: usize,
    t4_decomp: String,
    ordering_ok: bool,
}

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let t4 = graph.task_by_name("Target Detection").unwrap();

    println!("Ablation: scheduling strategies across regimes (4 processors)");

    let out = sweep(SweepConfig::new(), (1..=8u32).collect(), |_, _, n| {
        let state = AppState::new(n);

        let pipe = naive_pipeline(&graph, &cluster, &state);

        // Best list schedule over all decompositions.
        let (list_lat, _list_ii) = decomposition_combos(&graph, &state, true)
            .into_iter()
            .map(|d| {
                let e = ExpandedGraph::build(&graph, &state, &d);
                let s = list_schedule(&e, &cluster);
                let p = find_best_ii(&s, cluster.n_procs());
                (s.latency, p.ii)
            })
            .min()
            .unwrap();

        let cfg_task = OptimalConfig {
            explore_decompositions: false,
            ..OptimalConfig::default()
        };
        let task_only = optimal_schedule(&graph, &cluster, &state, &cfg_task);
        let full = optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default());

        let ordering_ok = full.minimal_latency <= list_lat
            && full.minimal_latency <= task_only.minimal_latency
            && task_only.minimal_latency <= pipe.iteration.latency;

        RegimeResult {
            n,
            pipe_lat: pipe.iteration.latency,
            list_lat,
            task_only_lat: task_only.minimal_latency,
            full_lat: full.minimal_latency,
            full_ii: full.best.ii,
            nodes_explored: full.nodes_explored,
            candidates: full.candidates,
            t4_decomp: full
                .best
                .iteration
                .decomp
                .get(&t4)
                .map_or("serial".to_string(), ToString::to_string),
            ordering_ok,
        }
    });
    println!("regime sweep: {}", out.stats);

    let mut rows = Vec::new();
    let mut all_pass = true;
    for r in &out.results {
        all_pass &= r.ordering_ok;
        let s = |m: Micros| format!("{:.3}", m.as_secs_f64());
        rows.push(vec![
            r.n.to_string(),
            s(r.pipe_lat),
            s(r.list_lat),
            s(r.task_only_lat),
            s(r.full_lat),
            s(r.full_ii),
            r.nodes_explored.to_string(),
            r.candidates.to_string(),
        ]);
        csv_line(&[
            "ablation".to_string(),
            r.n.to_string(),
            format!("{:.4}", r.pipe_lat.as_secs_f64()),
            format!("{:.4}", r.list_lat.as_secs_f64()),
            format!("{:.4}", r.task_only_lat.as_secs_f64()),
            format!("{:.4}", r.full_lat.as_secs_f64()),
            format!("{:.4}", r.full_ii.as_secs_f64()),
        ]);
    }
    print_table(
        "Iteration latency (s) by strategy and regime",
        &[
            "models",
            "pipeline",
            "list(best decomp)",
            "optimal(no DP)",
            "optimal(full)",
            "optimal II",
            "B&B nodes",
            "|S|",
        ],
        &rows,
    );

    // The headline regime claim: the optimal decomposition changes with
    // the state (reusing the full results from the sweep above).
    println!("\noptimal T4 decomposition per regime:");
    for r in &out.results {
        println!("  {} models → {}", r.n, r.t4_decomp);
    }
    let distinct: std::collections::HashSet<&String> =
        out.results.iter().map(|r| &r.t4_decomp).collect();

    println!("\nshape checks:");
    let checks = [
        (
            "optimal <= list <= pipeline orderings hold in every regime",
            all_pass,
        ),
        (
            "the optimal decomposition is regime-dependent",
            distinct.len() > 1,
        ),
    ];
    run_checks(&checks);
}
