//! Adaptation-loop report — drift-triggered online re-scheduling end to end.
//!
//! One binary demonstrates the whole PR-6 subsystem:
//!
//! 1. **Calibrate**: runs the live tracker briefly and fits the task
//!    graph's cost models to the *measured* per-stage compute on this
//!    machine (the paper's costs are modeled at 1990s scale; the
//!    adaptation loop compares measured against predicted, so predictions
//!    must start honest). The schedule table is precomputed from the
//!    fitted graph.
//! 2. **Drift run**: re-runs the tracker with an [`AdaptLoop`] attached
//!    while a planned compute-slow window inflates Peak Detection's cost
//!    ~50x mid-run. The loop must detect the sustained drift from the cost
//!    feed, launch a warm-started background re-search, and atomically
//!    swap the result into the [`RegimeController`] between frames. The
//!    detection→swap latency and per-phase deadline-miss counts (before /
//!    during / after the drift window, judged against a frame budget from
//!    the reconstructed end-to-end latencies) are reported from the trace.
//! 3. **Warm vs cold**: compares warm-started vs cold branch-and-bound on
//!    the rescaled graph (the exact search the loop launches).
//! 4. **Synthesis + restart**: confirms a regime the offline table never
//!    covered is synthesized online, persisted through the schedule cache,
//!    and served *without a search* by a fresh loop sharing the cache.
//!
//! Output goes to stdout and (by default) `results/adapt.txt`; `--json PATH`
//! additionally writes a machine-readable report. Exit code is non-zero when
//! a structural check fails (drift not detected, swap never landing, restart
//! re-searching instead of hitting the cache).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cds_core::optimal::{optimal_schedule_warm, OptimalConfig};
use cds_core::table::ScheduleTable;
use cluster::ClusterSpec;
use kiosk_bench::{Json, JsonReport};
use obs::{FrameOutcome, SpanKind, TraceMode};
use runtime::{
    AdaptConfig, AdaptLoop, FaultPlan, OnlineExecutor, RegimeController, Stage, TrackerApp,
    TrackerConfig,
};
use taskgraph::{builders, AppState, TaskGraph, TaskId};
use vision::Scene;

struct Args {
    frames: u64,
    quick: bool,
    out: String,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 120,
        quick: false,
        out: "results/adapt.txt".to_string(),
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frames" => {
                let v = it.next().expect("--frames needs a value");
                args.frames = v.parse().expect("--frames must be an integer");
            }
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: adapt [--frames N] [--quick] [--out PATH] [--json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.quick {
        args.frames = args.frames.min(64);
    }
    args
}

/// Pump the loop's frame-boundary hook past the end of the run until the
/// given install count is reached (a longer run would keep calling it);
/// returns whether it was reached within the timeout.
fn pump_until_installs(adapt: &AdaptLoop, from_frame: u64, target: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut frame = from_frame;
    while adapt.stats().installs < target {
        if Instant::now() >= deadline {
            return false;
        }
        adapt.on_frame(frame);
        frame += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

fn decomp_of(sched: &cds_core::schedule::PipelinedSchedule, t: TaskId) -> (u32, u32) {
    sched
        .iteration
        .decomp
        .get(&t)
        .map_or((1, 1), |d| (d.fp, d.mp))
}

/// Run a short uninstrumented-policy run and fit every task's cost model to
/// the measured mean compute on this machine: scale each cost by
/// measured/predicted so the fitted graph predicts roughly what the feed
/// will measure. This is how a deployment would seed the table — the
/// paper's modeled costs are only as good as their calibration.
fn fit_costs(
    graph: &TaskGraph,
    table: &ScheduleTable,
    t4: TaskId,
    n_models: u32,
) -> (TaskGraph, u64) {
    let calib_frames = 16u64;
    let ctl = Arc::new(
        RegimeController::from_schedule_table(table, t4, n_models, 2).expect("non-empty table"),
    );
    // window > calib_frames: the loop never evaluates; it is only here to
    // wire its cost feed through the stage bodies.
    let lp = AdaptLoop::new(
        AdaptConfig {
            window: u64::MAX,
            ..AdaptConfig::default()
        },
        graph.clone(),
        ClusterSpec::single_node(4),
        table.clone(),
        t4,
        ctl,
    );
    let mut cfg = TrackerConfig::small(n_models as usize, calib_frames);
    cfg.channel_capacity = calib_frames as usize + 2;
    let scene = Scene::demo(cfg.width, cfg.height, cfg.n_targets, cfg.seed);
    let app = TrackerApp::build_adaptive(&cfg, scene, None, Some(Arc::clone(&lp)));
    let _ = OnlineExecutor::run(&app, 4);

    let state = AppState::new(n_models);
    let mut fitted = graph.clone();
    let mut max_us = 1u64;
    for (i, (count, sum_ns)) in lp.feed().take().iter().enumerate() {
        if *count == 0 || i >= graph.n_tasks() {
            continue;
        }
        let measured_us = (sum_ns / count / 1000).max(1);
        max_us = max_us.max(measured_us);
        let predicted_us = graph.task(TaskId(i)).cost.eval(&state).0.max(1);
        fitted = fitted.with_scaled_cost(TaskId(i), measured_us, predicted_us);
    }
    (fitted, max_us)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let mut report = String::new();
    let mut failures: Vec<String> = Vec::new();
    macro_rules! out {
        ($($t:tt)*) => {{
            let line = format!($($t)*);
            println!("{line}");
            let _ = writeln!(report, "{line}");
        }};
    }

    out!("== adapt: drift-triggered online re-scheduling ==");

    // ---- 1. Calibrate: fit cost models to this machine. ----
    let paper_graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let t4 = paper_graph
        .task_by_name("Target Detection")
        .expect("tracker graph has T4");
    let t5 = paper_graph
        .task_by_name("Peak Detection")
        .expect("tracker graph has T5");
    let search = OptimalConfig::default().serial();
    let states: Vec<AppState> = [1u32, 2].iter().map(|&n| AppState::new(n)).collect();
    let paper_table = ScheduleTable::precompute(&paper_graph, &cluster, &states, &search);

    let (graph, max_stage_us) = fit_costs(&paper_graph, &paper_table, t4, 2);
    let table = ScheduleTable::precompute(&graph, &cluster, &states, &search);
    out!(
        "calibration: 16-frame run fits each stage's cost model to measured compute (max stage {:.1}ms)",
        max_stage_us as f64 / 1e3
    );
    for s in &states {
        let sched = table.get(s).expect("state was precomputed");
        let (fp, mp) = decomp_of(sched, t4);
        out!(
            "fitted regime {}: L*={}us FP={fp} MP={mp}",
            s.n_models,
            sched.latency().0
        );
    }

    // ---- 2. Drift run. ----
    // Drift window: the middle half of the run. Peak Detection gains 10 ms
    // per frame — orders of magnitude over its fitted sub-millisecond cost,
    // far beyond the 3x drift tolerance, sustained across every evaluation
    // window in the drift phase. The period is derived from the calibrated
    // max stage cost so utilization stays low: the slowest stage plus the
    // injected slow must fit inside one period, or the backlog (not the
    // drift) would dominate the latency profile.
    let n_frames = args.frames;
    let drift_from = n_frames / 4;
    let drift_to = (3 * n_frames) / 4;
    let slow = Duration::from_millis(10);
    let period = Duration::from_micros(2 * max_stage_us + 12_000) + slow;

    let controller =
        Arc::new(RegimeController::from_schedule_table(&table, t4, 2, 2).expect("non-empty table"));
    let adapt = AdaptLoop::new(
        AdaptConfig {
            tolerance: 2.0,
            window: 8,
            confirm_windows: 2,
            cooldown_frames: 16,
            search: search.clone(),
            cache_dir: None,
        },
        graph.clone(),
        cluster.clone(),
        table.clone(),
        t4,
        Arc::clone(&controller),
    );
    let sched_before = adapt.schedule_for(2).expect("state 2 precomputed");

    let plan = FaultPlan::new().slow_window(Stage::Peak, drift_from, drift_to, slow);
    let inj = plan.build();
    let mut cfg = TrackerConfig::small(2, n_frames);
    cfg.period = period;
    cfg.channel_capacity = n_frames as usize + 2;
    cfg.faults = Some(Arc::clone(&inj));
    cfg.trace = Some(TraceMode::Full);
    let scene = Scene::demo(cfg.width, cfg.height, cfg.n_targets, cfg.seed);
    let app = TrackerApp::build_adaptive(
        &cfg,
        scene,
        Some(Arc::clone(&controller)),
        Some(Arc::clone(&adapt)),
    );

    let t_run = Instant::now();
    let stats = OnlineExecutor::run(&app, 0);
    let run_wall = t_run.elapsed();
    out!(
        "drift run: frames={n_frames} period={period:?} drift=[{drift_from},{drift_to}) slow=+{slow:?} -> completed={} wall={:.2}s",
        stats.frames_completed,
        run_wall.as_secs_f64()
    );
    if inj.injected().slows == 0 {
        failures.push("no compute-slow faults fired".to_string());
    }

    // The search may still be in flight at run end; keep driving the hook.
    let landed = pump_until_installs(&adapt, n_frames, 1);
    let a = adapt.stats();
    out!(
        "adaptation: windows={} drift_windows={} launches={} installs={} swaps={}",
        a.windows,
        a.drift_windows,
        a.launches,
        a.installs,
        controller.swaps()
    );
    if a.drift_windows < 2 {
        failures.push(format!(
            "injected drift not detected: {} drifting windows",
            a.drift_windows
        ));
    }
    if !landed {
        failures.push("re-searched schedule never installed".to_string());
    }
    match (a.last_detect_to_swap, a.last_search_time) {
        (Some(d2s), Some(st)) => out!(
            "detection->swap latency: {:.1}ms (pure search {:.1}ms, {} nodes explored)",
            d2s.as_secs_f64() * 1e3,
            st.as_secs_f64() * 1e3,
            a.last_nodes_explored
        ),
        _ => failures.push("no detection->swap latency recorded".to_string()),
    }
    if let Some(sched_after) = adapt.schedule_for(2) {
        let (bfp, bmp) = decomp_of(&sched_before, t4);
        let (afp, amp) = decomp_of(&sched_after, t4);
        out!(
            "schedule for regime 2: FP={bfp} MP={bmp} L*={}us -> FP={afp} MP={amp} L*={}us (re-fitted to drifted costs)",
            sched_before.latency().0,
            sched_after.latency().0
        );
    }

    // ---- Deadline-miss recovery, phase by phase from the trace. ----
    let dump = app.recorder.as_ref().expect("trace was requested").drain();
    let swap_frame = dump
        .spans
        .iter()
        .find(|s| s.kind == SpanKind::Resched && s.chunk.is_some())
        .map(|s| s.frame);
    match swap_frame {
        Some(f) => out!("swap landed at frame {f} (Resched instant on the trace)"),
        None => out!("swap landed after the run's last frame (no in-run Resched instant)"),
    }
    let frames = obs::frames::reconstruct(&dump);
    let phase = |f: u64| -> usize {
        if f < drift_from {
            0
        } else if f < drift_to {
            1
        } else {
            2
        }
    };
    let latency_of = |fl: &obs::FrameLife| -> Option<u64> {
        match (fl.digitize_ns, fl.commit_ns) {
            (Some(d), Some(c)) if fl.outcome == FrameOutcome::Committed => {
                Some(c.saturating_sub(d))
            }
            _ => None,
        }
    };
    // Self-calibrating frame budget: the pre-drift median end-to-end
    // latency plus half the injected slow — well above baseline noise,
    // well below a drifted frame.
    let mut pre_lat: Vec<u64> = frames
        .iter()
        .filter(|fl| phase(fl.frame) == 0)
        .filter_map(&latency_of)
        .collect();
    pre_lat.sort_unstable();
    let pre_median = pre_lat.get(pre_lat.len() / 2).copied().unwrap_or(0);
    let budget = Duration::from_nanos(pre_median) + slow / 2;
    // (committed-in-budget, missed) per phase; a frame misses when its
    // end-to-end latency exceeds the budget or it never committed.
    let mut counts = [(0u64, 0u64); 3];
    for fl in &frames {
        let e = &mut counts[phase(fl.frame)];
        match latency_of(fl) {
            Some(ns) if Duration::from_nanos(ns) <= budget => e.0 += 1,
            _ => e.1 += 1,
        }
    }
    out!(
        "deadline misses by phase (budget {:.1}ms = pre-drift median {:.1}ms + half the slow):",
        budget.as_secs_f64() * 1e3,
        pre_median as f64 / 1e6
    );
    for (name, (ok, missed)) in ["pre-drift", "drift", "post-drift"].iter().zip(&counts) {
        out!("  {name:<10}  {ok:>4} in budget  {missed:>4} missed");
    }
    if counts[1].1 == 0 {
        failures.push("drift phase produced no deadline misses".to_string());
    }
    if counts[2].0 == 0 {
        failures.push("no deadline-miss recovery after the drift window".to_string());
    }
    out!(
        "note: the injected slowdown ends with the fault window, so the miss recovery at frame {drift_to} reflects the injection ending; the swap's contribution is the re-fitted schedule above, not the disappearance of an artificial sleep"
    );

    // ---- 3. Warm vs cold re-search on the rescaled graph. ----
    // Paper-scale costs: the larger search space makes the incumbent's
    // pruning visible (the fitted graph's space is small enough that both
    // searches touch every node).
    let scaled: TaskGraph = paper_graph.with_scaled_cost(t5, 20, 1);
    let warm_seed = paper_table.get(&AppState::new(2)).cloned();
    let t0 = Instant::now();
    let cold = optimal_schedule_warm(&scaled, &cluster, &AppState::new(2), &search, None);
    let cold_t = t0.elapsed();
    let t0 = Instant::now();
    let warm = optimal_schedule_warm(
        &scaled,
        &cluster,
        &AppState::new(2),
        &search,
        warm_seed.as_ref(),
    );
    let warm_t = t0.elapsed();
    out!(
        "re-search (Peak cost x20): cold {} nodes {:.1}ms, warm {} nodes {:.1}ms",
        cold.nodes_explored,
        cold_t.as_secs_f64() * 1e3,
        warm.nodes_explored,
        warm_t.as_secs_f64() * 1e3
    );
    if warm.best.latency() != cold.best.latency() {
        failures.push(format!(
            "warm and cold searches disagree on L* ({} vs {})",
            warm.best.latency().0,
            cold.best.latency().0
        ));
    }
    if warm.nodes_explored > cold.nodes_explored {
        failures.push(format!(
            "warm start explored more nodes than cold ({} > {})",
            warm.nodes_explored, cold.nodes_explored
        ));
    }

    // ---- 4. Unknown-regime synthesis + restart through the cache. ----
    let cache_dir = std::env::temp_dir().join(format!("cds_adapt_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let adapt_cfg = AdaptConfig {
        cache_dir: Some(cache_dir.clone()),
        ..AdaptConfig::default()
    };
    let synth_loop = |label: &str, failures: &mut Vec<String>| -> Option<(u64, Duration)> {
        let ctl = Arc::new(
            RegimeController::from_schedule_table(&table, t4, 2, 1).expect("non-empty table"),
        );
        let lp = AdaptLoop::new(
            adapt_cfg.clone(),
            graph.clone(),
            cluster.clone(),
            table.clone(),
            t4,
            Arc::clone(&ctl),
        );
        // A confirmed state the offline table never covered: 4 models.
        ctl.observe(4);
        if ctl.pending_synthesis() != Some(4) {
            failures.push(format!("{label}: state 4 not parked for synthesis"));
            return None;
        }
        if !pump_until_installs(&lp, 0, 1) {
            failures.push(format!("{label}: synthesized schedule never installed"));
            return None;
        }
        let s = lp.stats();
        if !ctl.has_regime(4) {
            failures.push(format!("{label}: regime 4 missing after install"));
        }
        Some((
            s.last_nodes_explored,
            s.last_detect_to_swap.unwrap_or_default(),
        ))
    };
    let synth_res = synth_loop("synthesis", &mut failures);
    if let Some((nodes, d2s)) = synth_res {
        out!(
            "synthesis of unseen regime 4: {} nodes, detection->swap {:.1}ms, persisted to cache",
            nodes,
            d2s.as_secs_f64() * 1e3
        );
        if nodes == 0 {
            failures.push("first synthesis should be a real search, not a cache hit".to_string());
        }
    }
    let restart_res = synth_loop("restart", &mut failures);
    if let Some((nodes, d2s)) = restart_res {
        out!(
            "restart (fresh loop, same cache): {} nodes, detection->swap {:.1}ms",
            nodes,
            d2s.as_secs_f64() * 1e3
        );
        if nodes == 0 {
            out!("restart served regime 4 from the persistent cache without searching");
        } else {
            failures.push(format!(
                "restart re-searched ({nodes} nodes) instead of hitting the cache"
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // ---- Machine-readable report. ----
    if let Some(path) = &args.json {
        let mut json = JsonReport::new("adapt");
        json.meta("frames", Json::Num(n_frames as f64));
        json.meta("budget_ms", Json::Num(budget.as_secs_f64() * 1e3));
        json.meta("drift_windows", Json::Num(a.drift_windows as f64));
        json.meta("launches", Json::Num(a.launches as f64));
        json.meta("installs", Json::Num(a.installs as f64));
        json.meta(
            "detect_to_swap_ms",
            Json::Num(
                a.last_detect_to_swap
                    .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
            ),
        );
        json.meta("cold_nodes", Json::Num(cold.nodes_explored as f64));
        json.meta("warm_nodes", Json::Num(warm.nodes_explored as f64));
        json.meta(
            "synthesis_nodes",
            Json::Num(synth_res.map_or(f64::NAN, |(n, _)| n as f64)),
        );
        json.meta(
            "restart_nodes",
            Json::Num(restart_res.map_or(f64::NAN, |(n, _)| n as f64)),
        );
        json.meta("failures", Json::Num(failures.len() as f64));
        for (name, (ok, missed)) in ["pre-drift", "drift", "post-drift"].iter().zip(&counts) {
            json.row(vec![
                ("phase", Json::Str((*name).to_string())),
                ("in_budget", Json::Num(*ok as f64)),
                ("missed", Json::Num(*missed as f64)),
            ]);
        }
        match json.write(std::path::Path::new(path)) {
            Ok(()) => out!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // ---- Verdict + report file. ----
    if failures.is_empty() {
        out!("adapt: PASS");
    } else {
        for f in &failures {
            out!("FAILURE: {f}");
        }
        out!("adapt: FAIL");
    }
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("writing {}: {e}", args.out);
        std::process::exit(1);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
