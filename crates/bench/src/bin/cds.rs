//! `cds` — command-line front end to the scheduling framework.
//!
//! ```text
//! cds schedule  --models 4 [--procs 4] [--nodes 1] [--no-dp] [--out FILE]
//!     Compute the optimal schedule for one regime and print (or save) it.
//!
//! cds table     --states 0..5 [--procs 4] [--out FILE]
//!     Precompute a regime table and serialize it.
//!
//! cds inspect   FILE [--graph tracker|surveillance]
//!     Load a persisted schedule/table, validate it, and show a Gantt chart.
//!
//! cds simulate  --models 8 --period-ms 33 [--frames 40] [--skip]
//!     Run the online (pthread-style) simulator and report metrics.
//! ```
//!
//! All subcommands default to the color-tracker graph; `--graph
//! surveillance` selects the two-camera graph.

use std::collections::HashMap;

use cds_core::evaluate::evaluate_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::persist;
use cds_core::table::ScheduleTable;
use cluster::{render_gantt, simulate_online, ClusterSpec, FrameClock, GanttOptions, OnlineConfig};
use taskgraph::{builders, AppState, Micros, TaskGraph};

fn usage() -> ! {
    eprintln!(
        "usage:\n  cds schedule --models N [--procs P] [--nodes K] [--no-dp] [--out FILE] [--graph G]\n  cds table    --states A..B [--procs P] [--out FILE] [--graph G]\n  cds inspect  FILE [--graph G]\n  cds simulate --models N --period-ms MS [--frames F] [--skip] [--procs P] [--graph G]\n\ngraphs: tracker (default) | surveillance"
    );
    std::process::exit(2);
}

struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(name) = a.strip_prefix("--") {
            // Boolean switches take no value.
            if matches!(name, "no-dp" | "skip") {
                switches.push(name.to_string());
            } else if i + 1 < raw.len() {
                flags.insert(name.to_string(), raw[i + 1].clone());
                i += 1;
            } else {
                eprintln!("flag --{name} needs a value");
                usage();
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Args {
        positional,
        flags,
        switches,
    }
}

fn graph_for(args: &Args) -> TaskGraph {
    match args.flags.get("graph").map(String::as_str) {
        None | Some("tracker") => builders::color_tracker(),
        Some("surveillance") => builders::stereo_surveillance(),
        Some(other) => {
            eprintln!("unknown graph {other:?}");
            usage();
        }
    }
}

fn flag_u32(args: &Args, name: &str, default: u32) -> u32 {
    args.flags
        .get(name)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("invalid --{name}: {v:?}");
                usage();
            })
        })
        .unwrap_or(default)
}

fn cluster_for(args: &Args) -> ClusterSpec {
    let procs = flag_u32(args, "procs", 4);
    let nodes = flag_u32(args, "nodes", 1);
    if nodes <= 1 {
        ClusterSpec::single_node(procs)
    } else {
        ClusterSpec::new(nodes, procs, *ClusterSpec::paper_cluster().comm())
    }
}

fn emit(args: &Args, content: &str) {
    match args.flags.get("out") {
        Some(path) => {
            std::fs::write(path, content).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path} ({} bytes)", content.len());
        }
        None => print!("{content}"),
    }
}

fn cmd_schedule(args: &Args) {
    let graph = graph_for(args);
    let cluster = cluster_for(args);
    let state = AppState::new(flag_u32(args, "models", 1));
    let cfg = OptimalConfig {
        explore_decompositions: !args.switches.iter().any(|s| s == "no-dp"),
        max_nodes: 200_000,
        ..OptimalConfig::default()
    };
    let r = optimal_schedule(&graph, &cluster, &state, &cfg);
    eprintln!(
        "state {state}: latency {} II {} rotation {} |S|={} nodes={} complete={}",
        r.minimal_latency, r.best.ii, r.best.rotation, r.candidates, r.nodes_explored, r.complete
    );
    emit(args, &persist::schedule_to_string(&r.best));
}

fn cmd_table(args: &Args) {
    let graph = graph_for(args);
    let cluster = cluster_for(args);
    let spec = args.flags.get("states").cloned().unwrap_or_else(|| {
        eprintln!("table needs --states A..B");
        usage();
    });
    let Some((a, b)) = spec.split_once("..") else {
        eprintln!("--states must look like 0..5");
        usage();
    };
    let (a, b): (u32, u32) = match (a.parse(), b.parse()) {
        (Ok(a), Ok(b)) if a <= b => (a, b),
        _ => {
            eprintln!("--states must look like 0..5");
            usage();
        }
    };
    let states: Vec<AppState> = (a..=b).map(AppState::new).collect();
    let cfg = OptimalConfig {
        max_nodes: 200_000,
        ..OptimalConfig::default()
    };
    let table = ScheduleTable::precompute(&graph, &cluster, &states, &cfg);
    for s in table.states() {
        let sched = table.get(&s).expect("present");
        eprintln!(
            "  {s}: latency {} II {} decomp {:?}",
            sched.iteration.latency,
            sched.ii,
            sched.iteration.decomp.values().collect::<Vec<_>>()
        );
    }
    emit(args, &persist::table_to_string(&table));
}

fn cmd_inspect(args: &Args) {
    let Some(path) = args.positional.first() else {
        eprintln!("inspect needs a FILE");
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let table = persist::table_from_str(&text).unwrap_or_else(|e| {
        eprintln!("parse error in {path}: {e}");
        std::process::exit(1);
    });
    let graph = graph_for(args);
    println!("{path}: {} schedule(s)", table.len());
    for s in table.states() {
        let sched = table.get(&s).expect("present");
        // Validate against the graph and a cluster of the schedule's size.
        let cluster = ClusterSpec::single_node(sched.n_procs);
        if let Err(e) = cds_core::legality::check_pipelined(sched, &graph, &cluster) {
            eprintln!("schedule for {s} fails validation: {e}");
            std::process::exit(1);
        }
        println!();
        print!("{}", sched.describe(&graph));
        let out = evaluate_schedule(
            sched,
            &graph,
            FrameClock::new(sched.ii.max(Micros(1)), 4),
            0,
        );
        let bucket = Micros((sched.iteration.latency.0 / 20).max(1_000));
        println!(
            "{}",
            render_gantt(
                &out.trace,
                &graph,
                GanttOptions {
                    bucket,
                    max_rows: 40,
                    from: Micros::ZERO,
                }
            )
        );
    }
}

fn cmd_simulate(args: &Args) {
    let graph = graph_for(args);
    let cluster = cluster_for(args);
    let state = AppState::new(flag_u32(args, "models", 1));
    let period = Micros::from_millis(u64::from(flag_u32(args, "period-ms", 33)));
    let frames = u64::from(flag_u32(args, "frames", 40));
    let mut cfg = OnlineConfig::new(FrameClock::new(period, frames), state);
    cfg.skip_stale = args.switches.iter().any(|s| s == "skip");
    // Use the best decomposition for the state, as a tuner would.
    let opt = optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default());
    cfg.decomposition = opt
        .best
        .iteration
        .decomp
        .iter()
        .map(|(t, d)| (*t, *d))
        .collect();
    let out = simulate_online(&graph, &cluster, cfg);
    println!("online simulation, {state}, period {period}, {frames} frames:");
    println!("  {}", out.metrics);
    println!(
        "  (precomputed optimal for this state: latency {}, II {})",
        opt.minimal_latency, opt.best.ii
    );
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        usage();
    };
    let args = parse_args(&raw[1..]);
    match cmd.as_str() {
        "schedule" => cmd_schedule(&args),
        "table" => cmd_table(&args),
        "inspect" => cmd_inspect(&args),
        "simulate" => cmd_simulate(&args),
        _ => usage(),
    }
}
