//! Online data-path before/after: the scalar oracles vs the overhauled
//! fast paths, per-item STM traffic vs the batch APIs, and the allocating
//! vs buffer-recycling tracker.
//!
//! Every "before" implementation is kept in-tree precisely so this binary
//! can measure the overhaul honestly on the current host:
//!
//! * kernels — `image_histogram_scalar` / `change_detection_scalar` /
//!   `target_detection_chunk_scalar` vs the row-sliced and word-streaming
//!   paths (bit-identical output, asserted here);
//! * STM — a put/consume loop vs `put_many` + `consume_range` under one
//!   lock, plus the lock-free `snapshot` read;
//! * frame pipeline — `render`/`change_detection` allocating per frame vs
//!   `render_into`/`change_detection_into` on recycled pool buffers;
//! * end to end — the online tracker with `recycle_buffers` off vs on.
//!
//! Flags: `--frames N` (tracker frames, default 24), `--iters N` (kernel
//! repetitions, default 40), `--json PATH` (additionally write the
//! machine-readable report).

use std::time::Instant;

use kiosk_bench::{csv_line, print_table, Json, JsonReport};
use runtime::{BufPool, OnlineExecutor, TrackerApp, TrackerConfig};
use stm::{Channel, Timestamp};
use vision::{
    change_detection, change_detection_into, change_detection_scalar, detect_chunks,
    image_histogram, image_histogram_scalar, target_detection_chunk, target_detection_chunk_scalar,
    BitMask, Frame, Scene,
};

const W: usize = 128;
const H: usize = 128;

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median-of-repeats wall time for one call, in nanoseconds.
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Paired before/after timing: the variants alternate within one sample
/// loop, so clock-frequency drift and scheduler noise hit both equally —
/// the speedup ratio stays honest even when absolute times wander. Returns
/// median ns for each variant.
fn time_pair_ns(iters: u64, mut before: impl FnMut(), mut after: impl FnMut()) -> (f64, f64) {
    let mut b_ns = Vec::new();
    let mut a_ns = Vec::new();
    for i in 0..iters.max(6) {
        // Alternate which variant leads, so warm-up bias cancels too.
        if i % 2 == 0 {
            let t0 = Instant::now();
            before();
            b_ns.push(t0.elapsed().as_secs_f64() * 1e9);
            let t0 = Instant::now();
            after();
            a_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        } else {
            let t0 = Instant::now();
            after();
            a_ns.push(t0.elapsed().as_secs_f64() * 1e9);
            let t0 = Instant::now();
            before();
            b_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }
    b_ns.sort_by(f64::total_cmp);
    a_ns.sort_by(f64::total_cmp);
    (b_ns[b_ns.len() / 2], a_ns[a_ns.len() / 2])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames = arg(&args, "--frames", 24);
    let iters = arg(&args, "--iters", 40);

    println!("Online data-path overhaul: before/after on this host");
    println!("frame {W}x{H}, {iters} kernel iterations, {frames} tracker frames");

    let scene = Scene::demo(W, H, 4, 42);
    let models = scene.models();
    let prev = scene.render(0);
    let frame = scene.render(1);
    let hist = image_histogram(&frame);
    let mask = change_detection(&frame, Some(&prev), 24);

    struct Report {
        rows: Vec<Vec<String>>,
        speedups: Vec<(String, f64)>,
        json: JsonReport,
    }
    impl Report {
        fn pair(&mut self, section: &str, what: &str, before_ns: f64, after_ns: f64) {
            for (variant, ns) in [("before", before_ns), ("after", after_ns)] {
                self.row(section, what, variant, ns);
            }
            self.speedups
                .push((format!("{section}/{what}"), before_ns / after_ns.max(1e-3)));
        }
        fn row(&mut self, section: &str, what: &str, variant: &str, ns: f64) {
            self.rows.push(vec![
                section.to_string(),
                what.to_string(),
                variant.to_string(),
                format!("{ns:.0}"),
            ]);
            csv_line(&["datapath", section, what, variant, &format!("{ns:.0}")]);
            self.json.row(vec![
                ("kernel", Json::Str(format!("{section}/{what}"))),
                ("variant", Json::Str(variant.to_string())),
                ("ns_per_op", Json::Num(ns)),
            ]);
        }
    }
    let mut json = JsonReport::new("datapath");
    json.meta(
        "host_features",
        Json::Str(vision::BackendKind::Simd.get().features()),
    );
    json.meta("size", Json::Str(format!("{W}x{H}")));
    let mut report = Report {
        rows: Vec::new(),
        speedups: Vec::new(),
        json,
    };

    // --- Kernels (equality asserted, then timed) ---------------------
    assert_eq!(image_histogram(&frame), image_histogram_scalar(&frame));
    let (b, a) = time_pair_ns(
        iters,
        || {
            std::hint::black_box(image_histogram_scalar(&frame));
        },
        || {
            std::hint::black_box(image_histogram(&frame));
        },
    );
    report.pair("kernel", "image_histogram", b, a);

    assert_eq!(
        change_detection(&frame, Some(&prev), 24),
        change_detection_scalar(&frame, Some(&prev), 24)
    );
    let (b, a) = time_pair_ns(
        iters,
        || {
            std::hint::black_box(change_detection_scalar(&frame, Some(&prev), 24));
        },
        || {
            std::hint::black_box(change_detection(&frame, Some(&prev), 24));
        },
    );
    report.pair("kernel", "change_detection", b, a);

    let chunk = detect_chunks(W, H, models.len(), 1, 1)[0];
    assert_eq!(
        target_detection_chunk(&frame, &hist, &models, &mask, chunk),
        target_detection_chunk_scalar(&frame, &hist, &models, &mask, chunk)
    );
    let (b, a) = time_pair_ns(
        iters,
        || {
            std::hint::black_box(target_detection_chunk_scalar(
                &frame, &hist, &models, &mask, chunk,
            ));
        },
        || {
            std::hint::black_box(target_detection_chunk(&frame, &hist, &models, &mask, chunk));
        },
    );
    report.pair("kernel", "target_detection", b, a);

    // --- STM batch APIs ----------------------------------------------
    const BATCH: u64 = 64;
    let per_item = {
        let ch: Channel<u64> = Channel::new("dp-loop");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut base = 0u64;
        time_ns(iters, || {
            for t in base..base + BATCH {
                out.put(Timestamp(t), t).unwrap();
            }
            for t in base..base + BATCH {
                inp.consume(Timestamp(t)).unwrap();
            }
            base += BATCH;
        })
    };
    let batched = {
        let ch: Channel<u64> = Channel::new("dp-batch");
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut base = 0u64;
        time_ns(iters, || {
            out.put_many((base..base + BATCH).map(|t| (Timestamp(t), t)))
                .unwrap();
            inp.consume_range(Timestamp(base), Timestamp(base + BATCH));
            base += BATCH;
        })
    };
    report.pair("stm", "put_consume_64", per_item, batched);

    let snap = {
        let ch: Channel<u64> = Channel::new("dp-snap");
        let out = ch.attach_output();
        let _hold = ch.attach_input();
        for t in 0..BATCH {
            out.put(Timestamp(t), t).unwrap();
        }
        time_ns(iters * 100, || {
            std::hint::black_box(ch.snapshot());
        })
    };
    report.row("stm", "snapshot_read", "after", snap);

    // --- Frame pipeline: allocate vs recycle -------------------------
    let pool: BufPool<Frame> = BufPool::new(2);
    let (render_alloc, render_pooled) = time_pair_ns(
        iters,
        || {
            std::hint::black_box(scene.render(7));
        },
        || {
            let mut buf = pool.take_or(|| Frame::new(W, H));
            scene.render_into(7, &mut buf);
            std::hint::black_box(&*buf);
        },
    );
    report.pair("pipeline", "frame_produce", render_alloc, render_pooled);

    let mut mask_buf = BitMask::new(W, H);
    let (mask_alloc, mask_pooled) = time_pair_ns(
        iters,
        || {
            std::hint::black_box(change_detection(&frame, Some(&prev), 24));
        },
        || {
            change_detection_into(&frame, Some(&prev), 24, &mut mask_buf);
            std::hint::black_box(&mask_buf);
        },
    );
    report.pair("pipeline", "mask_produce", mask_alloc, mask_pooled);

    // --- End to end: the online tracker ------------------------------
    let run_tracker = |recycle: bool, report_pool: bool| {
        let mut cfg = TrackerConfig::small(2, frames);
        cfg.period = std::time::Duration::ZERO;
        cfg.recycle_buffers = recycle;
        let app = TrackerApp::build(&cfg, None);
        let t0 = Instant::now();
        let stats = OnlineExecutor::run(&app, 0);
        let ns = t0.elapsed().as_secs_f64() * 1e9;
        assert_eq!(stats.frames_completed, frames);
        if report_pool {
            let fp = app.frame_pool_stats().expect("pooling on");
            println!(
                "pooled run: {} frame buffers allocated, {} reuses ({} frames)",
                fp.created, fp.reused, frames
            );
        }
        ns
    };
    let (e2e_alloc, e2e_pooled) = time_pair_ns(
        6,
        || {
            std::hint::black_box(run_tracker(false, false));
        },
        || {
            std::hint::black_box(run_tracker(true, false));
        },
    );
    run_tracker(true, true); // print pool stats once, outside the timing
    report.pair("pipeline", "tracker_e2e", e2e_alloc, e2e_pooled);

    print_table(
        "Data-path cost, before vs after (median ns per call)",
        &["section", "benchmark", "variant", "ns"],
        &report.rows,
    );

    println!("\n== Speedups (before / after) ==");
    for (name, s) in &report.speedups {
        println!("{name}: {s:.2}x");
        csv_line(&[
            "datapath_speedup".to_string(),
            name.clone(),
            format!("{s:.2}"),
        ]);
    }
    let speedup_of = |name: &str| {
        report
            .speedups
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |&(_, s)| s)
    };
    println!(
        "\nheadline: at {W}x{H}, image_histogram {:.2}x, change_detection {:.2}x, \
         stm put/consume x64 {:.2}x vs the before paths",
        speedup_of("kernel/image_histogram"),
        speedup_of("kernel/change_detection"),
        speedup_of("stm/put_consume_64"),
    );

    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        let mut json = report.json;
        for (name, s) in &report.speedups {
            json.row(vec![
                ("kernel", Json::Str(name.clone())),
                ("variant", Json::Str("speedup".to_string())),
                ("ns_per_op", Json::Num(*s)),
            ]);
        }
        match json.write(std::path::Path::new(path)) {
            Ok(()) => println!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
