//! Fault-containment smoke: the panic-free pipeline run under a seeded
//! fault mix, plus the cost of the containment machinery itself.
//!
//! Two questions, answered on the current host:
//!
//! * **Does containment work end to end?** A seeded [`FaultPlan`] (STM
//!   errors, stragglers, worker panics, regime misreads) is injected into
//!   the online tracker; the run must complete every non-dropped frame
//!   bit-identically to a clean run, and the health ledger must equal the
//!   injected counts exactly — fault-for-fault.
//! * **What does `catch_unwind` cost?** Every worker-pool job now runs
//!   under `catch_unwind`. The wrapper is timed against a direct call on
//!   the real detection-chunk kernel; the paper-facing claim is that
//!   containment is free at frame granularity (<1% on pool-sized work).
//!
//! Flags: `--frames N` (tracker frames, default 48), `--iters N` (overhead
//! samples, default 600).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kiosk_bench::{csv_line, print_table};
use runtime::{FaultPlan, OnlineExecutor, RegimeController, TrackerApp, TrackerConfig};
use vision::{change_detection, detect_chunks, image_histogram, target_detection_chunk, Scene};

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Paired direct-vs-wrapped timing (median ns), alternating lead order so
/// drift hits both variants equally.
fn time_pair_ns(iters: u64, mut direct: impl FnMut(), mut wrapped: impl FnMut()) -> (f64, f64) {
    let mut d_ns = Vec::new();
    let mut w_ns = Vec::new();
    for i in 0..iters.max(6) {
        if i % 2 == 0 {
            let t0 = Instant::now();
            direct();
            d_ns.push(t0.elapsed().as_secs_f64() * 1e9);
            let t0 = Instant::now();
            wrapped();
            w_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        } else {
            let t0 = Instant::now();
            wrapped();
            w_ns.push(t0.elapsed().as_secs_f64() * 1e9);
            let t0 = Instant::now();
            direct();
            d_ns.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }
    d_ns.sort_by(f64::total_cmp);
    w_ns.sort_by(f64::total_cmp);
    (d_ns[d_ns.len() / 2], w_ns[w_ns.len() / 2])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let frames = arg(&args, "--frames", 48);
    let iters = arg(&args, "--iters", 600);

    println!("Fault containment smoke: seeded injection + containment overhead");
    println!("{frames} tracker frames; {iters} overhead samples\n");

    // --- End to end under a seeded fault mix -------------------------
    let cfg = |faults| {
        let mut c = TrackerConfig::small(2, frames);
        c.decomposition = (2, 2);
        c.pool_workers = 3;
        c.frame_deadline = Some(Duration::from_millis(250));
        // No flow-control backpressure: exact accounting needs a stalled
        // downstream stage to never starve upstream stages of later frames.
        c.channel_capacity = frames as usize + 2;
        c.faults = faults;
        c
    };
    let table: BTreeMap<u32, (u32, u32)> = [(0, (2, 2))].into_iter().collect();
    let controller = || {
        Some(Arc::new(
            RegimeController::new(2, 2, table.clone()).unwrap(),
        ))
    };

    let clean_app = TrackerApp::build(&cfg(None), controller());
    let _ = OnlineExecutor::run(&clean_app, 0);
    let mut clean = clean_app.face.locations();
    clean.sort_by_key(|&(ts, _)| ts);

    let plan = FaultPlan::seeded(0xFA57, frames, 4, 3, 3, 3, Duration::from_millis(3));
    let inj = plan.clone().build();
    let app = TrackerApp::build(&cfg(Some(Arc::clone(&inj))), controller());
    let _ = OnlineExecutor::run(&app, 0);
    let mut faulted = app.face.locations();
    faulted.sort_by_key(|&(ts, _)| ts);

    let dropped = plan.dropped_frames();
    let survivors: Vec<_> = clean
        .iter()
        .filter(|(ts, _)| !dropped.contains(ts))
        .cloned()
        .collect();
    let h = app.health.report();
    let got = inj.injected();
    // The pool's panic counter is bumped by the unwinding worker slightly
    // after the joiner recovers; give it a beat.
    let pool_panics = {
        let mut p = 0;
        for _ in 0..200 {
            p = app.pool_health().expect("pool attached").panics;
            if p >= plan.n_panics() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        p
    };

    let rows = vec![
        vec!["frames".into(), frames.to_string()],
        vec!["planned stm errors".into(), plan.n_stm_errors().to_string()],
        vec!["planned delays".into(), plan.n_delays().to_string()],
        vec!["planned panics".into(), plan.n_panics().to_string()],
        vec!["planned misreads".into(), plan.n_misreads().to_string()],
        vec!["frames completed".into(), faulted.len().to_string()],
        vec!["stm get drops".into(), h.stm_get_drops.to_string()],
        vec!["deadline skips".into(), h.deadline_skips.to_string()],
        vec!["chunk recomputes".into(), h.chunk_recomputes.to_string()],
        vec!["pool panics contained".into(), pool_panics.to_string()],
        vec!["misreads fed".into(), got.misreads.to_string()],
    ];
    print_table(
        "Seeded fault run, ledger vs plan",
        &["metric", "value"],
        &rows,
    );
    csv_line(&[
        "faultsmoke".to_string(),
        frames.to_string(),
        plan.n_stm_errors().to_string(),
        h.stm_get_drops.to_string(),
        h.deadline_skips.to_string(),
        h.chunk_recomputes.to_string(),
    ]);

    // --- catch_unwind overhead on pool-sized work --------------------
    // The real per-job workload: one detection chunk on a pool-sized frame.
    let scene = Scene::demo(128, 128, 4, 42);
    let models = scene.models();
    let prev = scene.render(0);
    let frame = scene.render(1);
    let hist = image_histogram(&frame);
    let mask = change_detection(&frame, Some(&prev), 24);
    let chunk = detect_chunks(128, 128, models.len(), 2, 2)[0];
    let work = || {
        std::hint::black_box(target_detection_chunk(&frame, &hist, &models, &mask, chunk));
    };
    let (direct_ns, wrapped_ns) = time_pair_ns(iters, work, || {
        // Exactly the pool's containment wrapper around the same work.
        let _ = catch_unwind(AssertUnwindSafe(work));
    });
    let overhead_pct = (wrapped_ns - direct_ns) / direct_ns * 100.0;
    println!("\n== catch_unwind overhead (detection chunk, median ns) ==");
    println!("direct:  {direct_ns:.0} ns");
    println!("wrapped: {wrapped_ns:.0} ns");
    println!("overhead: {overhead_pct:.3}%");
    csv_line(&[
        "faultsmoke_unwind".to_string(),
        format!("{direct_ns:.0}"),
        format!("{wrapped_ns:.0}"),
        format!("{overhead_pct:.3}"),
    ]);

    println!("\nshape checks:");
    let checks = [
        (
            "non-faulted frames bit-identical to the clean run",
            faulted == survivors,
        ),
        (
            "frames completed == n_frames - planned drops",
            faulted.len() as u64 == frames - dropped.len() as u64,
        ),
        (
            "stm get drops == planned stm errors",
            h.stm_get_drops == plan.n_stm_errors(),
        ),
        (
            "deadline skips == planned cascade",
            h.deadline_skips == plan.expected_deadline_skips(),
        ),
        (
            "every planned panic contained and recomputed",
            pool_panics == plan.n_panics() && h.chunk_recomputes == plan.n_panics(),
        ),
        (
            "every planned misread fed to the controller",
            got.misreads == plan.n_misreads(),
        ),
        (
            "catch_unwind overhead under 1% at chunk granularity",
            overhead_pct < 1.0,
        ),
    ];
    let mut all_ok = true;
    for (name, ok) in checks {
        all_ok &= ok;
        println!("  [{}] {name}", if ok { "PASS" } else { "FAIL" });
    }
    if !all_ok {
        println!("\nFAULT SMOKE FAILED");
        std::process::exit(1);
    }
}
