//! Figure 3 — "Comparison of optimal and tuned schedules for detecting
//! eight models": the hand-tuning curve (digitizer period swept from 33 ms
//! to 5 s under the online scheduler, with the best data-parallel
//! decomposition) against the precomputed optimal schedule, which must
//! dominate every tuned point.

use cds_core::evaluate::evaluate_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::tuning::{paper_periods, tuning_curve_stats};
use cluster::sweep::SweepConfig;
use cluster::{ClusterSpec, FrameClock, OnlineConfig};
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState, Decomposition, Micros};

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let state = AppState::new(8);
    let t4 = graph.task_by_name("Target Detection").unwrap();

    println!("Reproduction of Figure 3 (SC 1999): tuning curve vs optimal schedule, 8 models, 4 processors");

    // Tuning curve: online scheduler with the optimal data-parallel
    // decomposition (MP=8), digitizer period swept.
    let mut template = OnlineConfig::new(FrameClock::new(Micros::from_millis(33), 40), state);
    template.decomposition.insert(t4, Decomposition::new(1, 8));
    template.channel_capacity = 3;
    template.warmup_frames = 4;

    let mut periods = paper_periods();
    // A few intermediate points for a smoother curve.
    for ms in [300u64, 600, 1500, 2500, 3500, 4500] {
        periods.push(Micros::from_millis(ms));
    }
    periods.sort();

    let (points, stats) =
        tuning_curve_stats(&graph, &cluster, &template, &periods, SweepConfig::new());
    println!("tuned sweep: {stats}");
    let mut rows = Vec::new();
    for p in &points {
        rows.push(vec![
            format!("{}", p.period),
            format!("{:.3}", p.metrics.mean_latency.as_secs_f64()),
            format!("{:.3}", p.metrics.throughput_hz),
            format!("{:.3}", p.metrics.uniformity_cov),
        ]);
        csv_line(&[
            "fig3_tuned".to_string(),
            p.period.as_secs_f64().to_string(),
            format!("{:.4}", p.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", p.metrics.throughput_hz),
        ]);
    }
    print_table(
        "Tuning curve (online scheduler, MP=8)",
        &["digitizer period", "latency (s)", "throughput (1/s)", "CoV"],
        &rows,
    );

    // The other tuning escape hatch: let tasks skip stale frames
    // (NewestUnseen consumption). Latency stays bounded at every period —
    // but the price is dropped frames, the paper's uniformity pathology.
    let mut skip_template = template.clone();
    skip_template.skip_stale = true;
    skip_template.channel_capacity = 8;
    let (skip_points, skip_stats) = tuning_curve_stats(
        &graph,
        &cluster,
        &skip_template,
        &[
            Micros::from_millis(33),
            Micros::from_secs(1),
            Micros::from_secs(3),
            Micros::from_secs(5),
        ],
        SweepConfig::new(),
    );
    println!("skip sweep: {skip_stats}");
    let mut rows = Vec::new();
    for p in &skip_points {
        rows.push(vec![
            format!("{}", p.period),
            format!("{:.3}", p.metrics.mean_latency.as_secs_f64()),
            format!("{:.3}", p.metrics.throughput_hz),
            p.metrics.frames_dropped.to_string(),
        ]);
        csv_line(&[
            "fig3_skip".to_string(),
            p.period.as_secs_f64().to_string(),
            format!("{:.4}", p.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", p.metrics.throughput_hz),
            p.metrics.frames_dropped.to_string(),
        ]);
    }
    print_table(
        "Tuning with frame skipping (latency bounded, frames dropped)",
        &[
            "digitizer period",
            "latency (s)",
            "throughput (1/s)",
            "dropped",
        ],
        &rows,
    );

    // The precomputed optimal schedule, evaluated at NTSC rate. A large
    // |S| cap lets step 3 pick the highest-throughput minimal-latency
    // member.
    let opt_cfg = OptimalConfig {
        max_schedules: 256,
        ..OptimalConfig::default()
    };
    let opt = optimal_schedule(&graph, &cluster, &state, &opt_cfg);
    let out = evaluate_schedule(
        &opt.best,
        &graph,
        FrameClock::new(Micros::from_millis(33), 40),
        4,
    );
    let opt_lat = out.metrics.mean_latency.as_secs_f64();
    let opt_tp = out.metrics.throughput_hz;
    println!(
        "\noptimal schedule: latency={:.3}s throughput={:.3}/s (II={}, rotation={}, decomp={:?}, |S|={})",
        opt_lat,
        opt_tp,
        opt.best.ii,
        opt.best.rotation,
        opt.best.iteration.decomp.values().collect::<Vec<_>>(),
        opt.candidates,
    );
    csv_line(&[
        "fig3_optimal".to_string(),
        "0.033".to_string(),
        format!("{opt_lat:.4}"),
        format!("{opt_tp:.4}"),
    ]);

    // Dominance checks (the paper: "performance that is strictly better
    // than all of the points on the tuning curve", and optimal latency
    // "less than half of the worst case latency for naive scheduling").
    let min_tuned_lat = points
        .iter()
        .map(|p| p.metrics.mean_latency.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    let max_tuned_lat = points
        .iter()
        .map(|p| p.metrics.mean_latency.as_secs_f64())
        .fold(0.0, f64::max);
    let max_tuned_tp = points
        .iter()
        .map(|p| p.metrics.throughput_hz)
        .fold(0.0, f64::max);
    println!("\nshape checks:");
    let checks = [
        (
            format!("optimal latency {opt_lat:.3}s <= best tuned latency {min_tuned_lat:.3}s"),
            opt_lat <= min_tuned_lat + 1e-9,
        ),
        // The paper's own caveat applies: the minimal-latency schedule
        // "fails to achieve maximum throughput since the schedule contains
        // some wasted space. This tradeoff is consistent with our desire to
        // minimize latency." The saturated tuned points (latency ≈ 4× worse)
        // set the throughput ceiling; the optimal point must come within a
        // few percent of it while dominating on latency.
        (
            format!(
                "optimal throughput {opt_tp:.3}/s within 3% of the ceiling {max_tuned_tp:.3}/s"
            ),
            opt_tp >= max_tuned_tp * 0.97,
        ),
        (
            format!(
                "optimal latency {opt_lat:.3}s < half the worst tuned latency {:.3}s",
                max_tuned_lat / 2.0
            ),
            opt_lat < max_tuned_lat / 2.0,
        ),
    ];
    run_checks(&checks);
}
