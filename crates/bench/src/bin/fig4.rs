//! Figure 4 — "Performance of naive pthread (a) and pipeline (b) scheduling
//! strategies": per-processor timelines and latencies of the
//! dependence-blind online scheduler versus naive software pipelining.

use cds_core::evaluate::evaluate_schedule;
use cds_core::pipeline::naive_pipeline;
use cluster::{render_gantt, simulate_online, ClusterSpec, FrameClock, GanttOptions, OnlineConfig};
use kiosk_bench::{csv_line, run_checks};
use taskgraph::{builders, AppState, Micros};

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let state = AppState::new(2);
    let clock = FrameClock::new(Micros::from_millis(250), 12);

    println!("Reproduction of Figure 4 (SC 1999): pthread-style vs naive pipeline, 2 models, 4 processors\n");

    // (a) pthread-style: dependence-blind FIFO with a preemption quantum.
    let mut cfg = OnlineConfig::new(clock, state);
    cfg.quantum = Some(Micros::from_millis(200));
    cfg.channel_capacity = 4;
    cfg.warmup_frames = 2;
    let online = simulate_online(&graph, &cluster, cfg);
    let pathologies = cluster::pathology_report(&online.trace, &graph);
    println!("--- (a) general online scheduler (pthread-style) ---");
    println!(
        "pathologies: max same-task burst {}, preempted activations {}, max producer lead {} frames",
        pathologies.max_task_burst, pathologies.preempted_slices, pathologies.max_producer_lead
    );
    let opts = GanttOptions {
        bucket: Micros::from_millis(150),
        max_rows: 40,
        from: Micros::ZERO,
    };
    println!("{}", render_gantt(&online.trace, &graph, opts));
    println!("{}", online.metrics);

    // (a') the same scheduler with NewestUnseen-style skipping: latency
    // recovers but whole runs of frames are dropped — the paper's
    // uniformity pathology ("process three frames in a row and then skip
    // the next hundred").
    let mut skip_cfg = OnlineConfig::new(clock, state);
    skip_cfg.quantum = Some(Micros::from_millis(200));
    skip_cfg.channel_capacity = 8;
    skip_cfg.skip_stale = true;
    skip_cfg.warmup_frames = 2;
    let skipping = simulate_online(&graph, &cluster, skip_cfg);
    println!("\n--- (a') online scheduler with frame skipping ---");
    let skipped_frames: Vec<u64> = skipping
        .frames
        .iter()
        .filter(|f| f.completed_at.is_none())
        .map(|f| f.frame)
        .collect();
    println!(
        "{} | skipped frames: {:?}",
        skipping.metrics, skipped_frames
    );

    // (b) naive software pipelining: one iteration per virtual processor.
    let sched = naive_pipeline(&graph, &cluster, &state);
    let pipeline = evaluate_schedule(&sched, &graph, clock, 2);
    println!("\n--- (b) naive software pipelining ---");
    println!("{}", render_gantt(&pipeline.trace, &graph, opts));
    println!("{}", pipeline.metrics);
    println!(
        "pipeline II={} rotation={} (latency = serial iteration = {})",
        sched.ii, sched.rotation, sched.iteration.latency
    );

    csv_line(&[
        "fig4".to_string(),
        "pthread".to_string(),
        format!("{:.4}", online.metrics.mean_latency.as_secs_f64()),
        format!("{:.4}", online.metrics.throughput_hz),
        format!("{:.4}", online.metrics.uniformity_cov),
    ]);
    csv_line(&[
        "fig4".to_string(),
        "pthread_skip".to_string(),
        format!("{:.4}", skipping.metrics.mean_latency.as_secs_f64()),
        format!("{:.4}", skipping.metrics.throughput_hz),
        format!("{}", skipping.metrics.frames_dropped),
    ]);
    csv_line(&[
        "fig4".to_string(),
        "pipeline".to_string(),
        format!("{:.4}", pipeline.metrics.mean_latency.as_secs_f64()),
        format!("{:.4}", pipeline.metrics.throughput_hz),
        format!("{:.4}", pipeline.metrics.uniformity_cov),
    ]);

    println!("\nshape checks:");
    let checks = [
        (
            "pipeline latency <= pthread latency",
            pipeline.metrics.mean_latency <= online.metrics.mean_latency,
        ),
        (
            "pipeline output is more uniform (lower CoV)",
            pipeline.metrics.uniformity_cov <= online.metrics.uniformity_cov + 1e-9,
        ),
        (
            "pipeline latency equals the serial iteration time (minus digitizing)",
            pipeline.metrics.mean_latency
                == sched.iteration.latency
                    - cds_core::evaluate::digitize_offset(&sched.iteration, &graph),
        ),
        (
            "skipping trades dropped frames for latency; pipelining drops nothing",
            skipping.metrics.mean_latency < online.metrics.mean_latency
                && pipeline.metrics.frames_dropped == 0,
        ),
    ];
    run_checks(&checks);
}
