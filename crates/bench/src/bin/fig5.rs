//! Figure 5 — "Schedules that exploit task parallelism (a) and data
//! parallelism (b) exhibit significantly reduced latency": optimal
//! schedules with decompositions disabled (T2 ∥ T3 only) and enabled (T4
//! split across processors), with their wrap-around pipelining.

use cds_core::evaluate::evaluate_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::pipeline::naive_pipeline;
use cluster::{render_gantt, ClusterSpec, FrameClock, GanttOptions};
use kiosk_bench::{csv_line, run_checks};
use taskgraph::{builders, AppState, Micros};

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let state = AppState::new(2);
    let clock = FrameClock::new(Micros::from_millis(33), 10);
    let opts = GanttOptions {
        bucket: Micros::from_millis(100),
        max_rows: 48,
        from: Micros::ZERO,
    };

    println!("Reproduction of Figure 5 (SC 1999): task-parallel (a) and task+data-parallel (b) optimal schedules");
    println!("2 models, 4 processors\n");

    let pipeline = naive_pipeline(&graph, &cluster, &state);

    // (a) Task parallelism only.
    let cfg_a = OptimalConfig {
        explore_decompositions: false,
        ..OptimalConfig::default()
    };
    let a = optimal_schedule(&graph, &cluster, &state, &cfg_a);
    let out_a = evaluate_schedule(&a.best, &graph, clock, 2);
    println!("--- (a) task parallelism (T2 ∥ T3), wrap-around pipelining ---");
    println!("{}", render_gantt(&out_a.trace, &graph, opts));
    println!(
        "latency={} II={} rotation={} | {}",
        a.minimal_latency, a.best.ii, a.best.rotation, out_a.metrics
    );

    // (b) Task + data parallelism.
    let b = optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default());
    let out_b = evaluate_schedule(&b.best, &graph, clock, 2);
    println!("\n--- (b) task + data parallelism (T4 decomposed) ---");
    println!("{}", render_gantt(&out_b.trace, &graph, opts));
    println!(
        "latency={} II={} rotation={} decomp={:?} | {}",
        b.minimal_latency,
        b.best.ii,
        b.best.rotation,
        b.best.iteration.decomp.iter().collect::<Vec<_>>(),
        out_b.metrics
    );

    for (label, r, out) in [
        ("task_parallel", &a, &out_a),
        ("task_data_parallel", &b, &out_b),
    ] {
        csv_line(&[
            "fig5".to_string(),
            label.to_string(),
            format!("{:.4}", r.minimal_latency.as_secs_f64()),
            format!("{:.4}", r.best.ii.as_secs_f64()),
            format!("{:.4}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", out.metrics.throughput_hz),
        ]);
    }

    println!("\nshape checks (latency strictly decreases pipeline → (a) → (b)):");
    let checks = [
        (
            format!(
                "(a) {} beats naive pipeline {}",
                a.minimal_latency, pipeline.iteration.latency
            ),
            a.minimal_latency < pipeline.iteration.latency,
        ),
        (
            format!("(b) {} beats (a) {}", b.minimal_latency, a.minimal_latency),
            b.minimal_latency < a.minimal_latency,
        ),
        (
            "(b) decomposes T4".to_string(),
            !b.best.iteration.decomp.is_empty(),
        ),
        (
            "both schedules pipeline without collisions".to_string(),
            a.best.find_collision().is_none() && b.best.find_collision().is_none(),
        ),
    ];
    run_checks(&checks);
}
