//! Fleet capacity report — multi-tenant trackers on one shared runtime.
//!
//! Sweeps streams × fps to find the maximum load the fleet sustains with
//! zero p99 deadline misses, then shows what happens past the knee:
//! admission control rejects the marginal stream instead of letting the
//! whole fleet miss deadlines.
//!
//! The load scales itself to the host: a calibration run measures one
//! stream's serial frame cost, and the sweep's frame rates are derived so
//! the interesting transitions (sustained → knee → overload) land on this
//! machine. The serial baseline is measured, not assumed: processing the
//! same streams one after another (what N independent serial processes
//! degenerate to on a saturated host) delays the last stream's frames by
//! the full makespan of its predecessors — orders of magnitude past the
//! deadline the fleet holds.
//!
//! Output goes to stdout and (by default) `results/fleet.txt`; `--json`
//! additionally writes a machine-readable report, and the traced capacity
//! point's Chrome trace goes to `results/fleet_trace.json` (one `pid` per
//! tenant). Exit code is non-zero when a structural check fails.

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use kiosk_bench::{csv_line, print_table, run_checks, Json, JsonReport};
use obs::TraceMode;
use runtime::{
    run_fleet, Fleet, FleetConfig, FleetRun, LifecycleState, OnlineExecutor, PriorityClass,
    TenantSpec, TrackerApp, TrackerConfig,
};

struct Args {
    frames: u64,
    smoke: bool,
    out: String,
    json: Option<String>,
    trace_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 36,
        smoke: false,
        out: "results/fleet.txt".to_string(),
        json: None,
        trace_out: "results/fleet_trace.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frames" => {
                let v = it.next().expect("--frames needs a value");
                args.frames = v.parse().expect("--frames must be an integer");
            }
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--trace-out" => args.trace_out = it.next().expect("--trace-out needs a path"),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: fleet [--frames N] [--smoke] [--out PATH] [--json PATH] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if args.smoke {
        args.frames = args.frames.min(10);
    }
    args
}

/// One flat-out serial run of a single stream: per-frame cost and wall
/// makespan on this machine (no pool, no pacing).
fn calibrate(width: usize, height: usize, frames: u64) -> (Duration, Duration) {
    let mut cfg = TrackerConfig::small(2, frames);
    cfg.width = width;
    cfg.height = height;
    cfg.period = Duration::ZERO;
    cfg.channel_capacity = 4;
    let app = TrackerApp::build(&cfg, None);
    let t0 = Instant::now();
    let _ = OnlineExecutor::run(&app, frames.min(2) as usize);
    let wall = t0.elapsed();
    let per_frame = (wall / (frames.max(1) as u32)).max(Duration::from_micros(50));
    (per_frame, wall)
}

struct Point {
    streams: usize,
    fps: u64,
    run: FleetRun,
}

fn worst_p99(run: &FleetRun) -> Duration {
    run.tenants
        .iter()
        .filter_map(|t| t.stats.as_ref().map(|s| s.p99_latency))
        .max()
        .unwrap_or(Duration::ZERO)
}

fn total_misses(run: &FleetRun) -> u64 {
    (0..run.tenants.len())
        .filter(|&k| run.tenants[k].admitted)
        .map(|k| run.deadline_misses(k))
        .sum()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args = parse_args();
    let mut report = String::new();
    macro_rules! out {
        ($($t:tt)*) => {{
            let line = format!($($t)*);
            println!("{line}");
            let _ = writeln!(report, "{line}");
        }};
    }

    out!("== fleet: multi-tenant trackers on one shared runtime ==");

    // ---- Calibration: measure one stream's serial cost, pick a frame
    // size heavy enough that scheduling (not timer resolution) dominates.
    let mut size = (96usize, 72usize);
    let (mut c_serial, mut solo_wall) = calibrate(size.0, size.1, args.frames.min(12));
    for next in [(160usize, 120usize), (240usize, 180usize)] {
        if c_serial >= Duration::from_micros(1200) {
            break;
        }
        size = next;
        (c_serial, solo_wall) = calibrate(size.0, size.1, args.frames.min(12));
    }
    out!(
        "calibration: {}x{} frames, serial per-frame cost {:.2}ms, {}-frame solo makespan {:.1}ms",
        size.0,
        size.1,
        c_serial.as_secs_f64() * 1e3,
        args.frames.min(12),
        solo_wall.as_secs_f64() * 1e3
    );

    // Base rate: 8 streams at fps_base put ~40% of one core's serial
    // capacity on the runtime — sustained; 2x that with 16 streams is past
    // any single core and exercises the knee.
    let fps_base = ((0.3 / (8.0 * c_serial.as_secs_f64())).round() as u64).clamp(4, 60);
    // The deadline budgets 2.5 frame intervals plus compute headroom. It
    // must exceed one digitizer period (it doubles as every stage's STM
    // input-wait watchdog, and inputs legitimately arrive one period
    // apart), yet stays far below the makespan-sized delays serial
    // back-to-back processing would impose on later streams.
    let period_base = Duration::from_secs_f64(1.0 / fps_base as f64);
    let deadline = period_base * 5 / 2 + 8 * c_serial;
    let streams_list: &[usize] = if args.smoke { &[2] } else { &[2, 4, 8, 12, 16] };
    let fps_list: Vec<u64> = if args.smoke {
        vec![fps_base]
    } else {
        vec![fps_base, fps_base * 2]
    };
    out!(
        "sweep: streams {streams_list:?} x fps {fps_list:?}, deadline budget {:.0}ms, {} frames per stream",
        deadline.as_secs_f64() * 1e3,
        args.frames
    );

    // ---- The sweep. The capacity point (8 streams at the base rate, the
    // acceptance target) also records a full per-tenant trace.
    let capacity_streams = if args.smoke { 2 } else { 8 };
    let mut points: Vec<Point> = Vec::new();
    for &fps in &fps_list {
        for &streams in streams_list {
            let mut cfg = FleetConfig::small(streams, args.frames);
            cfg.base.width = size.0;
            cfg.base.height = size.1;
            cfg.base.period = Duration::from_secs_f64(1.0 / fps as f64);
            cfg.base.channel_capacity = 8;
            cfg.pool_workers = std::thread::available_parallelism()
                .map_or(2, std::num::NonZero::get)
                .clamp(2, 8);
            cfg.deadline = deadline;
            cfg.max_utilization = 0.85;
            // The fleet is provisioned with a guaranteed floor of
            // `capacity_streams`: those are admitted unconditionally, and
            // the utilization probe protects the floor's SLO by rejecting
            // marginal streams beyond it. (Measured utilization on a
            // contended host is far too noisy to gate the floor itself.)
            cfg.min_admitted = capacity_streams;
            cfg.admit_interval = Duration::from_millis(40);
            cfg.monitor_tick = Duration::from_millis(8);
            cfg.boost_backlog = 2;
            cfg.warmup = 2;
            if streams == capacity_streams && fps == fps_base {
                cfg.base.trace = Some(TraceMode::Full);
            }
            let run = run_fleet(&cfg);
            out!(
                "  streams={streams:>2} fps={fps:>3}: admitted={} rejected={} slo={}/{} misses={} p99(worst)={:.1}ms util mean={:.2} peak={:.2} wall={:.1}s",
                run.admitted(),
                run.rejected(),
                run.tenants_within_slo(),
                run.admitted(),
                total_misses(&run),
                worst_p99(&run).as_secs_f64() * 1e3,
                run.mean_utilization,
                run.peak_utilization,
                run.wall.as_secs_f64()
            );
            points.push(Point { streams, fps, run });
        }
    }

    // ---- Table + knee. A point is "sustained" when every requested
    // stream was admitted, met the SLO, and missed nothing.
    let sustained = |p: &Point| {
        p.run.admitted() == p.streams
            && p.run.tenants_within_slo() == p.streams
            && total_misses(&p.run) == 0
    };
    let knee = points
        .iter()
        .filter(|p| sustained(p))
        .max_by_key(|p| p.streams as u64 * p.fps);
    let headers = [
        "streams",
        "fps",
        "admitted",
        "rejected",
        "slo_ok",
        "misses",
        "p99_ms",
        "util",
        "sustained",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.streams.to_string(),
                p.fps.to_string(),
                p.run.admitted().to_string(),
                p.run.rejected().to_string(),
                p.run.tenants_within_slo().to_string(),
                total_misses(&p.run).to_string(),
                format!("{:.1}", worst_p99(&p.run).as_secs_f64() * 1e3),
                format!("{:.2}", p.run.mean_utilization),
                if sustained(p) { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table("fleet capacity (streams x fps)", &headers, &rows);
    for r in &rows {
        csv_line(r);
    }
    match knee {
        Some(p) => out!(
            "knee: {} streams x {} fps sustained ({} frames/s aggregate, 0 deadline misses)",
            p.streams,
            p.fps,
            p.streams as u64 * p.fps
        ),
        None => out!("knee: no sweep point was fully sustained"),
    }

    // ---- The serial baseline the fleet is judged against: one stream
    // after another. The last stream's first frame waits for every
    // predecessor's full makespan.
    // Full-length estimate from the calibrated per-frame cost: stream k's
    // frames wait for all k-1 predecessors' complete makespans.
    let serial_delay = c_serial * ((capacity_streams as u32 - 1).max(1) * args.frames as u32);
    out!(
        "serial baseline: {} back-to-back streams delay the last stream's frames by {:.0}ms — {:.1}x the {:.0}ms deadline the fleet holds",
        capacity_streams,
        serial_delay.as_secs_f64() * 1e3,
        (serial_delay.as_secs_f64() / deadline.as_secs_f64()).max(1.0),
        deadline.as_secs_f64() * 1e3
    );

    // ---- Capacity point: shared-cache accounting + fleet trace.
    let capacity = points
        .iter()
        .find(|p| p.streams == capacity_streams && p.fps == fps_base)
        .expect("the capacity point is in the sweep");
    let cap_run = &capacity.run;
    let n_regimes = cap_run.table.len() as u64;
    out!(
        "shared schedule cache at {} streams: {} searches, {} memory hits ({} tenants x {} regimes paid {} searches total)",
        capacity_streams,
        cap_run.cache_searches,
        cap_run.cache_hits,
        cap_run.admitted(),
        n_regimes,
        cap_run.cache_searches
    );
    let boosts: u64 = cap_run.tenants.iter().map(|t| t.boost_ticks).sum();
    out!("weighted fairness: {boosts} monitor ticks routed a lagging tenant to the urgent lane");
    let mut traced = 0usize;
    let mut conformant = 0usize;
    if let Some(fleet_obs) = cap_run.observability(50.0) {
        traced = fleet_obs.conformance.len();
        conformant = fleet_obs.conformance.iter().filter(|(_, ok)| *ok).count();
        out!(
            "observability: one Chrome trace, {} tenant pids; conformance rollup {}/{} tenants conformant",
            traced,
            conformant,
            traced
        );
        if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&args.trace_out, &fleet_obs.trace_json) {
            Ok(()) => out!("fleet trace written to {}", args.trace_out),
            Err(e) => out!("could not write {}: {e}", args.trace_out),
        }
    }

    // ---- Churn phase: the dynamic tenant lifecycle over a long run.
    // Two Guaranteed tenants run a long paced stream; a burst of
    // free-running BestEffort hogs arrives mid-run; a Standard probe is
    // rejected by the admission gate under that load; the hogs are then
    // detached (mid-run departure), and the retry loop re-admits the
    // rejected probe once utilization decays through the hysteresis band.
    let churn_frames: u64 = if args.smoke { 30 } else { 300 };
    const CHURN_MAX_UTIL: f64 = 0.35;
    const CHURN_HYSTERESIS: f64 = 0.10;
    let mut ccfg = FleetConfig::small(0, churn_frames);
    ccfg.base.width = size.0;
    ccfg.base.height = size.1;
    ccfg.base.period = period_base;
    ccfg.base.channel_capacity = 8;
    // A deliberately narrow pool: the burst must actually contend so the
    // gate has something to reject against, on fast hosts too.
    ccfg.pool_workers = 2;
    ccfg.deadline = deadline;
    ccfg.max_utilization = CHURN_MAX_UTIL;
    // The floor covers the two Guaranteed tenants and the whole burst:
    // the arrival burst is part of the scenario, not what the gate is
    // being demonstrated against — the probe after it is.
    ccfg.min_admitted = 6;
    ccfg.monitor_tick = Duration::from_millis(8);
    ccfg.boost_backlog = 2;
    ccfg.warmup = 2;
    ccfg.readmit = true;
    ccfg.readmit_hysteresis = CHURN_HYSTERESIS;
    // Shedding engages above the shed threshold only — kept clear of the
    // admission knee so the two mechanisms do not mask each other.
    ccfg.shed_utilization = 0.5;
    ccfg.shed_hysteresis = 0.15;
    out!(
        "churn: {churn_frames}-frame Guaranteed streams at {fps_base} fps, BestEffort burst of 4, max_util {CHURN_MAX_UTIL}, hysteresis {CHURN_HYSTERESIS}"
    );
    let fleet = Fleet::launch(ccfg);
    let guaranteed: Vec<_> = (0..2)
        .map(|_| fleet.attach(TenantSpec::with_class(PriorityClass::Guaranteed)))
        .collect();
    thread::sleep(Duration::from_millis(if args.smoke { 200 } else { 800 }));

    // The BestEffort arrival burst: hogs paced at the calibrated serial
    // frame cost — each one demands a full core's worth of work — with an
    // effectively unbounded frame budget (they depart, they never finish).
    let hog_spec = TenantSpec {
        class: PriorityClass::BestEffort,
        period: Some(c_serial),
        n_frames: Some(1_000_000),
        ..TenantSpec::default()
    };
    let burst: Vec<_> = (0..4).map(|_| fleet.attach(hog_spec.clone())).collect();
    let hogs: Vec<_> = burst.iter().filter(|h| h.admitted).collect();
    out!(
        "churn: burst admitted {}/{} BestEffort hogs",
        hogs.len(),
        burst.len()
    );

    // Attach 1-frame probes until the gate refuses one against live load.
    let probe_deadline = Instant::now() + Duration::from_secs(20);
    let mut probe = None;
    while Instant::now() < probe_deadline {
        let p = fleet.attach(TenantSpec {
            n_frames: Some(1),
            ..TenantSpec::default()
        });
        if !p.admitted {
            out!(
                "churn: probe tenant {} rejected at measured utilization {:.2}",
                p.tenant,
                p.utilization
            );
            probe = Some(p);
            break;
        }
        thread::sleep(Duration::from_millis(50));
    }
    if probe.is_none() {
        out!(
            "churn: gate never rejected a probe (util stayed at {:.2})",
            fleet.utilization()
        );
    }

    // A window of genuine contention, then the mid-run departures.
    thread::sleep(Duration::from_millis(if args.smoke { 300 } else { 2000 }));
    let mut hog_sheds = 0u64;
    let mut drains_clean = true;
    for h in &hogs {
        match fleet.detach_and_wait(h.tenant, Duration::from_secs(120)) {
            Some(rollup) => {
                hog_sheds += rollup.sheds;
                // Drain accounting: a digitized frame either completed or
                // was recorded as a policy drop downstream (deadline skip,
                // STM drop) — nothing vanishes silently, and the budget was
                // genuinely cut mid-run.
                let h = &rollup.health;
                let accounted = rollup.stats.frames_completed
                    + h.deadline_skips
                    + h.stm_get_drops
                    + h.stm_put_drops;
                drains_clean &= rollup.stats.frames_completed <= rollup.digitized
                    && accounted >= rollup.digitized
                    && rollup.digitized < 1_000_000;
            }
            None => drains_clean = false,
        }
    }
    out!(
        "churn: {} hogs departed mid-run ({} frames shed under pressure), drains clean: {drains_clean}",
        hogs.len(),
        hog_sheds
    );

    if let Some(p) = &probe {
        let readmit_deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < readmit_deadline
            && fleet.tenant_state(p.tenant) == Some(LifecycleState::Rejected)
        {
            thread::sleep(Duration::from_millis(10));
        }
    }
    let churn = fleet.finish();

    let churn_probe = probe.as_ref().map(|p| &churn.tenants[p.tenant]);
    let guaranteed_misses: u64 = guaranteed
        .iter()
        .map(|g| churn.deadline_misses(g.tenant))
        .sum();
    let guaranteed_ok = guaranteed.iter().all(|g| {
        let t = &churn.tenants[g.tenant];
        t.stats
            .as_ref()
            .is_some_and(|s| s.frames_completed == churn_frames && s.p99_latency <= deadline)
    });
    let churn_headers = [
        "tenant",
        "class",
        "state",
        "frames",
        "p99_ms",
        "misses",
        "sheds",
        "readmitted",
    ];
    let churn_rows: Vec<Vec<String>> = churn
        .tenants
        .iter()
        .map(|t| {
            vec![
                t.tenant.to_string(),
                t.class.label().to_string(),
                t.state.label().to_string(),
                t.stats
                    .as_ref()
                    .map_or_else(|| "-".into(), |s| s.frames_completed.to_string()),
                t.stats.as_ref().map_or_else(
                    || "-".into(),
                    |s| format!("{:.1}", s.p99_latency.as_secs_f64() * 1e3),
                ),
                churn.deadline_misses(t.tenant).to_string(),
                t.sheds.to_string(),
                if t.readmitted { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "fleet churn (dynamic lifecycle)",
        &churn_headers,
        &churn_rows,
    );
    for r in &churn_rows {
        csv_line(r);
    }
    match churn_probe {
        Some(t) if t.readmitted => out!(
            "churn: departure re-admitted the rejected probe at utilization {:.2} (threshold {:.2} − hysteresis {:.2})",
            t.readmit_utilization.unwrap_or(f64::NAN),
            CHURN_MAX_UTIL,
            CHURN_HYSTERESIS
        ),
        _ => out!("churn: rejected probe was NOT re-admitted"),
    }
    out!(
        "churn: Guaranteed tenants finished {}x{churn_frames} frames with {guaranteed_misses} deadline misses through the burst",
        guaranteed.len()
    );

    // ---- Reports. ----
    if let Some(path) = &args.json {
        let mut json = JsonReport::new("fleet");
        json.meta("frame_size", Json::Str(format!("{}x{}", size.0, size.1)));
        json.meta("serial_cost_ms", Json::Num(c_serial.as_secs_f64() * 1e3));
        json.meta("deadline_ms", Json::Num(deadline.as_secs_f64() * 1e3));
        json.meta("fps_base", Json::Num(fps_base as f64));
        json.meta(
            "knee_aggregate_fps",
            Json::Num(knee.map_or(0.0, |p| (p.streams as u64 * p.fps) as f64)),
        );
        json.meta(
            "serial_last_stream_delay_ms",
            Json::Num(serial_delay.as_secs_f64() * 1e3),
        );
        json.meta("churn_frames", Json::Num(churn_frames as f64));
        json.meta("churn_burst_admitted", Json::Num(hogs.len() as f64));
        json.meta(
            "churn_hogs_departed",
            Json::Num(
                hogs.iter()
                    .filter(|h| churn.tenants[h.tenant].state == LifecycleState::Departed)
                    .count() as f64,
            ),
        );
        json.meta("churn_hog_sheds", Json::Num(hog_sheds as f64));
        json.meta(
            "churn_probe_rejected",
            Json::Num(f64::from(u8::from(probe.is_some()))),
        );
        json.meta(
            "churn_probe_reject_util",
            Json::Num(probe.as_ref().map_or(-1.0, |p| p.utilization)),
        );
        json.meta(
            "churn_probe_readmitted",
            Json::Num(f64::from(u8::from(
                churn_probe.is_some_and(|t| t.readmitted),
            ))),
        );
        json.meta(
            "churn_probe_readmit_util",
            Json::Num(
                churn_probe
                    .and_then(|t| t.readmit_utilization)
                    .unwrap_or(-1.0),
            ),
        );
        json.meta(
            "churn_guaranteed_misses",
            Json::Num(guaranteed_misses as f64),
        );
        for p in &points {
            json.row(vec![
                ("streams", Json::Num(p.streams as f64)),
                ("fps", Json::Num(p.fps as f64)),
                ("admitted", Json::Num(p.run.admitted() as f64)),
                ("rejected", Json::Num(p.run.rejected() as f64)),
                ("within_slo", Json::Num(p.run.tenants_within_slo() as f64)),
                ("misses", Json::Num(total_misses(&p.run) as f64)),
                (
                    "worst_p99_ms",
                    Json::Num(worst_p99(&p.run).as_secs_f64() * 1e3),
                ),
                ("util_mean", Json::Num(p.run.mean_utilization)),
                ("util_peak", Json::Num(p.run.peak_utilization)),
                ("cache_searches", Json::Num(p.run.cache_searches as f64)),
                ("cache_hits", Json::Num(p.run.cache_hits as f64)),
                ("wall_s", Json::Num(p.run.wall.as_secs_f64())),
            ]);
        }
        match json.write(std::path::Path::new(path)) {
            Ok(()) => out!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("writing {}: {e}", args.out);
        std::process::exit(1);
    }

    // ---- Checks (non-zero exit on failure). ----
    let heaviest = points
        .iter()
        .max_by_key(|p| p.streams as u64 * p.fps)
        .expect("sweep is non-empty");
    let mut checks = vec![
        (
            format!("{capacity_streams} concurrent streams sustained with 0 p99 deadline misses"),
            sustained(capacity),
        ),
        (
            format!(
                "{} tenants paid exactly {} table searches through the shared cache",
                cap_run.admitted(),
                n_regimes
            ),
            cap_run.cache_searches == n_regimes
                && cap_run.cache_hits == cap_run.admitted() as u64 * n_regimes,
        ),
        (
            "past the knee: admission rejections, not fleet-wide misses".to_string(),
            heaviest.run.rejected() > 0
                || heaviest.run.tenants_within_slo() == heaviest.run.admitted(),
        ),
        (
            "churn: mid-run departure re-admitted a previously rejected stream".to_string(),
            churn_probe.is_some_and(|t| {
                t.readmitted
                    && t.state == LifecycleState::Completed
                    && t.readmit_utilization
                        .is_some_and(|u| u <= CHURN_MAX_UTIL - CHURN_HYSTERESIS + 1e-9)
            }),
        ),
        (
            format!(
                "churn: {} Guaranteed tenants held 0 p99 deadline misses through the BestEffort burst",
                guaranteed.len()
            ),
            guaranteed_ok && guaranteed_misses == 0,
        ),
        (
            "churn: every departed hog drained without losing in-flight frames".to_string(),
            !hogs.is_empty()
                && drains_clean
                && hogs
                    .iter()
                    .all(|h| churn.tenants[h.tenant].state == LifecycleState::Departed),
        ),
    ];
    if !args.smoke {
        checks.push((
            format!(
                "serial back-to-back processing could not keep up (last-stream delay {:.0}ms > deadline {:.0}ms)",
                serial_delay.as_secs_f64() * 1e3,
                deadline.as_secs_f64() * 1e3
            ),
            serial_delay > deadline,
        ));
        checks.push((
            "capacity point produced a per-tenant-pid fleet trace".to_string(),
            traced == cap_run.admitted() && traced > 0 && conformant <= traced,
        ));
    }
    run_checks(&checks);
    println!("fleet: PASS");
}
