//! §3.3 cluster experiment — "the minimal latency schedule for an iteration
//! may not use all processors but is instead restricted to the processors
//! on a single node. In this case, distinct iterations on distinct nodes
//! can overlap."
//!
//! Sweeps the interconnect cost on the paper's 4×4 cluster and compares:
//!
//! * `whole-cluster` — the optimal enumerator over all 16 processors,
//!   paying locality-dependent communication;
//! * `node-pipelined` — optimal iteration confined to one node, iterations
//!   rotated across nodes.

use cds_core::multinode::{is_node_confined, node_pipelined};
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState, CommCosts};

fn main() {
    let graph = builders::color_tracker();
    let state = AppState::new(8);
    println!("Reproduction of the paper's §3.3 cluster strategy: 4 nodes x 4 processors, 8 models");
    println!("sweeping the interconnect cost multiplier\n");

    let cfg = OptimalConfig {
        max_nodes: 300_000,
        ..OptimalConfig::default()
    };

    let mut rows = Vec::new();
    for scale in [0u64, 1, 20, 100, 500] {
        let base = CommCosts::default_cluster();
        let comm = CommCosts {
            inter_latency: base.inter_latency * scale,
            inter_per_kib: base.inter_per_kib * scale,
            ..base
        };
        let cluster = ClusterSpec::new(4, 4, comm);

        let whole = optimal_schedule(&graph, &cluster, &state, &cfg);
        let node = node_pipelined(&graph, &cluster, &state, &cfg);
        let whole_confined = {
            // Does the whole-cluster optimum stay on one node?
            let nodes: std::collections::HashSet<_> = whole
                .best
                .iteration
                .placements
                .iter()
                .map(|p| cluster.node_of(p.proc))
                .collect();
            nodes.len() == 1
        };
        assert!(is_node_confined(&node, &cluster));

        rows.push(vec![
            format!("{scale}x"),
            format!("{:.3}", whole.minimal_latency.as_secs_f64()),
            format!("{:.3}", whole.best.ii.as_secs_f64()),
            format!("{}", if whole_confined { "1 node" } else { ">1 node" }),
            format!("{:.3}", node.iteration.latency.as_secs_f64()),
            format!("{:.3}", node.ii.as_secs_f64()),
            format!("{}", whole.complete),
        ]);
        csv_line(&[
            "multinode".to_string(),
            scale.to_string(),
            format!("{:.4}", whole.minimal_latency.as_secs_f64()),
            format!("{:.4}", whole.best.ii.as_secs_f64()),
            whole_confined.to_string(),
            format!("{:.4}", node.iteration.latency.as_secs_f64()),
            format!("{:.4}", node.ii.as_secs_f64()),
        ]);
    }
    print_table(
        "Whole-cluster optimum vs node-pipelined (latency / II in seconds)",
        &[
            "interconnect",
            "whole latency",
            "whole II",
            "whole spread",
            "node latency",
            "node II",
            "search complete",
        ],
        &rows,
    );

    println!("\nshape checks:");
    let cheap_spread = rows[0][3] == ">1 node";
    let costly_confined = rows.last().unwrap().clone();
    let whole_last: f64 = costly_confined[1].parse().unwrap();
    let node_last: f64 = costly_confined[4].parse().unwrap();
    let checks = [
        (
            "with a free interconnect, the optimum spreads across nodes",
            cheap_spread,
        ),
        (
            "with a prohibitive interconnect, node confinement loses nothing",
            node_last <= whole_last + 1e-6,
        ),
        (
            "node pipelining always keeps the one-node latency while multiplying throughput",
            rows.iter().all(|r| {
                let node_ii: f64 = r[5].parse().unwrap();
                let node_lat: f64 = r[4].parse().unwrap();
                node_ii < node_lat
            }),
        ),
    ];
    run_checks(&checks);
}
