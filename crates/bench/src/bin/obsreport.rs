//! Live observability report — the obs crate end to end on a real run.
//!
//! One binary demonstrates the whole PR-5 subsystem:
//!
//! 1. Runs the live tracker (threads + STM) with a regime controller built
//!    from a precomputed [`ScheduleTable`], recording per-stage spans.
//! 2. Reconstructs frame lifecycles and prints latency/throughput/
//!    uniformity statistics from the drained spans.
//! 3. Joins the measured per-stage costs against the table's predictions
//!    in a schedule-conformance report (cost drift, misclassification,
//!    channel occupancy).
//! 4. Exports a merged Chrome trace — live run (pid 0) next to a
//!    simulated run of the same application (pid 1) — and validates it.
//! 5. Measures the tracing overhead of `TraceMode::Off/Ring/Full` against
//!    a run built with no recorder at all.
//!
//! Output goes to stdout and (by default) `results/obs.txt`; the Chrome
//! trace to `results/obs_trace.json`. Exit code is non-zero when a
//! structural check fails (no frames committed, invalid trace JSON).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cds_core::optimal::OptimalConfig;
use cds_core::table::ScheduleTable;
use cluster::{simulate_online, ClusterSpec, FrameClock, OnlineConfig};
use obs::{ChromeTrace, LifecycleStats, RegimeSpec, TraceMode};
use runtime::{OnlineExecutor, RegimeController, Stage, TrackerApp, TrackerConfig};
use taskgraph::{builders, AppState, Decomposition, Micros, TaskGraph, TaskId};
use vision::Scene;

struct Args {
    frames: u64,
    quick: bool,
    out: String,
    trace_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 48,
        quick: false,
        out: "results/obs.txt".to_string(),
        trace_out: "results/obs_trace.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--frames" => {
                let v = it.next().expect("--frames needs a value");
                args.frames = v.parse().expect("--frames must be an integer");
            }
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--trace-out" => args.trace_out = it.next().expect("--trace-out needs a path"),
            other => {
                eprintln!("unknown flag {other}; usage: obsreport [--frames N] [--quick] [--out PATH] [--trace-out PATH]");
                std::process::exit(2);
            }
        }
    }
    if args.quick {
        args.frames = args.frames.min(16);
    }
    args
}

fn task_names(graph: &TaskGraph) -> Vec<String> {
    (0..graph.n_tasks())
        .map(|i| graph.task(TaskId(i)).name.clone())
        .collect()
}

/// Extract one regime's predictions from its precomputed schedule.
fn regime_spec(table: &ScheduleTable, state: &AppState, dp_task: TaskId) -> RegimeSpec {
    let sched = table.get(state).expect("state was precomputed");
    let decomp = sched
        .iteration
        .decomp
        .get(&dp_task)
        .map_or((1, 1), |d| (d.fp as u16, d.mp as u16));
    RegimeSpec {
        regime: state.n_models,
        predicted_latency_us: sched.latency().0,
        ii_us: sched.ii.0,
        occupancy_bound: sched.overlapping_iterations() as u32,
        decomp,
        stage_costs_us: sched
            .iteration
            .stage_predictions()
            .iter()
            .map(|p| (p.task.0 as u8, p.wall.0))
            .collect(),
    }
}

/// Median wall time of `reps` fresh runs of `cfg` (pipeline threads join
/// inside each run, so a sample is a full build + run + teardown).
fn timed_runs(cfg: &TrackerConfig, reps: usize) -> Duration {
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let app = TrackerApp::build(cfg, None);
            let t0 = Instant::now();
            let _ = OnlineExecutor::run(&app, 0);
            t0.elapsed()
        })
        .collect();
    samples.sort();
    // Minimum, not mean: tracing overhead is a lower bound question and
    // min is the standard low-noise estimator for wall-clock microbenches.
    samples[0]
}

fn main() {
    let args = parse_args();
    let mut report = String::new();
    let mut failures: Vec<String> = Vec::new();
    macro_rules! out {
        ($($t:tt)*) => {{
            let line = format!($($t)*);
            println!("{line}");
            let _ = writeln!(report, "{line}");
        }};
    }

    out!("== obsreport: live spans, Chrome trace, schedule conformance ==");

    // ---- Offline side: the precomputed table and its predictions. ----
    let graph = builders::color_tracker();
    let cluster_spec = ClusterSpec::single_node(4);
    let t4 = graph
        .task_by_name("Target Detection")
        .expect("tracker graph has T4");
    let states = [AppState::new(1), AppState::new(3)];
    let table =
        ScheduleTable::precompute(&graph, &cluster_spec, &states, &OptimalConfig::default());
    let specs: Vec<RegimeSpec> = states.iter().map(|s| regime_spec(&table, s, t4)).collect();
    for spec in &specs {
        out!(
            "regime {}: L*={}us II={}us FP={} MP={} occupancy<={}",
            spec.regime,
            spec.predicted_latency_us,
            spec.ii_us,
            spec.decomp.0,
            spec.decomp.1,
            spec.occupancy_bound
        );
    }

    // ---- Live run: population 1 -> 3 mid-stream, controller attached. ----
    let n_frames = args.frames;
    let join_at = (n_frames / 3).max(2);
    let mut cfg = TrackerConfig::small(3, n_frames);
    cfg.period = Duration::from_millis(2);
    cfg.pool_workers = 2;
    cfg.trace = Some(TraceMode::Full);
    let scene = Scene::demo(cfg.width, cfg.height, 3, 13)
        .with_visit(0, 0, u64::MAX)
        .with_visit(1, join_at, u64::MAX)
        .with_visit(2, join_at, u64::MAX);
    let controller =
        Arc::new(RegimeController::from_schedule_table(&table, t4, 1, 2).expect("non-empty table"));
    let app = TrackerApp::build_with_scene(&cfg, scene, Some(Arc::clone(&controller)));
    let stats = OnlineExecutor::run(&app, 2);
    out!(
        "live run: {}x{} frames={} period={:?} pool_workers={} -> completed={} switches={}",
        cfg.width,
        cfg.height,
        n_frames,
        cfg.period,
        cfg.pool_workers,
        stats.frames_completed,
        controller.switches()
    );
    out!("health: {}", app.health.report());

    let dump = app.recorder.as_ref().expect("trace was requested").drain();
    out!(
        "spans: recorded={} retained={} evicted={} threads={}",
        dump.recorded,
        dump.spans.len(),
        dump.evicted,
        dump.threads.len()
    );
    if dump.spans.is_empty() {
        failures.push("no spans recorded by a Full-mode run".to_string());
    }

    // ---- Frame lifecycles from the span stream. ----
    let frames = obs::frames::reconstruct(&dump);
    let life = LifecycleStats::from_frames(&frames);
    out!(
        "lifecycle: total={} committed={} skipped={} incomplete={}",
        life.frames_total,
        life.committed,
        life.skipped,
        life.incomplete
    );
    out!(
        "latency: p50={:.2}ms p95={:.2}ms max={:.2}ms  throughput={:.1}/s  uniformity_cov={:.3}",
        life.latency.p50() as f64 / 1e6,
        life.latency.p95() as f64 / 1e6,
        life.latency.max() as f64 / 1e6,
        life.throughput_hz,
        life.uniformity_cov
    );
    if life.committed == 0 {
        failures.push("no frames committed in the live run".to_string());
    }

    // Cross-check the span-derived view against the sink's own ledger.
    if life.committed != stats.frames_completed {
        failures.push(format!(
            "span-reconstructed commits ({}) disagree with the sink ledger ({})",
            life.committed, stats.frames_completed
        ));
    }

    // ---- Schedule conformance. ----
    let bound = specs.iter().map(|s| s.occupancy_bound).max().unwrap_or(1);
    let channels = app.channel_checks(bound);
    let scene_ref = &app.scene;
    let count_fn = move |ts: u64| scene_ref.population_at(ts);
    let conf = obs::conformance::check(&frames, &count_fn, &specs, &channels, 5.0, &Stage::names());
    out!("{conf}");

    // ---- Merged Chrome trace: live (pid 0) + simulated (pid 1). ----
    let mut chrome = ChromeTrace::new();
    chrome.push_dump(&dump, 0, "live tracker");
    let mut sim_cfg = OnlineConfig::new(
        FrameClock::new(Micros::from_millis(2), n_frames),
        AppState::new(3),
    );
    let d3 = specs[1].decomp;
    sim_cfg
        .decomposition
        .insert(t4, Decomposition::new(u32::from(d3.0), u32::from(d3.1)));
    sim_cfg.trace_mode = cluster::TraceMode::Full;
    let sim = simulate_online(&graph, &cluster_spec, sim_cfg);
    sim.trace
        .push_into_chrome(&mut chrome, 1, "simulated", &task_names(&graph));
    let json = chrome.to_json();
    match obs::chrome::validate(&json) {
        Ok(n) => out!("chrome trace: {n} events (live + simulated), JSON valid"),
        Err(e) => failures.push(format!("chrome trace invalid: {e}")),
    }
    if let Some(dir) = std::path::Path::new(&args.trace_out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&args.trace_out, &json) {
        failures.push(format!("writing {}: {e}", args.trace_out));
    } else {
        out!("chrome trace written to {}", args.trace_out);
    }

    // ---- Tracing overhead: Off/Ring/Full vs a recorder-free build. ----
    let reps = if args.quick { 3 } else { 5 };
    let ov_frames = if args.quick { 24 } else { 96 };
    let mut ov_cfg = TrackerConfig::small(2, ov_frames);
    ov_cfg.period = Duration::ZERO; // free-running: tracing cost is maximally visible
    let base = timed_runs(&ov_cfg, reps);
    out!(
        "overhead ({} frames, min of {} runs): untraced {:.2}ms",
        ov_frames,
        reps,
        base.as_secs_f64() * 1e3
    );
    for (name, mode, gate) in [
        ("off", TraceMode::Off, Some(1.0)),
        ("ring(4096)", TraceMode::Ring(4096), None),
        ("full", TraceMode::Full, None),
    ] {
        ov_cfg.trace = Some(mode);
        let t = timed_runs(&ov_cfg, reps);
        let pct = (t.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        let verdict = match gate {
            Some(limit) if pct >= limit => "FAIL",
            Some(_) => "PASS",
            None => "info",
        };
        out!(
            "overhead: {name:<10} {:.2}ms  ({pct:+.2}% vs untraced)  [{verdict}]",
            t.as_secs_f64() * 1e3
        );
        if let (Some(limit), "FAIL") = (gate, verdict) {
            // Wall-clock noise on shared runners can exceed the budget even
            // for a no-op branch; record loudly, fail only structural checks.
            out!("note: TraceMode::{name} exceeded the {limit}% budget on this host (noise-prone metric)");
        }
    }

    // ---- Verdict + report file. ----
    if failures.is_empty() {
        out!("obsreport: PASS");
    } else {
        for f in &failures {
            out!("FAILURE: {f}");
        }
        out!("obsreport: FAIL");
    }
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&args.out, &report) {
        eprintln!("writing {}: {e}", args.out);
        std::process::exit(1);
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
