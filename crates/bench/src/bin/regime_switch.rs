//! §3.4 extension experiment — constrained dynamism end to end: a kiosk
//! customer process (Poisson arrivals, exponential dwell) drives the true
//! state; we compare scheduling strategies over the same frame stream:
//!
//! * `static-1` / `static-max` — one fixed precomputed schedule;
//! * `regime-cutover` / `regime-drain` — the paper's proposal (debounced
//!   detection + table lookup), under both transition policies;
//! * `oracle` — instant, error-free state knowledge (lower bound).

use cds_core::optimal::OptimalConfig;
use cds_core::switcher::{
    simulate_regime_switched, ScheduleStrategy, SwitchConfig, TransitionPolicy,
};
use cds_core::table::ScheduleTable;
use cluster::sweep::{sweep, SweepConfig};
use cluster::{ClusterSpec, FrameClock, OnlineConfig, SimArena, StateTrack, TraceMode};
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState, Decomposition, Micros};
use vision::kiosk::generate_visits;
use vision::{occupancy_track, KioskConfig};

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);

    println!("Regime switching under a dynamic customer process (paper §3.4)");

    // Customer process: ~600 frames, up to 5 people.
    let kiosk = KioskConfig {
        mean_interarrival_frames: 60.0,
        mean_dwell_frames: 180.0,
        max_people: 5,
        n_frames: 600,
        seed: 20260706,
    };
    let visits = generate_visits(&kiosk);
    let occ = occupancy_track(&visits, kiosk.n_frames);
    let track = StateTrack::from_changes(occ.iter().map(|&(f, n)| (f, AppState::new(n))).collect());
    println!(
        "workload: {} visits, {} regime transitions over {} frames, occupancy 0..={}",
        visits.len(),
        track.n_transitions(),
        kiosk.n_frames,
        occ.iter().map(|&(_, n)| n).max().unwrap_or(0)
    );

    // Precompute the table over the regime set (plus 0 = idle).
    let states: Vec<AppState> = (0..=5u32).map(AppState::new).collect();
    let table = ScheduleTable::precompute(&graph, &cluster, &states, &OptimalConfig::default());
    println!("schedule table: {} entries", table.len());

    let strategies: Vec<(&str, ScheduleStrategy)> = vec![
        ("static-1", ScheduleStrategy::Static(AppState::new(1))),
        ("static-max", ScheduleStrategy::Static(AppState::new(5))),
        (
            "regime-cutover",
            ScheduleStrategy::RegimeTable {
                confirm_after: 3,
                policy: TransitionPolicy::CutOver,
            },
        ),
        (
            "regime-drain",
            ScheduleStrategy::RegimeTable {
                confirm_after: 3,
                policy: TransitionPolicy::Drain,
            },
        ),
        ("oracle", ScheduleStrategy::Oracle),
    ];

    let mut rows = Vec::new();

    // Baseline 0: the general online scheduler facing the same dynamic
    // environment, with one fixed decomposition (a tuner's best guess).
    {
        let t4 = graph.task_by_name("Target Detection").unwrap();
        let mut cfg = OnlineConfig::new(
            FrameClock::new(Micros::from_millis(500), kiosk.n_frames),
            AppState::new(2),
        );
        cfg.state_track = Some(track.clone());
        cfg.decomposition.insert(t4, Decomposition::new(1, 4));
        cfg.warmup_frames = 4;
        cfg.trace_mode = TraceMode::Off;
        let mut arena = SimArena::new();
        let out = arena.simulate(&graph, &cluster, &cfg);
        rows.push(vec![
            "online (pthread)".to_string(),
            format!("{:.3}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.max_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.throughput_hz),
            "-".to_string(),
            "-".to_string(),
        ]);
        csv_line(&[
            "regime_switch".to_string(),
            "online".to_string(),
            format!("{:.4}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", out.metrics.throughput_hz),
            "-".to_string(),
            "-".to_string(),
        ]);
    }

    // The five strategies are independent runs over the same frame stream:
    // sweep them in parallel, results in strategy order.
    let swept = sweep(SweepConfig::new(), strategies, |_, _, (name, strategy)| {
        let cfg = SwitchConfig {
            clock: FrameClock::new(Micros::from_millis(500), kiosk.n_frames),
            strategy,
            warmup_frames: 4,
        };
        (
            name,
            simulate_regime_switched(&graph, &cluster, &table, &track, &cfg),
        )
    });
    println!("strategy sweep: {}", swept.stats);
    for (name, out) in &swept.results {
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.max_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.throughput_hz),
            out.switches.len().to_string(),
            out.mismatch_frames.to_string(),
        ]);
        csv_line(&[
            "regime_switch".to_string(),
            name.to_string(),
            format!("{:.4}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", out.metrics.throughput_hz),
            out.switches.len().to_string(),
            out.mismatch_frames.to_string(),
        ]);
    }
    print_table(
        "Strategies over the same customer process",
        &[
            "strategy",
            "mean latency (s)",
            "max latency (s)",
            "throughput (1/s)",
            "switches",
            "mismatched frames",
        ],
        &rows,
    );

    // Row indices: 0 online, 1 static-1, 2 static-max, 3 regime-cutover,
    // 4 regime-drain, 5 oracle.
    let lat = |i: usize| rows[i][1].parse::<f64>().unwrap();
    println!("\nshape checks:");
    let checks = [
        (
            "regime switching beats both static schedules on mean latency",
            lat(3) < lat(1) && lat(3) < lat(2),
        ),
        (
            "regime switching beats the online scheduler",
            lat(3) < lat(0),
        ),
        (
            "regime switching is within 40% of the oracle",
            lat(3) < lat(5) * 1.4,
        ),
        (
            "mismatch exposure is a small fraction of the run",
            rows[3][5].parse::<u64>().unwrap() * 4 < kiosk.n_frames,
        ),
    ];
    run_checks(&checks);
}
