//! Record/replay determinism, end to end: record a live run (clean, with
//! injected faults, and with a regime switch), replay each recording twice
//! through the real pipeline, and verify every determinism witness the
//! subsystem claims:
//!
//! * **commits** — each replay's `(frame, count, location-hash)` commit
//!   column equals the recording's, bit for bit;
//! * **re-recordings** — two replays of one recording re-record to
//!   byte-identical `CDSREC01` files and byte-identical canonical
//!   virtual-time Chrome traces;
//! * **skips and switches** — recorded degradation skips and confirmed
//!   regime switches reproduce exactly (skips re-injected at their
//!   `(stage, frame)` coordinates, switches re-derived by a fresh
//!   controller from the replayed observations);
//! * **traces** — the live-vs-replay span dumps agree on every frame's
//!   semantic skeleton (`obs::diff`), and both the live wall-clock trace
//!   and the canonical replay trace pass the Chrome-format validator.
//!
//! Wall-clock numbers (record overhead, replay speed, recording size) are
//! reported but not gated — determinism is the product here, speed is
//! incidental (a replay runs unpaced, so it is normally much faster than
//! the paced live run).
//!
//! Flags: `--smoke` (shorter streams), `--json PATH` (machine-readable
//! report).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use kiosk_bench::{csv_line, print_table, run_checks, Json, JsonReport};
use runtime::{
    record_run, record_run_with_scene, replay_run, FaultPlan, RecordedRun, RegimeController, Stage,
    TrackerConfig,
};
use vision::Scene;

struct Scenario {
    name: &'static str,
    run: RecordedRun,
    /// Fresh-controller factory for replays (same table as the recording).
    controller: Box<dyn Fn() -> Option<Arc<RegimeController>>>,
    record_secs: f64,
}

fn scenarios(frames: u64) -> Vec<Scenario> {
    let mut out = Vec::new();

    let cfg = TrackerConfig::small(2, frames);
    let t0 = Instant::now();
    let run = record_run(&cfg, None);
    out.push(Scenario {
        name: "clean",
        run,
        controller: Box::new(|| None),
        record_secs: t0.elapsed().as_secs_f64(),
    });

    let mut cfg = TrackerConfig::small(2, frames);
    cfg.faults = Some(
        FaultPlan::new()
            .stm_error(Stage::Histogram, 2)
            .stm_error(Stage::Peak, frames / 2)
            .build(),
    );
    let t0 = Instant::now();
    let run = record_run(&cfg, None);
    out.push(Scenario {
        name: "faulted",
        run,
        controller: Box::new(|| None),
        record_secs: t0.elapsed().as_secs_f64(),
    });

    let mut cfg = TrackerConfig::small(3, frames);
    cfg.pool_workers = 2;
    cfg.seed = 13;
    let scene = Scene::demo(cfg.width, cfg.height, 3, cfg.seed)
        .with_visit(0, 0, u64::MAX)
        .with_visit(1, frames / 3, u64::MAX)
        .with_visit(2, frames / 3, u64::MAX);
    let mut table = BTreeMap::new();
    table.insert(0, (2, 1));
    table.insert(2, (1, 3));
    let ctl_table = table.clone();
    let t0 = Instant::now();
    let run = record_run_with_scene(
        &cfg,
        scene,
        Some(Arc::new(RegimeController::new(1, 2, table).unwrap())),
    );
    out.push(Scenario {
        name: "regime-switch",
        run,
        controller: Box::new(move || {
            Some(Arc::new(
                RegimeController::new(1, 2, ctl_table.clone()).unwrap(),
            ))
        }),
        record_secs: t0.elapsed().as_secs_f64(),
    });

    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let frames = if smoke { 10 } else { 24 };

    println!("Record/replay determinism: replay twice, byte-compare everything");
    println!(
        "{frames} frames per scenario, backend {:?}",
        vision::BackendKind::from_env()
    );

    let mut json = JsonReport::new("replay");
    json.meta("frames", Json::Num(frames as f64));

    let names = Stage::names();
    let mut rows = Vec::new();
    let mut checks: Vec<(String, bool)> = Vec::new();

    for sc in scenarios(frames) {
        let rec = &sc.run.recording;
        let bytes = rec.to_bytes();

        let t0 = Instant::now();
        let a = replay_run(rec, (sc.controller)());
        let replay_secs = t0.elapsed().as_secs_f64();
        let b = replay_run(rec, (sc.controller)());

        let rerec_identical = a.recording.to_bytes() == b.recording.to_bytes();
        let trace_a = a.recording.canonical_trace_json(&names);
        let trace_identical = trace_a == b.recording.canonical_trace_json(&names);
        let skips_identical = a.recording.skips == rec.skips && b.recording.skips == rec.skips;
        let switches_identical =
            a.recording.switches == rec.switches && b.recording.switches == rec.switches;

        // Live vs replay on the semantic frame skeleton, timing ignored.
        // Under a live controller, which decomposition an in-flight frame
        // used while a switch confirmed is a benign wall-clock race (the
        // stages are decomposition-invariant — the commit check above is
        // the proof), so those scenarios compare without it.
        let skeleton = if rec.switches.is_empty() {
            obs::diff(&sc.run.dump, &a.dump)
        } else {
            obs::diff_ignoring_decomp(&sc.run.dump, &a.dump)
        };

        // Both trace forms must be valid Chrome JSON.
        let mut live_trace = obs::ChromeTrace::new();
        live_trace.push_dump(&sc.run.dump, 0, "live");
        let live_valid = obs::chrome::validate(&live_trace.to_json()).is_ok();
        let canon_valid = obs::chrome::validate(&trace_a).is_ok();

        rows.push(vec![
            sc.name.to_string(),
            rec.commits.len().to_string(),
            rec.skips.len().to_string(),
            rec.switches.len().to_string(),
            (bytes.len() / 1024).to_string(),
            format!("{:.3}", sc.record_secs),
            format!("{replay_secs:.3}"),
        ]);
        csv_line(&[
            "replay".to_string(),
            sc.name.to_string(),
            rec.commits.len().to_string(),
            rec.skips.len().to_string(),
            rec.switches.len().to_string(),
            bytes.len().to_string(),
            format!("{:.4}", sc.record_secs),
            format!("{replay_secs:.4}"),
        ]);
        json.row(vec![
            ("scenario", Json::Str(sc.name.into())),
            ("commits", Json::Num(rec.commits.len() as f64)),
            ("skips", Json::Num(rec.skips.len() as f64)),
            ("switches", Json::Num(rec.switches.len() as f64)),
            ("recording_bytes", Json::Num(bytes.len() as f64)),
            ("record_secs", Json::Num(sc.record_secs)),
            ("replay_secs", Json::Num(replay_secs)),
            (
                "commits_match",
                Json::Num(f64::from(u8::from(a.commits_match && b.commits_match))),
            ),
            (
                "rerecord_identical",
                Json::Num(f64::from(u8::from(rerec_identical))),
            ),
            (
                "skeleton_mismatches",
                Json::Num(skeleton.mismatches.len() as f64),
            ),
        ]);

        let n = sc.name;
        checks.push((
            format!("{n}: replay commits bit-identical to the recording"),
            a.commits_match && b.commits_match,
        ));
        checks.push((
            format!("{n}: two replays re-record byte-identically"),
            rerec_identical,
        ));
        checks.push((
            format!("{n}: canonical virtual-time traces byte-identical"),
            trace_identical,
        ));
        checks.push((format!("{n}: skip set reproduced exactly"), skips_identical));
        checks.push((
            format!("{n}: regime switches reproduced exactly"),
            switches_identical,
        ));
        checks.push((
            format!("{n}: live-vs-replay frame skeletons agree ({skeleton})"),
            skeleton.matches(),
        ));
        checks.push((
            format!("{n}: live + canonical traces pass the Chrome validator"),
            live_valid && canon_valid,
        ));
        match sc.name {
            "faulted" => checks.push((
                format!(
                    "{n}: recorded degradation skips present ({})",
                    rec.skips.len()
                ),
                !rec.skips.is_empty(),
            )),
            "regime-switch" => checks.push((
                format!(
                    "{n}: a confirmed switch was recorded ({})",
                    rec.switches.len()
                ),
                !rec.switches.is_empty(),
            )),
            _ => {}
        }
    }

    print_table(
        "Recordings and replay cost",
        &[
            "scenario", "commits", "skips", "switches", "rec KiB", "record s", "replay s",
        ],
        &rows,
    );

    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        match json.write(std::path::Path::new(path)) {
            Ok(()) => println!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!();
    run_checks(&checks);
}
