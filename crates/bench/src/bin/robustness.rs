//! Robustness extension — the paper's schedules are built from *measured
//! average* task costs ("execution times for each operation", Fig. 6), but
//! real kernel times wander. Does the precomputed optimal schedule's
//! advantage over the naive pipeline survive cost noise?
//!
//! Method: per trial, scale every instance duration by an independent
//! uniform factor in `[1−a, 1+a]` and re-time both schedules with the
//! structure (placements, per-processor order) fixed — exactly what happens
//! at run time when a precomputed schedule meets jittery kernels.

use cds_core::evaluate::replay_with_jitter;
use cds_core::expand::ExpandedGraph;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::pipeline::naive_pipeline;
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table, run_checks};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use taskgraph::{builders, AppState};

const TRIALS: usize = 200;

fn main() {
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let state = AppState::new(4);
    println!("Robustness of precomputed schedules to task-cost noise (4 models, 4 processors)");
    println!("{TRIALS} trials per amplitude; durations scaled by U[1-a, 1+a] per instance\n");

    let opt = optimal_schedule(&graph, &cluster, &state, &OptimalConfig::default());
    let pipe = naive_pipeline(&graph, &cluster, &state);
    let e_opt = ExpandedGraph::build(&graph, &state, &opt.best.iteration.decomp);
    let e_pipe = ExpandedGraph::build(&graph, &state, &pipe.iteration.decomp);

    let mut rows = Vec::new();
    let mut advantage_holds = true;
    for amp_pct in [0u32, 10, 20, 30, 50] {
        let a = f64::from(amp_pct) / 100.0;
        let mut rng = StdRng::seed_from_u64(0x0B0E + u64::from(amp_pct));
        let stats =
            |iter: &cds_core::schedule::IterationSchedule, e: &ExpandedGraph, rng: &mut StdRng| {
                let mut lats: Vec<f64> = (0..TRIALS)
                    .map(|_| {
                        let factors: Vec<f64> = (0..e.len())
                            .map(|_| rng.random_range(1.0 - a..=1.0 + a))
                            .collect();
                        replay_with_jitter(iter, e, &cluster, &factors)
                            .latency
                            .as_secs_f64()
                    })
                    .collect();
                lats.sort_by(|x, y| x.partial_cmp(y).unwrap());
                let mean = lats.iter().sum::<f64>() / lats.len() as f64;
                let p95 = lats[(lats.len() * 95) / 100 - 1];
                (mean, p95)
            };
        let (om, op95) = stats(&opt.best.iteration, &e_opt, &mut rng);
        let (pm, pp95) = stats(&pipe.iteration, &e_pipe, &mut rng);
        advantage_holds &= op95 < pm;
        rows.push(vec![
            format!("±{amp_pct}%"),
            format!("{om:.3}"),
            format!("{op95:.3}"),
            format!("{pm:.3}"),
            format!("{pp95:.3}"),
            format!("{:.2}x", pm / om),
        ]);
        csv_line(&[
            "robustness".to_string(),
            amp_pct.to_string(),
            format!("{om:.4}"),
            format!("{op95:.4}"),
            format!("{pm:.4}"),
            format!("{pp95:.4}"),
        ]);
    }
    print_table(
        "Latency under cost noise (seconds)",
        &[
            "amplitude",
            "optimal mean",
            "optimal p95",
            "pipeline mean",
            "pipeline p95",
            "mean advantage",
        ],
        &rows,
    );

    println!("\nshape checks:");
    let zero_noise_exact = rows[0][1] == rows[0][2];
    let checks = [
        (
            "optimal's p95 beats the pipeline's MEAN at every tested amplitude",
            advantage_holds,
        ),
        (
            "zero noise reproduces the deterministic latency",
            zero_noise_exact,
        ),
    ];
    run_checks(&checks);
}
