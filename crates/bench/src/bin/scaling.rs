//! Scaling extension — optimal latency and initiation interval as the
//! processor count grows (1–16), for a light and a heavy regime. Shows
//! where the application stops benefiting from more processors (the span
//! bound) and how the chosen decomposition adapts to the machine size —
//! "the number of nodes and the number of processors within each node" is
//! an *input* of the paper's Fig. 6 algorithm.

use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState};

fn main() {
    let graph = builders::color_tracker();
    println!("Optimal schedule scaling with processor count (color tracker)");

    let cfg = OptimalConfig {
        max_nodes: 300_000,
        ..OptimalConfig::default()
    };
    let t4 = graph.task_by_name("Target Detection").unwrap();

    for n_models in [1u32, 8] {
        let state = AppState::new(n_models);
        let mut rows = Vec::new();
        let mut prev_latency = None;
        let mut monotone = true;
        for procs in [1u32, 2, 3, 4, 6, 8, 12, 16] {
            let cluster = ClusterSpec::single_node(procs);
            let r = optimal_schedule(&graph, &cluster, &state, &cfg);
            let d = r
                .best
                .iteration
                .decomp
                .get(&t4)
                .map_or("serial".to_string(), ToString::to_string);
            if let Some(prev) = prev_latency {
                monotone &= r.minimal_latency <= prev;
            }
            prev_latency = Some(r.minimal_latency);
            rows.push(vec![
                procs.to_string(),
                format!("{:.3}", r.minimal_latency.as_secs_f64()),
                format!("{:.3}", r.best.ii.as_secs_f64()),
                format!("{:.0}%", r.best.utilization() * 100.0),
                d.clone(),
                r.complete.to_string(),
            ]);
            csv_line(&[
                "scaling".to_string(),
                n_models.to_string(),
                procs.to_string(),
                format!("{:.4}", r.minimal_latency.as_secs_f64()),
                format!("{:.4}", r.best.ii.as_secs_f64()),
                d,
            ]);
        }
        print_table(
            &format!("{n_models} model(s)"),
            &[
                "procs",
                "latency (s)",
                "II (s)",
                "utilization",
                "T4 decomp",
                "complete",
            ],
            &rows,
        );
        run_checks(&[("latency is non-increasing in processors", monotone)]);
    }
    println!("\nThe latency floor is the decomposed critical path; beyond it extra processors");
    println!("only buy throughput (lower II via deeper pipelining) — the §3.3 observation.");
}
