//! Offline table-build cost: parallel search and the persistent cache.
//!
//! Times four ways of building the same multi-regime [`ScheduleTable`]:
//!
//! 1. `cold serial`   — branch-and-bound with one thread, no cache;
//! 2. `cold parallel` — same search fanned across all host CPUs;
//! 3. `cold + store`  — parallel search that also persists every schedule;
//! 4. `warm cache`    — rebuild served entirely from the cache (no search).
//!
//! All four must produce identical tables (asserted), so the numbers
//! isolate pure search/IO cost. On a single-core host the parallel row
//! degenerates to the serial one plus scheduling overhead — the honest
//! outcome; the cache row is hardware-independent.
//!
//! Flags: `--cache-dir DIR` keeps the cache at DIR (default: a fresh
//! temp dir, removed afterwards), `--keep` skips the cleanup.

use std::time::{Duration, Instant};

use cds_core::optimal::OptimalConfig;
use cds_core::persist::ScheduleCache;
use cds_core::table::{ScheduleTable, TableBuildStats};
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table};
use taskgraph::{builders, AppState, TaskGraph};

struct Workload {
    name: &'static str,
    graph: TaskGraph,
    cluster: ClusterSpec,
    states: Vec<AppState>,
    /// Base search options (threads overridden per mode). The surveillance
    /// graph's decomposition product is in the hundreds, so it runs with
    /// the same bounded budget its tests use.
    cfg: OptimalConfig,
    /// Whether the budget admits a complete search: only then is
    /// serial ≡ parallel guaranteed (a truncated search explores a
    /// thread-count-dependent prefix).
    exact: bool,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "color_tracker",
            graph: builders::color_tracker(),
            cluster: ClusterSpec::single_node(4),
            states: [1u32, 2, 4, 8].map(AppState::new).to_vec(),
            cfg: OptimalConfig::default(),
            exact: true,
        },
        Workload {
            name: "stereo_surveillance",
            graph: builders::stereo_surveillance(),
            cluster: ClusterSpec::single_node(4),
            states: [1u32, 2, 3].map(AppState::new).to_vec(),
            cfg: OptimalConfig {
                max_nodes: 20_000,
                max_schedules: 4,
                ..OptimalConfig::default()
            },
            exact: false,
        },
    ]
}

fn build(
    w: &Workload,
    cfg: &OptimalConfig,
    cache: Option<&ScheduleCache>,
) -> (ScheduleTable, TableBuildStats, Duration) {
    let t0 = Instant::now();
    let (table, stats) =
        ScheduleTable::precompute_with_cache(&w.graph, &w.cluster, &w.states, cfg, cache);
    (table, stats, t0.elapsed())
}

fn tables_equal(a: &ScheduleTable, b: &ScheduleTable) -> bool {
    a.len() == b.len() && a.states().iter().all(|s| a.get(s) == b.get(s))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let keep = args.iter().any(|a| a == "--keep");
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join(format!("cds-schedcache-{}", std::process::id()))
                .to_string_lossy()
                .into_owned()
        });

    let host_threads = OptimalConfig::default().effective_threads();
    println!("Offline schedule-table build: parallel search × persistent cache");
    println!("host threads: {host_threads}  cache dir: {cache_dir}");
    if host_threads == 1 {
        println!(
            "(single-core host: the parallel row cannot beat serial here; \
             the fan-out is exercised for correctness, not speedup)"
        );
    }

    // One cache for every workload, cleared once up front so the cold
    // modes really are cold but `--keep` preserves all workloads' entries.
    let cache = ScheduleCache::open(&cache_dir).expect("cache dir");
    cache.clear().expect("clear cache");

    let mut rows = Vec::new();
    for w in workloads() {
        let serial = w.cfg.serial();
        let parallel = w.cfg.clone(); // threads = all CPUs

        let (t_serial, s_serial, d_serial) = build(&w, &serial, None);
        let (t_par, s_par, d_par) = build(&w, &parallel, None);
        let (t_store, s_store, d_store) = build(&w, &parallel, Some(&cache));
        let (t_warm, s_warm, d_warm) = build(&w, &parallel, Some(&cache));

        if w.exact {
            assert!(tables_equal(&t_serial, &t_par), "parallel table differs");
            assert!(tables_equal(&t_serial, &t_store), "cached table differs");
        }
        assert!(tables_equal(&t_store, &t_warm), "warm table differs");
        assert_eq!(s_warm.cache_hits, w.states.len(), "warm build searched");
        assert_eq!(s_warm.nodes_explored, 0, "warm build explored nodes");

        for (mode, stats, dur) in [
            ("cold serial", &s_serial, d_serial),
            ("cold parallel", &s_par, d_par),
            ("cold + store", &s_store, d_store),
            ("warm cache", &s_warm, d_warm),
        ] {
            rows.push(vec![
                w.name.to_string(),
                mode.to_string(),
                format!("{}", w.states.len()),
                format!("{}", stats.cache_hits),
                format!("{}", stats.searched()),
                format!("{}", stats.nodes_explored),
                format!("{:.4}", dur.as_secs_f64()),
            ]);
            csv_line(&[
                "schedcache".to_string(),
                w.name.to_string(),
                mode.replace(' ', "_"),
                stats.cache_hits.to_string(),
                stats.searched().to_string(),
                stats.nodes_explored.to_string(),
                format!("{:.6}", dur.as_secs_f64()),
            ]);
        }

        let speedup = d_serial.as_secs_f64() / d_par.as_secs_f64().max(1e-9);
        let warmup = d_store.as_secs_f64() / d_warm.as_secs_f64().max(1e-9);
        println!(
            "\n{}: parallel speedup {speedup:.2}x over serial ({host_threads} threads), \
             warm cache {warmup:.1}x faster than cold+store",
            w.name
        );
    }

    print_table(
        "Schedule-table build cost by mode",
        &[
            "workload", "mode", "states", "hits", "searched", "nodes", "wall s",
        ],
        &rows,
    );

    if keep {
        println!("\ncache kept at {cache_dir}");
    } else if !args.iter().any(|a| a == "--cache-dir") {
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}
