//! Kernel-tier before/after: the scalar oracles vs the word (SWAR) kernels
//! vs the runtime-dispatched SIMD paths, per hot kernel, per image size —
//! and the schedule-table consequence, where each measured tier becomes a
//! priced alternative the per-regime branch-and-bound can select.
//!
//! Every wide path is asserted **bit-identical** to the scalar oracle
//! before it is timed; a mismatch panics, so a CI smoke run of this binary
//! gates correctness, not just performance.
//!
//! Flags: `--iters N` (timing repetitions per kernel, default 60),
//! `--smoke` (one small size, few iterations — the CI configuration),
//! `--json PATH` (additionally write the machine-readable report).

use std::path::PathBuf;
use std::time::Instant;

use cds_core::optimal::OptimalConfig;
use cds_core::pricing::optimal_schedule_priced;
use cluster::ClusterSpec;
use kiosk_bench::{csv_line, print_table, Json, JsonReport};
use taskgraph::AppState;
use vision::calibrate::{calibrated_tracker, measure_kernels, measure_tier_pricing};
use vision::{BackendKind, BitMask, Frame, Scene};

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Median wall time per call for each of the three tiers, measured in one
/// interleaved loop (rotating which tier leads) so clock drift and
/// scheduler noise hit all tiers equally and the ratios stay honest.
fn time_tiers_ns(iters: u64, mut run: impl FnMut(BackendKind)) -> [f64; 3] {
    let mut samples: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let order = BackendKind::ALL;
    for i in 0..iters.max(6) as usize {
        for lane in 0..order.len() {
            let k = (i + lane) % order.len();
            let t0 = Instant::now();
            run(order[k]);
            samples[k].push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }
    samples.iter_mut().for_each(|s| s.sort_by(f64::total_cmp));
    [
        samples[0][samples[0].len() / 2],
        samples[1][samples[1].len() / 2],
        samples[2][samples[2].len() / 2],
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters = arg(&args, "--iters", if smoke { 8 } else { 60 });
    let json_path = arg_str(&args, "--json").map(PathBuf::from);

    let features = BackendKind::Simd.get().features();
    let sizes: &[(usize, usize)] = if smoke {
        &[(96, 72)]
    } else {
        &[(128, 128), (320, 240), (640, 480)]
    };

    println!("Kernel tiers: scalar vs word vs SIMD on this host");
    println!("simd features: {features}; {iters} iterations per kernel");

    let mut report = JsonReport::new("simd");
    report.meta("host_features", Json::Str(features.clone()));
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &(w, h) in sizes {
        let scene = Scene::demo(w, h, 3, 0x51AD);
        let scalar = BackendKind::Scalar.get();
        let mut prev = Frame::new(w, h);
        let mut cur = Frame::new(w, h);
        scalar.render_into(&scene, 0, &mut prev);
        scalar.render_into(&scene, 1, &mut cur);

        // --- Bit-identity gates: every tier against the oracle, before
        // --- any timing. A failure panics → nonzero exit → CI fails.
        for kind in [BackendKind::Word, BackendKind::Simd] {
            let b = kind.get();
            let mut f = Frame::new(w, h);
            b.render_into(&scene, 1, &mut f);
            assert_eq!(f, cur, "{kind:?} render diverges from scalar at {w}x{h}");
            assert_eq!(
                b.image_histogram(&cur),
                scalar.image_histogram(&cur),
                "{kind:?} histogram diverges from scalar at {w}x{h}"
            );
            for thr in [0u16, 24, 254, 255] {
                let mut got = BitMask::all_set(w, h);
                let mut want = BitMask::all_set(w, h);
                b.change_detection_into(&cur, Some(&prev), thr, &mut got);
                scalar.change_detection_into(&cur, Some(&prev), thr, &mut want);
                assert_eq!(
                    got, want,
                    "{kind:?} change detection diverges from scalar at {w}x{h} thr {thr}"
                );
            }
        }
        println!("[PASS] {w}x{h}: word and simd tiers bit-identical to scalar oracles");

        // --- Paired timing, one row per kernel × tier -----------------
        let mut out_frame = Frame::new(w, h);
        let mut out_mask = BitMask::new(w, h);
        let kernels: Vec<(&str, [f64; 3])> = vec![
            (
                "render",
                time_tiers_ns(iters, |k| {
                    k.get().render_into(&scene, 2, &mut out_frame);
                    std::hint::black_box(&out_frame);
                }),
            ),
            (
                "histogram",
                time_tiers_ns(iters, |k| {
                    std::hint::black_box(k.get().image_histogram(&cur));
                }),
            ),
            (
                "change_detection",
                time_tiers_ns(iters, |k| {
                    k.get()
                        .change_detection_into(&cur, Some(&prev), 24, &mut out_mask);
                    std::hint::black_box(&out_mask);
                }),
            ),
        ];
        for (kernel, ns) in kernels {
            let scalar_ns = ns[0];
            for (kind, &kernel_ns) in BackendKind::ALL.iter().zip(&ns) {
                let speedup = scalar_ns / kernel_ns.max(1e-3);
                rows.push(vec![
                    format!("{w}x{h}"),
                    kernel.to_string(),
                    kind.name().to_string(),
                    format!("{kernel_ns:.0}"),
                    format!("{speedup:.2}"),
                ]);
                csv_line(&[
                    "simd",
                    &format!("{w}x{h}"),
                    kernel,
                    kind.name(),
                    &format!("{kernel_ns:.0}"),
                    &format!("{speedup:.2}"),
                ]);
                report.row(vec![
                    ("kernel", Json::Str(kernel.to_string())),
                    ("backend", Json::Str(kind.name().to_string())),
                    ("size", Json::Str(format!("{w}x{h}"))),
                    ("ns_per_op", Json::Num(kernel_ns)),
                    ("speedup_vs_scalar", Json::Num(speedup)),
                ]);
            }
        }
    }

    print_table(
        "Kernel cost per tier (median ns per call)",
        &["size", "kernel", "backend", "ns", "speedup_vs_scalar"],
        &rows,
    );

    // --- The scheduling consequence: tiers as priced alternatives -----
    // Calibrate a tracker graph on this host, measure per-tier factors,
    // and let the per-regime search pick the tier. On a host where SIMD
    // wins the hot kernels, the priced table should never choose scalar.
    let (cw, ch) = if smoke { (96, 72) } else { (320, 240) };
    let reps = if smoke { 2 } else { 8 };
    let times = measure_kernels(cw, ch, &[1, 2, 4], reps);
    let graph = calibrated_tracker(cw, ch, &times);
    let pricing = measure_tier_pricing(cw, ch, reps, &graph);
    let cluster = ClusterSpec::single_node(4);
    let cfg = OptimalConfig::default();
    let mut price_rows: Vec<Vec<String>> = Vec::new();
    for n in [1u32, 2, 4] {
        let priced = optimal_schedule_priced(&graph, &cluster, &AppState::new(n), &cfg, &pricing);
        let per_tier: Vec<String> = priced
            .per_tier
            .iter()
            .map(|(t, l)| format!("{}={}us", t.name(), l.0))
            .collect();
        price_rows.push(vec![
            n.to_string(),
            priced.tier.name().to_string(),
            priced.result.minimal_latency.0.to_string(),
            per_tier.join(" "),
        ]);
        report.row(vec![
            ("kernel", Json::Str("priced_schedule".to_string())),
            ("backend", Json::Str(priced.tier.name().to_string())),
            ("size", Json::Str(format!("regime_{n}"))),
            (
                "ns_per_op",
                Json::Num(priced.result.minimal_latency.0 as f64 * 1e3),
            ),
            ("speedup_vs_scalar", Json::Num(1.0)),
        ]);
        csv_line(&[
            "simd_priced",
            &n.to_string(),
            priced.tier.name(),
            &priced.result.minimal_latency.0.to_string(),
        ]);
    }
    print_table(
        "Priced per-regime search: winning kernel tier (calibrated graph)",
        &["regime", "winner", "L*_us", "per-tier L*"],
        &price_rows,
    );

    if let Some(path) = json_path {
        match report.write(&path) {
            Ok(()) => println!("json report written to {}", path.display()),
            Err(e) => {
                eprintln!("[FAIL] could not write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    println!("[PASS] all tiers bit-identical; report complete");
}
