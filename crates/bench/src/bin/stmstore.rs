//! Columnar STM store: memory under retention policies, batch throughput,
//! and history-query cost.
//!
//! The columnar rewrite exists so a channel can keep *queryable history*
//! (for record/replay and post-hoc analysis) without the memory bill
//! growing with the stream. This binary measures exactly that trade on
//! frame-sized payloads:
//!
//! * **memory** — byte high-water at increasing stream lengths under three
//!   policies: `hold-live` (the per-item baseline: the only way the old
//!   store could serve history was never consuming, so live bytes grow with
//!   the stream), `retain-all` (columnar history, no budget — retained
//!   bytes grow instead), and `budget` (columnar history under a
//!   `retain_bytes` cap — the GC retires whole buckets, oldest first, and
//!   the high-water stays flat no matter how long the stream runs);
//! * **history** — `latest_at` / `range` median cost against the budgeted
//!   store, with correctness asserted at the retention edge;
//! * **throughput** — per-item put/consume loop vs `put_many` +
//!   `consume_range`, same shape as the `datapath` stm section so the two
//!   reports stay comparable. The lock-acquisition counters (deterministic,
//!   timing-free) gate the batch win in CI.
//!
//! Flags: `--smoke` (small streams, fast), `--iters N` (timing repetitions,
//! default 30), `--json PATH` (additionally write the machine-readable
//! report).

use std::time::Instant;

use kiosk_bench::{csv_line, print_table, run_checks, Json, JsonReport};
use stm::{Channel, ChannelBuilder, Timestamp};

/// Payload size: one 64x64 grayscale frame per row.
const ROW: usize = 64 * 64;
/// Bucket split threshold used by every policy (small enough that eviction
/// granularity is visible at smoke sizes).
const BUCKET_ROWS: usize = 32;
/// Retained-history byte budget for the `budget` policy: 64 rows.
const BUDGET: usize = 64 * ROW;

// `build_weighed` takes a `fn(&T) -> usize` with `T = Vec<u8>` (the channel
// payload type), so a slice parameter would not match.
#[allow(clippy::ptr_arg)]
fn weigh(v: &Vec<u8>) -> usize {
    v.len()
}

fn row_of(ts: u64) -> Vec<u8> {
    vec![(ts & 0xff) as u8; ROW]
}

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Median-of-repeats wall time for one call, in nanoseconds.
fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(3))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[derive(Clone, Copy, PartialEq)]
enum Policy {
    /// Per-item baseline: history = never consuming, so everything stays live.
    HoldLive,
    /// Columnar history with no byte budget: retained bytes grow instead.
    RetainAll,
    /// Columnar history under the `retain_bytes` cap.
    Budget,
}

impl Policy {
    fn name(self) -> &'static str {
        match self {
            Policy::HoldLive => "hold-live",
            Policy::RetainAll => "retain-all",
            Policy::Budget => "budget",
        }
    }

    fn channel(self) -> Channel<Vec<u8>> {
        let b = ChannelBuilder::new(format!("stmstore-{}", self.name())).bucket_rows(BUCKET_ROWS);
        match self {
            Policy::HoldLive => b.build_weighed(weigh),
            Policy::RetainAll => b
                .retain_buckets(usize::MAX)
                .retain_bytes(usize::MAX)
                .build_weighed(weigh),
            Policy::Budget => b
                .retain_buckets(usize::MAX)
                .retain_bytes(BUDGET)
                .build_weighed(weigh),
        }
    }
}

/// Stream `n` rows through a channel under `policy` and return the channel
/// (kept open: the input connection is leaked into it via `forget`-free
/// means — we simply return both halves' owner) plus its stats.
fn stream(policy: Policy, n: u64) -> (Channel<Vec<u8>>, stm::ChannelStats) {
    let ch = policy.channel();
    let out = ch.attach_output();
    let inp = ch.attach_input();
    const CHUNK: u64 = 16;
    let mut t = 0;
    while t < n {
        let hi = (t + CHUNK).min(n);
        out.put_many((t..hi).map(|ts| (Timestamp(ts), row_of(ts))))
            .expect("put_many on open unbounded channel");
        if policy != Policy::HoldLive {
            inp.consume_range(Timestamp(t), Timestamp(hi));
        }
        t = hi;
    }
    let stats = ch.stats();
    drop((out, inp));
    (ch, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let iters = arg(&args, "--iters", if smoke { 8 } else { 30 });
    let lengths: Vec<u64> = if smoke {
        vec![128, 512]
    } else {
        vec![256, 1024, 4096]
    };

    println!("Columnar STM store: retention memory, history cost, batch throughput");
    println!(
        "row {ROW} B, bucket {BUCKET_ROWS} rows, history budget {} KiB, streams {lengths:?}",
        BUDGET / 1024
    );

    let mut json = JsonReport::new("stmstore");
    json.meta("row_bytes", Json::Num(ROW as f64));
    json.meta("bucket_rows", Json::Num(BUCKET_ROWS as f64));
    json.meta("budget_bytes", Json::Num(BUDGET as f64));

    // --- Memory: byte high-water by policy and stream length ----------
    let mut rows = Vec::new();
    let mut peak = std::collections::HashMap::new();
    for &n in &lengths {
        for policy in [Policy::HoldLive, Policy::RetainAll, Policy::Budget] {
            let (_ch, st) = stream(policy, n);
            peak.insert((policy.name(), n), st.peak_bytes);
            rows.push(vec![
                policy.name().to_string(),
                n.to_string(),
                (st.peak_bytes / 1024).to_string(),
                (st.bytes_live / 1024).to_string(),
                (st.retained_bytes / 1024).to_string(),
                st.buckets.to_string(),
                st.reclaimed.to_string(),
            ]);
            csv_line(&[
                "stmstore_mem".to_string(),
                policy.name().to_string(),
                n.to_string(),
                st.peak_bytes.to_string(),
                st.retained_bytes.to_string(),
                st.buckets.to_string(),
            ]);
            json.row(vec![
                ("section", Json::Str("memory".into())),
                ("policy", Json::Str(policy.name().into())),
                ("stream_rows", Json::Num(n as f64)),
                ("peak_bytes", Json::Num(st.peak_bytes as f64)),
                ("retained_bytes", Json::Num(st.retained_bytes as f64)),
                ("buckets", Json::Num(st.buckets as f64)),
            ]);
        }
    }
    print_table(
        "Byte high-water by retention policy",
        &[
            "policy",
            "rows",
            "peak KiB",
            "live KiB",
            "hist KiB",
            "buckets",
            "reclaimed",
        ],
        &rows,
    );

    let (n_min, n_max) = (lengths[0], *lengths.last().unwrap());
    let p = |pol: &'static str, n: u64| peak[&(pol, n)] as f64;
    let growth = n_max as f64 / n_min as f64;
    println!(
        "\nhold-live grows {:.1}x over a {growth:.0}x longer stream; \
         budget grows {:.2}x (flat) and never exceeds {} KiB",
        p("hold-live", n_max) / p("hold-live", n_min),
        p("budget", n_max) / p("budget", n_min),
        (peak[&("budget", n_max)] / 1024),
    );

    // --- History queries against the budgeted store -------------------
    let (ch, _) = stream(Policy::Budget, n_max);
    let newest = n_max - 1;
    let (hit_ts, hit) = ch
        .latest_at(Timestamp(newest))
        .expect("newest row is retained");
    assert_eq!(hit_ts, Timestamp(newest));
    assert_eq!(hit[0], (newest & 0xff) as u8);
    let window = ch.range(Timestamp(n_max - 32), Timestamp(n_max));
    assert_eq!(window.len(), 32, "recent window fully retained");
    let ancient = ch.range(Timestamp(0), Timestamp(BUCKET_ROWS as u64));
    let floor = ch.gc_floor();

    let latest_ns = time_ns(iters * 100, || {
        std::hint::black_box(ch.latest_at(Timestamp(newest)));
    });
    let range_ns = time_ns(iters * 10, || {
        std::hint::black_box(ch.range(Timestamp(n_max - 32), Timestamp(n_max)));
    });
    print_table(
        "History query cost (budgeted store, median ns)",
        &["query", "ns"],
        &[
            vec!["latest_at".to_string(), format!("{latest_ns:.0}")],
            vec!["range x32".to_string(), format!("{range_ns:.0}")],
        ],
    );
    csv_line(&["stmstore_hist", "latest_at", &format!("{latest_ns:.0}")]);
    csv_line(&["stmstore_hist", "range_32", &format!("{range_ns:.0}")]);
    json.row(vec![
        ("section", Json::Str("history".into())),
        ("query", Json::Str("latest_at".into())),
        ("ns", Json::Num(latest_ns)),
    ]);
    json.row(vec![
        ("section", Json::Str("history".into())),
        ("query", Json::Str("range_32".into())),
        ("ns", Json::Num(range_ns)),
    ]);

    // --- Batch throughput: per-item loop vs put_many/consume_range ----
    const BATCH: u64 = 64;
    let bench_channel = || {
        ChannelBuilder::new("stmstore-tp")
            .bucket_rows(BUCKET_ROWS)
            .build_weighed(weigh)
    };
    let (per_item_ns, per_item_locks) = {
        let ch = bench_channel();
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut base = 0u64;
        let ns = time_ns(iters, || {
            for t in base..base + BATCH {
                out.put(Timestamp(t), row_of(t)).unwrap();
            }
            for t in base..base + BATCH {
                inp.consume(Timestamp(t)).unwrap();
            }
            base += BATCH;
        });
        (ns, ch.stats().lock_acquisitions)
    };
    let (batched_ns, batched_locks) = {
        let ch = bench_channel();
        let out = ch.attach_output();
        let inp = ch.attach_input();
        let mut base = 0u64;
        let ns = time_ns(iters, || {
            out.put_many((base..base + BATCH).map(|t| (Timestamp(t), row_of(t))))
                .unwrap();
            inp.consume_range(Timestamp(base), Timestamp(base + BATCH));
            base += BATCH;
        });
        (ns, ch.stats().lock_acquisitions)
    };
    print_table(
        &format!("Put+consume x{BATCH} (median ns, total lock acquisitions)"),
        &["variant", "ns", "locks"],
        &[
            vec![
                "per-item".to_string(),
                format!("{per_item_ns:.0}"),
                per_item_locks.to_string(),
            ],
            vec![
                "batched".to_string(),
                format!("{batched_ns:.0}"),
                batched_locks.to_string(),
            ],
        ],
    );
    let speedup = per_item_ns / batched_ns.max(1e-3);
    println!("batch speedup: {speedup:.2}x, locks {per_item_locks} -> {batched_locks}");
    csv_line(&[
        "stmstore_tp".to_string(),
        "per_item".to_string(),
        format!("{per_item_ns:.0}"),
        per_item_locks.to_string(),
    ]);
    csv_line(&[
        "stmstore_tp".to_string(),
        "batched".to_string(),
        format!("{batched_ns:.0}"),
        batched_locks.to_string(),
    ]);
    json.row(vec![
        ("section", Json::Str("throughput".into())),
        ("variant", Json::Str("per_item".into())),
        ("ns", Json::Num(per_item_ns)),
        ("locks", Json::Num(per_item_locks as f64)),
    ]);
    json.row(vec![
        ("section", Json::Str("throughput".into())),
        ("variant", Json::Str("batched".into())),
        ("ns", Json::Num(batched_ns)),
        ("locks", Json::Num(batched_locks as f64)),
    ]);
    json.meta("batch_speedup", Json::Num(speedup));

    if let Some(path) = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
    {
        match json.write(std::path::Path::new(path)) {
            Ok(()) => println!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Eviction granularity is one bucket, and the live put window rides on
    // top of the budget, so the honest cap is budget + bucket + chunk.
    let slack = BUDGET + BUCKET_ROWS * ROW + 16 * ROW;
    println!();
    run_checks(&[
        (
            format!(
                "per-item baseline grows with the stream \
                 ({:.1}x over {growth:.0}x rows)",
                p("hold-live", n_max) / p("hold-live", n_min)
            ),
            p("hold-live", n_max) >= 2.0 * p("hold-live", n_min),
        ),
        (
            "budgeted high-water is flat (within 1.5x across stream lengths)".to_string(),
            p("budget", n_max) <= 1.5 * p("budget", n_min),
        ),
        (
            format!(
                "budgeted high-water under budget+bucket slack ({} <= {} KiB)",
                peak[&("budget", n_max)] / 1024,
                slack / 1024
            ),
            peak[&("budget", n_max)] <= slack,
        ),
        (
            "recent history window fully queryable under budget".to_string(),
            window.len() == 32,
        ),
        (
            format!(
                "oldest buckets evicted under budget (floor {}, ancient hits {})",
                floor.0,
                ancient.len()
            ),
            ancient.is_empty() && floor.0 > 0,
        ),
        (
            format!("batch APIs acquire fewer locks ({per_item_locks} -> {batched_locks})"),
            batched_locks * 8 <= per_item_locks,
        ),
    ]);
}
