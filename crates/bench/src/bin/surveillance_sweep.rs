//! Cross-validation on the second application: the paper claims a *class*
//! ("surveillance, autonomous agents, and intelligent vehicles and rooms"),
//! so the constrained-dynamism machinery must transfer beyond the kiosk.
//! This harness repeats the regime-switching experiment on the two-camera
//! surveillance graph.

use cds_core::optimal::OptimalConfig;
use cds_core::switcher::{
    simulate_regime_switched, ScheduleStrategy, SwitchConfig, TransitionPolicy,
};
use cds_core::table::ScheduleTable;
use cluster::sweep::{sweep, SweepConfig};
use cluster::{ClusterSpec, FrameClock, StateTrack};
use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{builders, AppState, Micros};
use vision::kiosk::generate_visits;
use vision::{occupancy_track, KioskConfig};

fn main() {
    let graph = builders::stereo_surveillance();
    let cluster = ClusterSpec::single_node(4);
    println!("Regime switching on the surveillance graph (application class cross-check)");

    // Subjects wander through the monitored area.
    let process = KioskConfig {
        mean_interarrival_frames: 50.0,
        mean_dwell_frames: 160.0,
        max_people: 4,
        n_frames: 500,
        seed: 7_777,
    };
    let visits = generate_visits(&process);
    let occ = occupancy_track(&visits, process.n_frames);
    let track = StateTrack::from_changes(occ.iter().map(|&(f, n)| (f, AppState::new(n))).collect());
    println!(
        "workload: {} visits, {} transitions, occupancy 0..={}",
        visits.len(),
        track.n_transitions(),
        occ.iter().map(|&(_, n)| n).max().unwrap_or(0)
    );

    let states: Vec<AppState> = (0..=4u32).map(AppState::new).collect();
    let cfg = OptimalConfig {
        max_nodes: 20_000,
        max_schedules: 8,
        ..OptimalConfig::default()
    };
    let table = ScheduleTable::precompute(&graph, &cluster, &states, &cfg);
    println!("\nper-regime schedules:");
    for s in table.states() {
        let sched = table.get(&s).unwrap();
        println!(
            "  {s}: latency {} II {} decomp {:?}",
            sched.iteration.latency,
            sched.ii,
            sched.iteration.decomp.values().collect::<Vec<_>>()
        );
    }

    // Independent strategy runs over the same subject process: sweep them
    // in parallel, results in strategy order.
    let strategies = vec![
        ("static-0", ScheduleStrategy::Static(AppState::new(0))),
        ("static-max", ScheduleStrategy::Static(AppState::new(4))),
        (
            "regime-cutover",
            ScheduleStrategy::RegimeTable {
                confirm_after: 3,
                policy: TransitionPolicy::CutOver,
            },
        ),
        ("oracle", ScheduleStrategy::Oracle),
    ];
    let swept = sweep(SweepConfig::new(), strategies, |_, _, (name, strategy)| {
        let out = simulate_regime_switched(
            &graph,
            &cluster,
            &table,
            &track,
            &SwitchConfig {
                clock: FrameClock::new(Micros::from_millis(300), process.n_frames),
                strategy,
                warmup_frames: 4,
            },
        );
        (name, out)
    });
    println!("strategy sweep: {}", swept.stats);
    let mut rows = Vec::new();
    for (name, out) in &swept.results {
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.p95_latency.as_secs_f64()),
            format!("{:.3}", out.metrics.throughput_hz),
            out.switches.len().to_string(),
            out.mismatch_frames.to_string(),
        ]);
        csv_line(&[
            "surveillance_sweep".to_string(),
            name.to_string(),
            format!("{:.4}", out.metrics.mean_latency.as_secs_f64()),
            format!("{:.4}", out.metrics.throughput_hz),
            out.mismatch_frames.to_string(),
        ]);
    }
    print_table(
        "Strategies over the same subject process (surveillance graph)",
        &[
            "strategy",
            "mean latency (s)",
            "p95 latency (s)",
            "throughput (1/s)",
            "switches",
            "mismatched frames",
        ],
        &rows,
    );

    let lat = |i: usize| rows[i][1].parse::<f64>().unwrap();
    println!("\nshape checks:");
    let checks = [
        (
            "regime switching beats both static schedules",
            lat(2) < lat(0) && lat(2) < lat(1),
        ),
        (
            "regime switching within 40% of oracle",
            lat(2) < lat(3) * 1.4,
        ),
    ];
    run_checks(&checks);
}
