//! Simulator event-engine before/after: the frozen pre-overhaul engine
//! (`simulate_online_ref`: HashMap state, per-run allocation, unconditional
//! full trace) against the overhauled arena engine driven by the parallel
//! sweep module.
//!
//! Two measurements, reported separately as the acceptance criteria ask:
//!
//! * **single-run** — one simulation, old engine vs `SimArena::simulate`
//!   with `TraceMode::Off` (paired timing, median of repeats);
//! * **multi-run sweep** — a Fig. 3-shaped parameter sweep, the old
//!   one-`simulate_online_ref`-per-config loop vs `cluster::sweep` with
//!   per-worker arena reuse. The run count is scaled so "before" takes at
//!   least a second of wall clock, and the pair alternates over several
//!   reps (medians compared) because this container's wall clock wanders
//!   with load.
//!
//! Both paths are asserted to produce identical `Metrics` before anything
//! is timed — a benchmark of two engines that disagree would be noise.
//!
//! Flags: `--runs N` (sweep size, default 120), `--frames N` (frames per
//! run, default 160), `--threads N` (sweep workers, default auto),
//! `--json PATH` (machine-readable report), `--smoke` (tiny sweep, parallel
//! driver checked against a golden serial result; exits non-zero on
//! mismatch — the CI step).

use std::time::Instant;

use cluster::sweep::{sweep, SweepConfig};
use cluster::{
    simulate_online_ref, ClusterSpec, FrameClock, Metrics, OnlineConfig, SimArena, TraceMode,
};
use kiosk_bench::{csv_line, print_table, run_checks, Json, JsonReport};
use taskgraph::{builders, AppState, Decomposition, Micros, TaskGraph};

fn arg(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The Fig. 3-shaped workload: the color tracker at 8 models with the MP=8
/// decomposition, digitizer period varied. A short quantum keeps the event
/// count per run high — the regime where engine overhead dominates.
fn template(graph: &TaskGraph, frames: u64) -> OnlineConfig {
    let t4 = graph.task_by_name("Target Detection").unwrap();
    let mut cfg = OnlineConfig::new(
        FrameClock::new(Micros::from_millis(33), frames),
        AppState::new(8),
    );
    cfg.decomposition.insert(t4, Decomposition::new(1, 8));
    cfg.channel_capacity = 3;
    cfg.warmup_frames = 4;
    cfg.quantum = Some(Micros::from_millis(20));
    cfg
}

/// The sweep's period grid, cycled to `runs` entries. Densely sampled
/// around the saturated knee of the Fig. 3 curve (33–600 ms) — the region a
/// tuner actually explores, and the one where the scheduler backlog makes
/// engine overhead matter — with sparser unloaded points out to 5 s.
fn periods(runs: usize) -> Vec<Micros> {
    let grid = [
        33u64, 50, 66, 100, 150, 200, 300, 400, 600, 1000, 2500, 5000,
    ];
    (0..runs)
        .map(|i| Micros::from_millis(grid[i % grid.len()]))
        .collect()
}

fn run_before(graph: &TaskGraph, cluster: &ClusterSpec, tpl: &OnlineConfig, p: Micros) -> Metrics {
    let mut cfg = tpl.clone();
    cfg.clock = FrameClock::new(p, tpl.clock.n_frames);
    simulate_online_ref(graph, cluster, cfg).metrics
}

fn smoke(graph: &TaskGraph, cluster: &ClusterSpec, tpl: &OnlineConfig) -> bool {
    let ps = periods(10);
    let golden: Vec<Metrics> = ps
        .iter()
        .map(|&p| run_before(graph, cluster, tpl, p))
        .collect();
    let swept = sweep(
        SweepConfig {
            threads: 4,
            progress: false,
        },
        ps,
        |arena, _, p| {
            let mut cfg = tpl.clone();
            cfg.clock = FrameClock::new(p, tpl.clock.n_frames);
            cfg.trace_mode = TraceMode::Off;
            arena.simulate(graph, cluster, &cfg).metrics
        },
    );
    let ok = golden == swept.results;
    println!(
        "smoke: parallel sweep vs golden serial reference over {} configs: {}",
        golden.len(),
        if ok { "IDENTICAL" } else { "MISMATCH" }
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let frames = arg(&args, "--frames", 160);
    let runs = arg(&args, "--runs", 120) as usize;
    let threads = arg(&args, "--threads", 0) as usize;
    let tpl = template(&graph, frames);

    if args.iter().any(|a| a == "--smoke") {
        if !smoke(&graph, &cluster, &tpl) {
            std::process::exit(1);
        }
        return;
    }

    println!("Simulator event-engine overhaul: before/after on this host");
    println!("color tracker, 4 procs, MP=8, 20 ms quantum, {frames} frames/run");

    // Correctness gate before timing anything.
    let p0 = Micros::from_millis(33);
    let golden = run_before(&graph, &cluster, &tpl, p0);
    let mut arena = SimArena::new();
    let mut cfg = tpl.clone();
    cfg.clock = FrameClock::new(p0, frames);
    cfg.trace_mode = TraceMode::Off;
    assert_eq!(
        golden,
        arena.simulate(&graph, &cluster, &cfg).metrics,
        "engines disagree; refusing to time them"
    );

    // Part 1: single-run event loop, paired timing (alternating order),
    // median of repeats.
    let reps = 15;
    let mut before_ns = Vec::new();
    let mut after_ns = Vec::new();
    for i in 0..reps {
        let order: [bool; 2] = if i % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for is_before in order {
            let t0 = Instant::now();
            if is_before {
                let _ = run_before(&graph, &cluster, &tpl, p0);
            } else {
                let _ = arena.simulate(&graph, &cluster, &cfg);
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9;
            if is_before {
                before_ns.push(ns);
            } else {
                after_ns.push(ns);
            }
        }
    }
    before_ns.sort_by(f64::total_cmp);
    after_ns.sort_by(f64::total_cmp);
    let single_before = before_ns[before_ns.len() / 2];
    let single_after = after_ns[after_ns.len() / 2];
    let single_speedup = single_before / single_after;

    // Part 2: the multi-run sweep. Before = the historical driving style
    // (fresh engine + full trace per config, serial). After = the sweep
    // driver (per-worker arena, TraceMode::Off). This container's wall
    // clock wanders with load, so the pair alternates over several reps
    // and the medians are compared — same discipline as Part 1 and the
    // datapath harness.
    let ps = periods(runs);
    // One untimed oracle pass; every timed sweep rep is checked against it.
    let golden: Vec<Metrics> = ps
        .iter()
        .map(|&p| run_before(&graph, &cluster, &tpl, p))
        .collect();
    let sweep_reps = 3;
    let mut sweep_before = Vec::new();
    let mut sweep_after = Vec::new();
    let mut last_stats = None;
    for i in 0..sweep_reps {
        let order: [bool; 2] = if i % 2 == 0 {
            [true, false]
        } else {
            [false, true]
        };
        for is_before in order {
            if is_before {
                let t0 = Instant::now();
                let res: Vec<Metrics> = ps
                    .iter()
                    .map(|&p| run_before(&graph, &cluster, &tpl, p))
                    .collect();
                sweep_before.push(t0.elapsed().as_secs_f64());
                std::hint::black_box(res);
            } else {
                let swept = sweep(
                    SweepConfig {
                        threads,
                        progress: false,
                    },
                    ps.clone(),
                    |arena, _, p| {
                        let mut cfg = tpl.clone();
                        cfg.clock = FrameClock::new(p, tpl.clock.n_frames);
                        cfg.trace_mode = TraceMode::Off;
                        arena.simulate(&graph, &cluster, &cfg).metrics
                    },
                );
                sweep_after.push(swept.stats.elapsed.as_secs_f64());
                assert_eq!(golden, swept.results, "sweep results must match the oracle");
                last_stats = Some(swept.stats);
            }
        }
    }
    sweep_before.sort_by(f64::total_cmp);
    sweep_after.sort_by(f64::total_cmp);
    let sweep_before_s = sweep_before[sweep_before.len() / 2];
    let sweep_after_s = sweep_after[sweep_after.len() / 2];
    let sweep_speedup = sweep_before_s / sweep_after_s;
    let stats = last_stats.expect("at least one sweep rep ran");

    let rows = vec![
        vec![
            "single_run".to_string(),
            format!("{:.0}", single_before),
            format!("{:.0}", single_after),
            format!("{single_speedup:.2}x"),
        ],
        vec![
            format!("sweep_{runs}_runs"),
            format!("{:.0}", sweep_before_s * 1e9),
            format!("{:.0}", sweep_after_s * 1e9),
            format!("{sweep_speedup:.2}x"),
        ],
    ];
    csv_line(&[
        "sweep".to_string(),
        "single_run".to_string(),
        format!("{single_before:.0}"),
        format!("{single_after:.0}"),
        format!("{single_speedup:.3}"),
    ]);
    csv_line(&[
        "sweep".to_string(),
        format!("sweep_{runs}_runs"),
        format!("{:.0}", sweep_before_s * 1e9),
        format!("{:.0}", sweep_after_s * 1e9),
        format!("{sweep_speedup:.3}"),
    ]);
    print_table(
        "Event engine, before vs after (wall ns)",
        &["benchmark", "before (ns)", "after (ns)", "speedup"],
        &rows,
    );
    println!(
        "\nsweep driver: {stats} | every rep identical to the serial reference \
         | medians of {sweep_reps} alternating before/after reps"
    );
    if let Some(path) = arg_str(&args, "--json") {
        let mut json = JsonReport::new("sweep");
        json.meta("frames", Json::Num(frames as f64));
        json.meta("runs", Json::Num(runs as f64));
        json.row(vec![
            ("benchmark", Json::Str("single_run".to_string())),
            ("before_ns", Json::Num(single_before)),
            ("after_ns", Json::Num(single_after)),
            ("speedup", Json::Num(single_speedup)),
        ]);
        json.row(vec![
            ("benchmark", Json::Str(format!("sweep_{runs}_runs"))),
            ("before_ns", Json::Num(sweep_before_s * 1e9)),
            ("after_ns", Json::Num(sweep_after_s * 1e9)),
            ("speedup", Json::Num(sweep_speedup)),
        ]);
        match json.write(std::path::Path::new(&path)) {
            Ok(()) => println!("json report written to {path}"),
            Err(e) => {
                eprintln!("[FAIL] could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    println!("\nshape checks:");
    let checks = [
        (
            format!("before-sweep wall clock {sweep_before_s:.2}s >= 1s (honest denominator)"),
            sweep_before_s >= 1.0,
        ),
        (
            format!("sweep speedup {sweep_speedup:.2}x >= 2x"),
            sweep_speedup >= 2.0,
        ),
    ];
    run_checks(&checks);
}
