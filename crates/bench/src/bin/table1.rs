//! Table 1 — "Timing results in seconds/frame for the target detection task
//! with one and eight target models."
//!
//! Two reproductions are printed:
//!
//! 1. **Real kernels**: the synthetic tracker's target-detection stage,
//!    decomposed into exactly the paper's chunk grids. Every chunk's CPU
//!    cost is *measured* on this host; the 4-processor makespan is then
//!    *projected* by longest-processing-time packing of the measured chunks
//!    onto four modeled processors. (This host exposes a single CPU core,
//!    so wall-clock parallel speedup is physically unobservable here — the
//!    same substitution the simulator makes, applied to measured numbers.
//!    The threaded splitter/worker/joiner machinery itself is exercised by
//!    the `runtime` crate's tests and examples.)
//! 2. **Cost model**: the calibrated analytical model used by the
//!    simulator, evaluated at the paper's scale — this reconstructs the
//!    paper's actual cell values to within a few percent.

use std::time::Instant;

use kiosk_bench::{csv_line, print_table, run_checks};
use taskgraph::{AppState, DataParallelSpec, Decomposition, Micros};
use vision::detect::PartialScores;
use vision::{
    detect_chunks, image_histogram, merge_partials, target_detection_chunk, BitMask, ColorHist,
    Frame, Scene,
};

const WORKERS: usize = 4;
const WIDTH: usize = 480;
const HEIGHT: usize = 360;
const REPS: u32 = 3;

/// Measure every chunk of a decomposition, then project the makespan on
/// `WORKERS` processors by LPT packing. Returns (projected seconds/frame,
/// total CPU seconds, chunk count).
fn measure_cell(
    frame: &Frame,
    hist: &ColorHist,
    mask: &BitMask,
    models: &[ColorHist],
    fp: usize,
    mp: usize,
) -> (f64, f64, usize) {
    let chunks = detect_chunks(WIDTH, HEIGHT, models.len(), fp, mp);
    let mut chunk_secs = vec![0.0f64; chunks.len()];
    let mut merge_secs = 0.0f64;
    for _ in 0..REPS {
        let mut partials: Vec<PartialScores> = Vec::new();
        for (i, &chunk) in chunks.iter().enumerate() {
            let t0 = Instant::now();
            let p = target_detection_chunk(frame, hist, models, mask, chunk);
            chunk_secs[i] += t0.elapsed().as_secs_f64();
            partials.extend(p);
        }
        let t0 = Instant::now();
        std::hint::black_box(merge_partials(WIDTH, HEIGHT, models.len(), &partials));
        merge_secs += t0.elapsed().as_secs_f64();
    }
    for s in &mut chunk_secs {
        *s /= f64::from(REPS);
    }
    merge_secs /= f64::from(REPS);

    // LPT packing onto WORKERS processors.
    let mut sorted = chunk_secs.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let mut procs = [0.0f64; WORKERS];
    for s in sorted {
        let min = procs
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        *min += s;
    }
    let makespan = procs.iter().cloned().fold(0.0, f64::max) + merge_secs;
    let total: f64 = chunk_secs.iter().sum::<f64>() + merge_secs;
    (makespan, total, chunks.len())
}

fn main() {
    println!(
        "Reproduction of Table 1 (SC 1999): target-detection latency under data decomposition"
    );
    println!(
        "grid: FP ∈ {{1,4}} × (1 model | 8 models with MP ∈ {{8,1}}), {WORKERS} modeled processors, {WIDTH}x{HEIGHT} frames"
    );
    println!("(single-core host: per-chunk CPU costs measured, makespan projected by LPT packing)");

    // --- Real kernels ----------------------------------------------------
    let scene8 = Scene::demo(WIDTH, HEIGHT, 8, 0xBEEF);
    let models8 = scene8.models();
    let models1 = &models8[..1];
    let frame = scene8.render(3);
    let hist = image_histogram(&frame);
    let mask = BitMask::all_set(WIDTH, HEIGHT);

    // Paper's measured cells, seconds/frame.
    let paper = [
        // (fp, models, mp, paper_seconds)
        (1usize, 1usize, 1usize, 0.876),
        (4, 1, 1, 0.275),
        (1, 8, 8, 1.857),
        (4, 8, 8, 2.155),
        (1, 8, 1, 6.850),
        (4, 8, 1, 2.033),
    ];

    let mut rows = Vec::new();
    let mut measured = std::collections::HashMap::new();
    for &(fp, n_models, mp, paper_s) in &paper {
        let models: &[ColorHist] = if n_models == 1 { models1 } else { &models8 };
        let (secs, cpu, chunks) = measure_cell(&frame, &hist, &mask, models, fp, mp);
        measured.insert((fp, n_models, mp), secs);
        rows.push(vec![
            format!("FP={fp}"),
            format!("{n_models}"),
            format!("MP={mp}"),
            format!("({chunks})"),
            format!("{secs:.4}"),
            format!("{cpu:.4}"),
            format!("{paper_s:.3}"),
        ]);
        csv_line(&[
            "table1_real".to_string(),
            fp.to_string(),
            n_models.to_string(),
            mp.to_string(),
            chunks.to_string(),
            format!("{secs:.6}"),
            format!("{paper_s:.3}"),
        ]);
    }
    print_table(
        "Table 1, real kernels (this host, projected on 4 processors)",
        &[
            "partitions",
            "models",
            "decomp",
            "chunks",
            "latency s/frame",
            "total CPU s",
            "paper s/frame",
        ],
        &rows,
    );

    // Shape checks.
    let g = |fp: usize, n: usize, mp: usize| measured[&(fp, n, mp)];
    let checks = [
        ("1 model: FP=4 beats FP=1", g(4, 1, 1) < g(1, 1, 1)),
        ("8 models: MP=8 beats serial", g(1, 8, 8) < g(1, 8, 1)),
        ("8 models: MP=8 beats FP=4", g(1, 8, 8) < g(4, 8, 1)),
        (
            "8 models: 32 chunks no better than 4 (overhead regime)",
            g(4, 8, 8) > g(4, 8, 1) * 0.9,
        ),
        (
            "best decomposition is state-dependent (FP wins at 1, MP wins at 8)",
            g(4, 1, 1) < g(1, 1, 1) && g(1, 8, 8) < g(4, 8, 1),
        ),
    ];
    println!("\nshape checks:");
    run_checks(&checks);

    // --- Cost model at paper scale ---------------------------------------
    let spec = DataParallelSpec::new(vec![1, 4], vec![1, 8], Micros::from_millis(35))
        .with_model_overhead(Micros::from_millis(35));
    let mut rows = Vec::new();
    for &(fp, n_models, mp, paper_s) in &paper {
        let state = AppState::new(n_models as u32);
        let work = Micros::from_millis(20) + Micros::from_millis(856) * n_models as u64;
        let plan = spec.plan(work, Decomposition::new(fp as u32, mp as u32), &state);
        let m = DataParallelSpec::makespan(&plan, WORKERS as u32).as_secs_f64();
        rows.push(vec![
            format!("FP={fp}"),
            format!("{n_models}"),
            format!("MP={mp}"),
            format!("({})", plan.chunks),
            format!("{m:.3}"),
            format!("{paper_s:.3}"),
            format!("{:+.1}%", (m - paper_s) / paper_s * 100.0),
        ]);
        csv_line(&[
            "table1_model".to_string(),
            fp.to_string(),
            n_models.to_string(),
            mp.to_string(),
            plan.chunks.to_string(),
            format!("{m:.4}"),
            format!("{paper_s:.3}"),
        ]);
    }
    print_table(
        "Table 1, calibrated cost model (paper scale)",
        &[
            "partitions",
            "models",
            "decomp",
            "chunks",
            "model s/frame",
            "paper s/frame",
            "error",
        ],
        &rows,
    );

    // --- Calibrate → schedule: the full loop ------------------------------
    // Measure the kernels on this host, build a cost-model graph from the
    // measurements, and let the optimal enumerator pick the decomposition —
    // the regime-dependence conclusion must hold on the host's own numbers.
    //
    // With `--cache-dir DIR` the per-regime searches go through the
    // persistent schedule cache (`--no-cache` forces a cold search even
    // when a dir is given). Note the cache key covers the graph's measured
    // costs, so a rerun only hits if the kernel measurements repeat
    // exactly — the cache will not serve schedules computed for different
    // timings. Fixed graphs (see the `schedcache` bench) hit on every
    // rebuild; see docs/TUTORIAL.md.
    use cds_core::optimal::OptimalConfig;
    use cds_core::persist::ScheduleCache;
    use cds_core::table::ScheduleTable;
    use cluster::ClusterSpec;
    use vision::calibrate::{calibrated_tracker, measure_kernels};

    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let cache = match (&cache_dir, no_cache) {
        (Some(dir), false) => match ScheduleCache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("warning: cannot open cache dir {dir}: {e}; searching cold");
                None
            }
        },
        _ => None,
    };

    let times = measure_kernels(WIDTH, HEIGHT, &[1, 2, 4, 8], 2);
    let graph = calibrated_tracker(WIDTH, HEIGHT, &times);
    let cluster = ClusterSpec::single_node(WORKERS as u32);
    let t4 = graph.task_by_name("Target Detection").unwrap();
    println!("\n== Calibrated graph (this host) → optimal decomposition per regime ==");

    let states: Vec<AppState> = [1u32, 2, 4, 8].iter().map(|&n| AppState::new(n)).collect();
    let cfg = OptimalConfig::default();
    let t0 = Instant::now();
    let (table, stats) =
        ScheduleTable::precompute_with_cache(&graph, &cluster, &states, &cfg, cache.as_ref());
    let build = t0.elapsed();

    let mut chosen = Vec::new();
    for s in &states {
        let sched = table.get(s).expect("state precomputed");
        let d = sched
            .iteration
            .decomp
            .get(&t4)
            .map_or("serial".to_string(), ToString::to_string);
        println!(
            "  {} models: latency {}  II {}  T4 {}",
            s.n_models, sched.iteration.latency, sched.ii, d
        );
        csv_line(&[
            "table1_calibrated".to_string(),
            s.n_models.to_string(),
            format!("{:.6}", sched.iteration.latency.as_secs_f64()),
            d.clone(),
        ]);
        chosen.push(d);
    }
    println!(
        "\n  table build: {:.3} s ({} threads), cache: {} hit / {} searched{}",
        build.as_secs_f64(),
        cfg.effective_threads(),
        stats.cache_hits,
        stats.searched(),
        match (&cache_dir, no_cache) {
            (Some(d), false) => format!(" (dir {d})"),
            _ => " (disabled)".to_string(),
        }
    );
    let distinct: std::collections::HashSet<&String> = chosen.iter().collect();
    println!();
    run_checks(&[(
        "calibrated decomposition is regime-dependent on this host",
        distinct.len() > 1,
    )]);
}
