//! # Experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation, plus extension
//! experiments. Each prints a self-describing report with the paper's
//! numbers alongside the measured ones, and emits machine-readable CSV
//! blocks (lines prefixed `csv,`) for downstream plotting.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — data-decomposition latencies (real kernels + cost model) |
//! | `fig3` | Fig. 3 — tuning curve vs the precomputed optimal point |
//! | `fig4` | Fig. 4 — pthread-style vs naive-pipeline schedules (Gantt) |
//! | `fig5` | Fig. 5 — task-parallel and task+data-parallel optimal schedules |
//! | `regime_switch` | §3.4 — regime switching under a dynamic customer process |
//! | `ablation` | extension — enumerator vs list scheduling vs pipeline across states |

use std::fmt::Display;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Print an aligned text table with a title.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let headers: Vec<String> = headers.iter().map(ToString::to_string).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for r in &rows {
        assert_eq!(r.len(), n_cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:>w$}  "));
        }
        println!("{}", s.trim_end());
    };
    line(&headers);
    for r in &rows {
        line(r);
    }
}

/// Emit one machine-readable CSV line, prefixed so it is easy to grep out.
pub fn csv_line<C: Display>(cells: &[C]) {
    let joined: Vec<String> = cells.iter().map(ToString::to_string).collect();
    println!("csv,{}", joined.join(","));
}

/// Print a final `[PASS]`/`[FAIL]` checklist and **exit nonzero** when any
/// check failed, so a CI smoke run of the binary gates on correctness
/// instead of only on it not crashing. Call this last — it does not
/// return on failure.
pub fn run_checks<S: Display>(checks: &[(S, bool)]) {
    let mut all_ok = true;
    for (name, ok) in checks {
        all_ok &= ok;
        println!("  [{}] {name}", if *ok { "PASS" } else { "FAIL" });
    }
    if !all_ok {
        eprintln!("FAILED: at least one check above did not hold");
        std::process::exit(1);
    }
}

/// A JSON scalar for [`JsonReport`] fields — the two shapes bench results
/// actually need. Numbers render via `f64`'s shortest round-trip form;
/// non-finite values become `null` so the file always parses.
pub enum Json {
    /// A number.
    Num(f64),
    /// A string, escaped on render.
    Str(String),
}

impl Json {
    fn render(&self, out: &mut String) {
        match self {
            Json::Num(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// A machine-readable results file: top-level metadata plus a flat `rows`
/// array of uniform objects. Dependency-free by design (the workspace bakes
/// no serde); the output is plain, stable JSON for downstream tooling:
///
/// ```json
/// {"bench": "simd", "host_features": "sse2+ssse3+avx2", "rows": [
///   {"kernel": "change_detection", "backend": "simd", "ns_per_op": 123.0}
/// ]}
/// ```
#[derive(Default)]
pub struct JsonReport {
    meta: Vec<(String, Json)>,
    rows: Vec<Vec<(String, Json)>>,
}

impl JsonReport {
    /// A report whose first metadata field names the benchmark.
    #[must_use]
    pub fn new(bench: &str) -> Self {
        let mut r = JsonReport::default();
        r.meta("bench", Json::Str(bench.to_string()));
        r
    }

    /// Append a top-level metadata field.
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Append one result row.
    pub fn row(&mut self, fields: Vec<(&str, Json)>) {
        self.rows.push(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        );
    }

    /// Render the whole report as a JSON object.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push('{');
        for (k, v) in &self.meta {
            Json::Str(k.clone()).render(&mut out);
            out.push_str(": ");
            v.render(&mut out);
            out.push_str(", ");
        }
        out.push_str("\"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (j, (k, v)) in row.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                Json::Str(k.clone()).render(&mut out);
                out.push_str(": ");
                v.render(&mut out);
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Write the rendered report to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (unwritable path, full disk).
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
        csv_line(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table("t", &["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn json_report_renders_escaped_and_parseable_shape() {
        let mut r = JsonReport::new("simd");
        r.meta("host_features", Json::Str("sse2+avx2".into()));
        r.row(vec![
            ("kernel", Json::Str("change\"quote\nline".into())),
            ("ns_per_op", Json::Num(123.5)),
            ("bad", Json::Num(f64::NAN)),
        ]);
        r.row(vec![("kernel", Json::Str("hist".into()))]);
        let s = r.render();
        assert!(
            s.starts_with("{\"bench\": \"simd\", \"host_features\": \"sse2+avx2\", \"rows\": [")
        );
        assert!(s.contains("\"change\\\"quote\\nline\""));
        assert!(s.contains("\"ns_per_op\": 123.5"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.trim_end().ends_with("]}"));
        // Balanced braces/brackets — the cheap structural sanity check.
        let braces = s.matches('{').count();
        assert_eq!(braces, s.matches('}').count());
        assert_eq!(braces, 3);
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
