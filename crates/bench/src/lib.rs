//! # Experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation, plus extension
//! experiments. Each prints a self-describing report with the paper's
//! numbers alongside the measured ones, and emits machine-readable CSV
//! blocks (lines prefixed `csv,`) for downstream plotting.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — data-decomposition latencies (real kernels + cost model) |
//! | `fig3` | Fig. 3 — tuning curve vs the precomputed optimal point |
//! | `fig4` | Fig. 4 — pthread-style vs naive-pipeline schedules (Gantt) |
//! | `fig5` | Fig. 5 — task-parallel and task+data-parallel optimal schedules |
//! | `regime_switch` | §3.4 — regime switching under a dynamic customer process |
//! | `ablation` | extension — enumerator vs list scheduling vs pipeline across states |

use std::fmt::Display;

/// Print an aligned text table with a title.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n== {title} ==");
    let headers: Vec<String> = headers.iter().map(ToString::to_string).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for r in &rows {
        assert_eq!(r.len(), n_cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, cell) in widths.iter().zip(cells) {
            s.push_str(&format!("{cell:>w$}  "));
        }
        println!("{}", s.trim_end());
    };
    line(&headers);
    for r in &rows {
        line(r);
    }
}

/// Emit one machine-readable CSV line, prefixed so it is easy to grep out.
pub fn csv_line<C: Display>(cells: &[C]) {
    let joined: Vec<String> = cells.iter().map(ToString::to_string).collect();
    println!("csv,{}", joined.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".to_string(), "2".to_string()]]);
        csv_line(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table("t", &["a", "b"], &[vec!["1".to_string()]]);
    }
}
