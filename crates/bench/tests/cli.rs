//! Smoke tests for the `cds` command-line tool: each subcommand runs end to
//! end, and schedule/table files roundtrip through `inspect`.

use std::process::Command;

fn cds() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cds"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cds-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn schedule_then_inspect_roundtrip() {
    let file = tmp("sched.txt");
    let out = cds()
        .args(["schedule", "--models", "2", "--out"])
        .arg(&file)
        .output()
        .expect("run cds schedule");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&file).unwrap();
    assert!(text.starts_with("schedule v1"));

    let out = cds().arg("inspect").arg(&file).output().expect("inspect");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 schedule(s)"), "{stdout}");
    assert!(stdout.contains("Digitizer"), "{stdout}");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn table_roundtrip_and_entries() {
    let file = tmp("table.txt");
    let out = cds()
        .args(["table", "--states", "1..2", "--out"])
        .arg(&file)
        .output()
        .expect("run cds table");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = cds().arg("inspect").arg(&file).output().expect("inspect");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 schedule(s)"), "{stdout}");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn simulate_reports_metrics() {
    let out = cds()
        .args([
            "simulate",
            "--models",
            "1",
            "--period-ms",
            "2000",
            "--frames",
            "6",
        ])
        .output()
        .expect("run cds simulate");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("latency"), "{stdout}");
    assert!(stdout.contains("precomputed optimal"), "{stdout}");
}

#[test]
fn surveillance_graph_variant_works() {
    let file = tmp("surv.txt");
    let out = cds()
        .args([
            "schedule",
            "--models",
            "1",
            "--graph",
            "surveillance",
            "--no-dp",
            "--out",
        ])
        .arg(&file)
        .output()
        .expect("run cds schedule surveillance");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(&file);
}

#[test]
fn datapath_bin_reports_speedups() {
    let out = Command::new(env!("CARGO_BIN_EXE_datapath"))
        .args(["--iters", "5", "--frames", "4"])
        .output()
        .expect("run datapath");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("== Speedups (before / after) =="),
        "{stdout}"
    );
    assert!(stdout.contains("kernel/image_histogram"), "{stdout}");
    assert!(stdout.contains("stm/put_consume_64"), "{stdout}");
    assert!(stdout.contains("frame buffers allocated"), "{stdout}");
    assert!(stdout.contains("headline:"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cds().output().expect("run cds");
    assert!(!out.status.success());
    let out = cds().args(["frobnicate"]).output().expect("run cds");
    assert!(!out.status.success());
    let out = cds()
        .args(["table", "--states", "nonsense"])
        .output()
        .expect("run cds");
    assert!(!out.status.success());
}

#[test]
fn obsreport_emits_valid_trace_and_conformance_table() {
    let out_file = tmp("obs.txt");
    let trace_file = tmp("obs_trace.json");
    let out = Command::new(env!("CARGO_BIN_EXE_obsreport"))
        .args(["--quick", "--out"])
        .arg(&out_file)
        .arg("--trace-out")
        .arg(&trace_file)
        .output()
        .expect("run obsreport");
    assert!(
        out.status.success(),
        "{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("schedule conformance"), "{stdout}");
    assert!(stdout.contains("JSON valid"), "{stdout}");
    assert!(stdout.contains("obsreport: PASS"), "{stdout}");

    // The report file mirrors stdout; the trace revalidates from disk.
    let report = std::fs::read_to_string(&out_file).unwrap();
    assert!(report.contains("overhead"), "{report}");
    let json = std::fs::read_to_string(&trace_file).unwrap();
    let events = obs::chrome::validate(&json).expect("trace well-formed");
    assert!(events > 0, "trace must contain events");
    let _ = std::fs::remove_file(&out_file);
    let _ = std::fs::remove_file(&trace_file);
}
