//! Trace analytics: quantifying the §3.2 pathologies the paper describes
//! qualitatively — bursts of one task, preempted (partial) item processing,
//! and upstream tasks running ahead of their consumers.

use taskgraph::{Micros, TaskGraph};

use crate::trace::{ExecutionTrace, TraceEntry};

/// Quantified scheduling pathologies of one run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PathologyReport {
    /// Longest run of consecutive slices of the *same task* on one
    /// processor (different frames) — the paper's "generation of a number
    /// of consecutive frames rapidly followed by the consumption of these
    /// frames". 1 means perfectly interleaved.
    pub max_task_burst: usize,
    /// Slices that did not finish their activation (preemptions): nonzero
    /// only for quantum-based scheduling, where a thread is scheduled "for
    /// enough time to generate two and a half items".
    pub preempted_slices: usize,
    /// The peak *frame lead* of any producer over one of its consumers: how
    /// many frames ahead the producer's completed activations ran. Large
    /// values mean "a later slower task can not keep up".
    pub max_producer_lead: u64,
}

/// Analyse `trace` against its graph.
///
/// Single-pass grouping over the trace: slices are bucketed by processor
/// and by task once, and per-task completion frames are computed once and
/// shared across every edge that touches the task (the old implementation
/// recomputed them per edge endpoint and hashed per slice).
#[must_use]
pub fn pathology_report(trace: &ExecutionTrace, graph: &TaskGraph) -> PathologyReport {
    // Bucket slices by processor and by task in one pass.
    let mut by_proc: Vec<Vec<&TraceEntry>> = vec![Vec::new(); trace.n_procs() as usize];
    let mut by_task: Vec<Vec<(u64, Micros)>> = vec![Vec::new(); graph.n_tasks()];
    for e in trace.entries() {
        by_proc[e.proc.0 as usize].push(e);
        by_task[e.task.0].push((e.frame, e.end));
    }

    // Burst detection: per processor, longest run of equal task ids across
    // consecutive slices (ordered by start).
    let mut max_task_burst = 1usize;
    for slices in &mut by_proc {
        slices.sort_by_key(|e| (e.start, e.end));
        let mut run = 1usize;
        for w in slices.windows(2) {
            // A burst is back-to-back work on the same task for different
            // frames; idle-separated repeats are just a quiet system.
            if w[0].task == w[1].task && w[0].frame != w[1].frame && w[1].start == w[0].end {
                run += 1;
                max_task_burst = max_task_burst.max(run);
            } else {
                run = 1;
            }
        }
    }

    // Preemption: an activation (task, frame, chunk) split across >1 slice.
    // Sort the activation keys and count duplicate runs — no hash table.
    type ActivationKey = (usize, u64, Option<(u32, u32)>);
    let mut keys: Vec<ActivationKey> = trace
        .entries()
        .iter()
        .map(|e| (e.task.0, e.frame, e.chunk))
        .collect();
    keys.sort_unstable();
    let mut preempted_slices = 0usize;
    let mut i = 0;
    while i < keys.len() {
        let mut j = i + 1;
        while j < keys.len() && keys[j] == keys[i] {
            j += 1;
        }
        if j - i > 1 {
            preempted_slices += 1;
        }
        i = j;
    }

    // Per-task completion frames, computed once: a frame completes at the
    // max end over its slices; the list is ordered by completion time.
    let completions: Vec<Vec<(Micros, u64)>> = by_task
        .into_iter()
        .map(|mut frames| {
            frames.sort_unstable();
            let mut v: Vec<(Micros, u64)> = Vec::with_capacity(frames.len());
            for (frame, end) in frames {
                match v.last_mut() {
                    // Sorted by (frame, end): the last slice of a frame's
                    // group carries its max end.
                    Some(last) if last.1 == frame => last.0 = end,
                    _ => v.push((end, frame)),
                }
            }
            v.sort_unstable();
            v
        })
        .collect();

    // Producer lead: for each edge (producer → consumer), compare the
    // producer's completed-frame count against the consumer's at each
    // producer-completion instant.
    let mut max_producer_lead = 0u64;
    for (from, to, _) in graph.edges() {
        let prod = &completions[from.0];
        let cons = &completions[to.0];
        for (i, &(t_done, _)) in prod.iter().enumerate() {
            let produced = i as u64 + 1;
            let consumed = cons.partition_point(|&(ct, _)| ct <= t_done) as u64;
            max_producer_lead = max_producer_lead.max(produced.saturating_sub(consumed));
        }
    }

    PathologyReport {
        max_task_burst,
        preempted_slices,
        max_producer_lead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{simulate_online, OnlineConfig};
    use crate::spec::ClusterSpec;
    use crate::workload::FrameClock;
    use taskgraph::{builders, AppState, Micros};

    fn run(quantum: Option<Micros>, period_ms: u64) -> (PathologyReport, TaskGraph) {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut cfg = OnlineConfig::new(
            FrameClock::new(Micros::from_millis(period_ms), 16),
            AppState::new(2),
        );
        cfg.quantum = quantum;
        cfg.channel_capacity = 8;
        let out = simulate_online(&g, &c, cfg);
        (pathology_report(&out.trace, &g), g)
    }

    use taskgraph::TaskGraph;

    #[test]
    fn saturated_online_run_shows_bursts_and_lead() {
        let (report, _) = run(None, 33);
        assert!(
            report.max_task_burst >= 3,
            "saturation should produce task bursts, got {report:?}"
        );
        assert!(
            report.max_producer_lead >= 3,
            "upstream should run ahead, got {report:?}"
        );
    }

    #[test]
    fn quantum_runs_show_preemption() {
        let (with_quantum, _) = run(Some(Micros::from_millis(100)), 250);
        let (without, _) = run(None, 250);
        assert!(with_quantum.preempted_slices > 0);
        assert_eq!(without.preempted_slices, 0);
    }

    #[test]
    fn unloaded_run_is_pathology_free() {
        let (report, _) = run(None, 10_000);
        assert_eq!(report.preempted_slices, 0);
        assert!(report.max_producer_lead <= 1, "{report:?}");
        assert!(report.max_task_burst <= 2, "{report:?}");
    }

    #[test]
    fn scheduled_evaluation_is_pathology_free() {
        // The precomputed pipeline, by construction, has no preemption and
        // bounded producer lead.
        use crate::metrics::Metrics;
        let g = builders::color_tracker();
        let _ = Metrics::from_records(&[], 0);
        // Build a simple synthetic trace mimicking a pipelined schedule:
        // tasks strictly alternate per processor.
        let mut t = crate::trace::ExecutionTrace::new(1);
        for f in 0..4u64 {
            for (i, dur) in [(0usize, 10u64), (1, 20), (2, 20), (3, 30), (4, 10), (5, 5)] {
                let start = f * 95 + [0, 10, 30, 50, 80, 90][i];
                t.push(crate::trace::TraceEntry {
                    proc: crate::spec::ProcId(0),
                    task: taskgraph::TaskId(i),
                    frame: f,
                    chunk: None,
                    start: Micros(start),
                    end: Micros(start + dur),
                });
            }
        }
        let report = pathology_report(&t, &g);
        assert_eq!(report.preempted_slices, 0);
        assert_eq!(report.max_task_burst, 1);
        assert!(report.max_producer_lead <= 1);
    }
}
