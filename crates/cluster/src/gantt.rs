//! ASCII Gantt rendering of execution traces, in the visual layout of the
//! paper's Figures 4–5: processors across, time down, one short label per
//! task, with the frame number distinguishing iterations (the paper uses
//! shading).

use crate::trace::ExecutionTrace;
use taskgraph::{Micros, TaskGraph};

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Simulated time per output row.
    pub bucket: Micros,
    /// Maximum rows rendered (the rest is elided).
    pub max_rows: usize,
    /// Render only slices starting at/after this time.
    pub from: Micros,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            bucket: Micros::from_millis(100),
            max_rows: 80,
            from: Micros::ZERO,
        }
    }
}

/// Render `trace` as an ASCII chart. Cells show `T<task><frame mod 10>`;
/// a data-parallel chunk is marked with a trailing `*`.
#[must_use]
pub fn render_gantt(trace: &ExecutionTrace, graph: &TaskGraph, opts: GanttOptions) -> String {
    let n = trace.n_procs() as usize;
    let end = trace.makespan();
    if end <= opts.from || n == 0 {
        return String::from("(empty trace)\n");
    }
    let rows = (end - opts.from).0.div_ceil(opts.bucket.0) as usize;
    let rows = rows.min(opts.max_rows);
    let width = 5usize;

    // grid[row][proc] = label of the slice covering the bucket midpoint.
    let mut grid = vec![vec![String::new(); n]; rows];
    for e in trace.entries() {
        if e.end <= opts.from {
            continue;
        }
        let rel_start = e.start.saturating_sub(opts.from).0;
        let rel_end = (e.end - opts.from).0.min(rows as u64 * opts.bucket.0);
        let first = (rel_start / opts.bucket.0) as usize;
        let last = ((rel_end.saturating_sub(1)) / opts.bucket.0) as usize;
        let label = {
            let star = if e.chunk.is_some() { "*" } else { "" };
            format!("T{}{}{}", e.task.0 + 1, e.frame % 10, star)
        };
        for row in grid.iter_mut().take(last.min(rows - 1) + 1).skip(first) {
            if row[e.proc.0 as usize].is_empty() {
                row[e.proc.0 as usize] = label.clone();
            }
        }
    }

    let mut out = String::new();
    let names: Vec<String> = graph
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| format!("T{}={}", i + 1, t.name))
        .collect();
    out.push_str(&format!("# {}\n", names.join("  ")));
    out.push_str(&format!(
        "# bucket={} (label: task, frame mod 10, '*'=chunk)\n",
        opts.bucket
    ));
    out.push_str("time     ");
    for p in 0..n {
        out.push_str(&format!("|{:^width$}", format!("P{p}")));
    }
    out.push_str("|\n");
    for (r, row) in grid.iter().enumerate() {
        let t = opts.from + opts.bucket * r as u64;
        out.push_str(&format!("{:>8} ", t.to_string()));
        for cell in row {
            let c = if cell.is_empty() { "." } else { cell };
            out.push_str(&format!("|{c:^width$}"));
        }
        out.push_str("|\n");
    }
    if (((end - opts.from).0).div_ceil(opts.bucket.0)) as usize > rows {
        out.push_str("... (truncated)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProcId;
    use crate::trace::TraceEntry;
    use taskgraph::{builders, TaskId};

    fn sample_trace() -> (ExecutionTrace, TaskGraph) {
        let g = builders::color_tracker();
        let mut t = ExecutionTrace::new(2);
        t.push(TraceEntry {
            proc: ProcId(0),
            task: TaskId(0),
            frame: 0,
            chunk: None,
            start: Micros::ZERO,
            end: Micros::from_millis(50),
        });
        t.push(TraceEntry {
            proc: ProcId(1),
            task: TaskId(3),
            frame: 0,
            chunk: Some((0, 4)),
            start: Micros::from_millis(50),
            end: Micros::from_millis(400),
        });
        (t, g)
    }

    #[test]
    fn gantt_shows_tasks_and_chunks() {
        let (t, g) = sample_trace();
        let s = render_gantt(&t, &g, GanttOptions::default());
        assert!(s.contains("T10"), "digitizer slice missing:\n{s}");
        assert!(s.contains("T40*"), "chunk slice missing:\n{s}");
        assert!(s.contains("P0") && s.contains("P1"));
        assert!(s.contains("Digitizer"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let g = builders::color_tracker();
        let t = ExecutionTrace::new(2);
        assert_eq!(
            render_gantt(&t, &g, GanttOptions::default()),
            "(empty trace)\n"
        );
    }

    #[test]
    fn truncation_notice_appears() {
        let (t, g) = sample_trace();
        let opts = GanttOptions {
            bucket: Micros::from_millis(10),
            max_rows: 3,
            from: Micros::ZERO,
        };
        let s = render_gantt(&t, &g, opts);
        assert!(s.contains("truncated"));
        assert_eq!(s.lines().count(), 3 + 3 + 1); // 3 header + 3 rows + notice
    }

    #[test]
    fn from_offset_skips_early_slices() {
        let (t, g) = sample_trace();
        let opts = GanttOptions {
            bucket: Micros::from_millis(100),
            max_rows: 80,
            from: Micros::from_millis(100),
        };
        let s = render_gantt(&t, &g, opts);
        assert!(
            !s.contains("T10"),
            "digitizer should be before the window:\n{s}"
        );
        assert!(s.contains("T40*"));
    }
}
