//! # Cluster model and discrete-event simulator
//!
//! The execution substrate of the reproduction: a deterministic model of a
//! cluster of SMPs (the paper ran on four 4-way AlphaServer 4100s) plus a
//! discrete-event simulator that executes streaming task graphs against it.
//!
//! Two execution styles are provided:
//!
//! * [`online::simulate_online`] — a *general on-line scheduler* in the style
//!   of the pthread scheduler the paper uses as its baseline (§3.2): a
//!   dependence-blind, FIFO, optionally preemptive policy that knows nothing
//!   about the task graph. It reproduces the paper's enumerated pathologies —
//!   bursty upstream production, partially processed items, the
//!   one-processor-per-thread restriction, and downstream tasks that cannot
//!   keep up.
//! * Explicit timetable execution, used by the `cds-core` crate to evaluate
//!   precomputed schedules; it shares this crate's [`trace`] and [`metrics`]
//!   types so online and offline runs are directly comparable.
//!
//! All simulated time is in [`Micros`](taskgraph::Micros); runs are exactly
//! reproducible.

#![warn(missing_docs)]

pub mod analysis;
pub mod gantt;
pub mod metrics;
pub mod online;
pub mod online_ref;
pub mod spec;
pub mod sweep;
pub mod trace;
pub mod workload;

pub use analysis::{pathology_report, PathologyReport};
pub use gantt::{render_gantt, GanttOptions};
pub use metrics::{FrameRecord, Metrics, MetricsScratch};
pub use online::{simulate_online, OnlineConfig, SimArena, SimOutcome, SimSummary};
pub use online_ref::simulate_online_ref;
pub use spec::{ClusterSpec, NodeId, ProcId};
pub use sweep::{sweep, SweepConfig, SweepOutput, SweepStats};
pub use trace::{ExecutionTrace, TraceEntry, TraceMode};
pub use workload::{FrameClock, StateTrack};
