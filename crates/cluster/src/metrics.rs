//! Performance metrics: the paper's two objectives — latency and
//! throughput — plus the *uniformity* of frame processing over time ("an
//! execution that exhibits uniformity processes frames at a reasonably
//! regular rate", §1).

use taskgraph::Micros;

/// The lifecycle of one frame through the application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameRecord {
    /// Frame number (timestamp).
    pub frame: u64,
    /// When the digitizer finished producing it.
    pub digitized_at: Micros,
    /// When the last task finished processing it (`None` = dropped/skipped).
    pub completed_at: Option<Micros>,
}

impl FrameRecord {
    /// End-to-end latency: "the time from the digitizing of the frame to
    /// completion of its processing" (§1).
    #[must_use]
    pub fn latency(&self) -> Option<Micros> {
        self.completed_at.map(|c| c - self.digitized_at)
    }
}

/// Aggregate metrics over a run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Metrics {
    /// Frames that completed processing.
    pub frames_completed: u64,
    /// Frames digitized but never completed (skipped or still in flight).
    pub frames_dropped: u64,
    /// Mean end-to-end latency over completed frames.
    pub mean_latency: Micros,
    /// Minimum latency.
    pub min_latency: Micros,
    /// Maximum latency.
    pub max_latency: Micros,
    /// Median latency.
    pub p50_latency: Micros,
    /// 95th-percentile latency (tail behaviour matters for interactivity:
    /// the kiosk must respond promptly *consistently*).
    pub p95_latency: Micros,
    /// Completed frames per second: the inverse of the mean inter-arrival
    /// time of results ("the inverse of the time between the arrival of two
    /// consecutive results at the output", §3.1).
    pub throughput_hz: f64,
    /// Coefficient of variation (std/mean) of inter-completion gaps: 0 for
    /// perfectly regular output, large for bursty output. This quantifies
    /// the paper's uniformity objective.
    pub uniformity_cov: f64,
}

/// Reusable intermediate buffers for [`Metrics::from_records_in`].
///
/// Computing metrics needs two sorted views of the completed frames; a
/// sweep over thousands of runs recomputes them per run. Renting a scratch
/// (pre-sized via [`Metrics::reserve`]) makes the recompute allocation-free
/// once the buffers have grown to the working-set size.
#[derive(Clone, Debug, Default)]
pub struct MetricsScratch {
    /// `(completed_at, latency)` pairs, sorted by completion time.
    completed: Vec<(Micros, Micros)>,
    /// Post-warmup latencies, sorted ascending (percentile order statistics).
    sorted_latencies: Vec<Micros>,
}

impl Metrics {
    /// A scratch pre-sized for runs of `n_frames` frames (the per-frame
    /// metrics hot path allocates nothing when reused across runs).
    #[must_use]
    pub fn reserve(n_frames: usize) -> MetricsScratch {
        MetricsScratch {
            completed: Vec::with_capacity(n_frames),
            sorted_latencies: Vec::with_capacity(n_frames),
        }
    }

    /// Compute metrics from frame records, ignoring the first
    /// `warmup_frames` *completed* frames (pipeline fill).
    #[must_use]
    pub fn from_records(records: &[FrameRecord], warmup_frames: usize) -> Metrics {
        Metrics::from_records_in(&mut Metrics::reserve(records.len()), records, warmup_frames)
    }

    /// [`Metrics::from_records`] with caller-provided scratch buffers;
    /// byte-for-byte the same result, no per-call allocation on reuse.
    #[must_use]
    pub fn from_records_in(
        scratch: &mut MetricsScratch,
        records: &[FrameRecord],
        warmup_frames: usize,
    ) -> Metrics {
        scratch.completed.clear();
        scratch.completed.extend(
            records
                .iter()
                .filter_map(|r| r.completed_at.map(|c| (c, c - r.digitized_at))),
        );
        scratch.completed.sort_by_key(|&(c, _)| c);
        let dropped = records.len() as u64 - scratch.completed.len() as u64;
        let completed = if scratch.completed.len() > warmup_frames {
            &scratch.completed[warmup_frames..]
        } else {
            &[][..]
        };

        if completed.is_empty() {
            return Metrics {
                frames_completed: 0,
                frames_dropped: dropped,
                mean_latency: Micros::ZERO,
                min_latency: Micros::ZERO,
                max_latency: Micros::ZERO,
                p50_latency: Micros::ZERO,
                p95_latency: Micros::ZERO,
                throughput_hz: 0.0,
                uniformity_cov: 0.0,
            };
        }

        let mut sum = Micros::ZERO;
        let mut min_latency = Micros(u64::MAX);
        let mut max_latency = Micros::ZERO;
        for &(_, l) in completed {
            sum += l;
            min_latency = min_latency.min(l);
            max_latency = max_latency.max(l);
        }
        let mean_latency = sum / completed.len() as u64;
        let sorted = &mut scratch.sorted_latencies;
        sorted.clear();
        sorted.extend(completed.iter().map(|&(_, l)| l));
        sorted.sort_unstable();
        // Nearest-rank percentiles.
        let rank = |p: f64| -> Micros {
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        let p50_latency = rank(0.50);
        let p95_latency = rank(0.95);

        // Inter-completion gaps, streamed (no gap buffer): two passes for a
        // numerically identical mean/variance to the old Vec-based code.
        let n_gaps = completed.len() - 1;
        let (throughput_hz, uniformity_cov) = if n_gaps == 0 {
            (0.0, 0.0)
        } else {
            let gap = |w: &[(Micros, Micros)]| (w[1].0 - w[0].0).as_secs_f64();
            let mean_gap = completed.windows(2).map(gap).sum::<f64>() / n_gaps as f64;
            let var = completed
                .windows(2)
                .map(|w| {
                    let g = gap(w);
                    (g - mean_gap) * (g - mean_gap)
                })
                .sum::<f64>()
                / n_gaps as f64;
            let tp = if mean_gap > 0.0 { 1.0 / mean_gap } else { 0.0 };
            let cov = if mean_gap > 0.0 {
                var.sqrt() / mean_gap
            } else {
                0.0
            };
            (tp, cov)
        };

        Metrics {
            frames_completed: completed.len() as u64,
            frames_dropped: dropped,
            mean_latency,
            min_latency,
            max_latency,
            p50_latency,
            p95_latency,
            throughput_hz,
            uniformity_cov,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency mean={} min={} max={} | throughput={:.3}/s | uniformity CoV={:.3} | done={} dropped={}",
            self.mean_latency,
            self.min_latency,
            self.max_latency,
            self.throughput_hz,
            self.uniformity_cov,
            self.frames_completed,
            self.frames_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(frame: u64, dig: u64, done: Option<u64>) -> FrameRecord {
        FrameRecord {
            frame,
            digitized_at: Micros(dig),
            completed_at: done.map(Micros),
        }
    }

    #[test]
    fn regular_output_has_zero_cov() {
        // Completions at 100, 200, 300, 400: perfectly uniform.
        let records: Vec<FrameRecord> = (0..4)
            .map(|i| rec(i, i * 100, Some((i + 1) * 100)))
            .collect();
        let m = Metrics::from_records(&records, 0);
        assert_eq!(m.frames_completed, 4);
        assert_eq!(m.mean_latency, Micros(100));
        assert!((m.uniformity_cov).abs() < 1e-9);
        assert!((m.throughput_hz - 1e4).abs() < 1.0); // gaps of 100us
    }

    #[test]
    fn bursty_output_has_high_cov() {
        // Three results immediately, then a long silence, then one more.
        let records = vec![
            rec(0, 0, Some(10)),
            rec(1, 0, Some(11)),
            rec(2, 0, Some(12)),
            rec(3, 0, Some(10_000)),
        ];
        let m = Metrics::from_records(&records, 0);
        assert!(m.uniformity_cov > 1.0, "cov={}", m.uniformity_cov);
    }

    #[test]
    fn dropped_frames_counted() {
        let records = vec![rec(0, 0, Some(50)), rec(1, 10, None), rec(2, 20, Some(90))];
        let m = Metrics::from_records(&records, 0);
        assert_eq!(m.frames_completed, 2);
        assert_eq!(m.frames_dropped, 1);
        assert_eq!(m.min_latency, Micros(50));
        assert_eq!(m.max_latency, Micros(70));
    }

    #[test]
    fn warmup_frames_excluded() {
        let records = vec![
            rec(0, 0, Some(1_000)), // pipeline fill: huge latency
            rec(1, 900, Some(1_020)),
            rec(2, 1_000, Some(1_040)),
        ];
        let all = Metrics::from_records(&records, 0);
        let warm = Metrics::from_records(&records, 1);
        assert_eq!(warm.frames_completed, 2);
        assert!(warm.max_latency < all.max_latency);
    }

    #[test]
    fn empty_and_tiny_inputs_are_safe() {
        let m = Metrics::from_records(&[], 0);
        assert_eq!(m.frames_completed, 0);
        let m = Metrics::from_records(&[rec(0, 0, Some(5))], 0);
        assert_eq!(m.frames_completed, 1);
        assert_eq!(m.throughput_hz, 0.0, "one completion has no gaps");
        let m = Metrics::from_records(&[rec(0, 0, Some(5))], 5);
        assert_eq!(m.frames_completed, 0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        // Latencies 10, 20, ..., 100.
        let records: Vec<FrameRecord> = (0..10).map(|i| rec(i, 0, Some((i + 1) * 10))).collect();
        let m = Metrics::from_records(&records, 0);
        assert_eq!(m.p50_latency, Micros(50));
        assert_eq!(m.p95_latency, Micros(100));
        assert_eq!(m.min_latency, Micros(10));
        assert_eq!(m.max_latency, Micros(100));
    }

    #[test]
    fn percentiles_with_single_sample() {
        let m = Metrics::from_records(&[rec(0, 0, Some(42))], 0);
        assert_eq!(m.p50_latency, Micros(42));
        assert_eq!(m.p95_latency, Micros(42));
    }

    #[test]
    fn latency_accessor() {
        assert_eq!(rec(0, 10, Some(30)).latency(), Some(Micros(20)));
        assert_eq!(rec(0, 10, None).latency(), None);
    }

    #[test]
    fn scratch_reuse_matches_fresh_computation() {
        let mut scratch = Metrics::reserve(8);
        // Reuse the same scratch across runs of different sizes and shapes;
        // every result must equal the allocation-per-call path bit for bit.
        let runs: Vec<Vec<FrameRecord>> = vec![
            (0..8).map(|i| rec(i, i * 50, Some(i * 50 + 120))).collect(),
            vec![rec(0, 0, Some(10)), rec(1, 5, None), rec(2, 9, Some(40))],
            vec![],
            (0..3).map(|i| rec(i, 0, Some((i + 1) * 7))).collect(),
        ];
        for records in &runs {
            for warmup in 0..3 {
                let fresh = Metrics::from_records(records, warmup);
                let reused = Metrics::from_records_in(&mut scratch, records, warmup);
                assert_eq!(fresh, reused);
            }
        }
    }

    #[test]
    fn display_is_informative() {
        let m = Metrics::from_records(&[rec(0, 0, Some(5)), rec(1, 1, Some(9))], 0);
        let s = m.to_string();
        assert!(s.contains("latency"));
        assert!(s.contains("throughput"));
    }
}
