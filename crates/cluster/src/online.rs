//! A *general on-line scheduler* simulator: the paper's pthread baseline.
//!
//! The policy is deliberately dependence-blind (§3.2): it keeps a FIFO ready
//! queue of runnable jobs and assigns the oldest eligible job to any free
//! processor, optionally preempting at a fixed quantum. It "not only knows
//! nothing about the specific application but also has no understanding of
//! the application class". The simulated pathologies match the paper's list:
//!
//! * it "focuses more on throughput" — any runnable upstream work is taken
//!   eagerly, so early tasks produce bursts of items while later, slower
//!   tasks fall behind (the T3/T4 phenomenon of Fig. 4(a));
//! * with a quantum it will "schedule a thread for enough time to generate
//!   two and a half items", leaving partially processed items;
//! * it assumes "a thread can only be scheduled on one processor at a time",
//!   so a task's activations for successive frames serialize even when
//!   processors idle.
//!
//! Flow control is the only STM mechanism retained: channels hold at most
//! `channel_capacity` live items and the digitizer blocks when its output is
//! full, which is what makes latency *plateau* (rather than diverge) when
//! the digitizer period saturates the system — the upper branch of the
//! paper's Fig. 3 tuning curve.
//!
//! ## The event engine
//!
//! All per-step state is index-addressed: processors, tasks, channels, and
//! frames are dense integer ids, so the inner loop touches `Vec`s, never a
//! hash map. Per-frame bookkeeping whose live window is small (channel
//! consumer counts, missing inputs, outstanding chunks) lives in per-entity
//! `(frame, count)` pair lists bounded by the channel capacity. A
//! [`SimArena`] owns every buffer — the event heap, ready queue, occupancy
//! tables, frame records, trace, and metrics scratch — and is rented across
//! runs, so a parameter sweep allocates (almost) nothing after its first
//! simulation. Trace recording is gated by
//! [`TraceMode`]; metrics are identical in every
//! mode.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use taskgraph::{AppState, ChunkPlan, Decomposition, Micros, TaskGraph, TaskId};

use crate::metrics::{FrameRecord, Metrics, MetricsScratch};
use crate::spec::{ClusterSpec, ProcId};
use crate::trace::{ExecutionTrace, TraceEntry, TraceMode};
use crate::workload::{FrameClock, StateTrack};

/// Configuration of one online-scheduler run.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Frame arrival clock (digitizer period × frame count).
    pub clock: FrameClock,
    /// The (static) application state used to evaluate task costs. Ignored
    /// when `state_track` is set.
    pub state: AppState,
    /// Per-frame application state (a dynamic environment): task costs and
    /// chunk plans follow the state in force when each frame was digitized.
    pub state_track: Option<StateTrack>,
    /// Maximum live items per channel (flow control). Must be ≥ 1.
    pub channel_capacity: usize,
    /// Preemption quantum; `None` runs every job slice to completion.
    pub quantum: Option<Micros>,
    /// Fixed data decomposition per data-parallel task. Tasks absent from
    /// the map run serially (FP=1, MP=1).
    pub decomposition: BTreeMap<TaskId, Decomposition>,
    /// Completed frames excluded from metrics (pipeline fill).
    pub warmup_frames: usize,
    /// When true, a backlogged task jumps to its newest ready frame and
    /// *skips* the older ones (the STM `NewestUnseen` consumption style).
    /// This keeps latency bounded under overload at the price of dropped
    /// frames — the paper's uniformity pathology: a non-uniform execution
    /// "might process three frames in a row and then skip the next hundred".
    pub skip_stale: bool,
    /// How much of the execution to record. Metrics are identical in every
    /// mode; timing-oriented sweeps use [`TraceMode::Off`] to pay zero trace
    /// cost.
    pub trace_mode: TraceMode,
}

impl OnlineConfig {
    /// A run with sensible defaults: capacity 4, no preemption, serial
    /// tasks, no frame skipping, full trace recording.
    #[must_use]
    pub fn new(clock: FrameClock, state: AppState) -> Self {
        OnlineConfig {
            clock,
            state,
            state_track: None,
            channel_capacity: 4,
            quantum: None,
            decomposition: BTreeMap::new(),
            warmup_frames: 2,
            skip_stale: false,
            trace_mode: TraceMode::Full,
        }
    }
}

/// The result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Every processor slice executed (as recorded by the run's
    /// [`TraceMode`]).
    pub trace: ExecutionTrace,
    /// Per-frame lifecycle records.
    pub frames: Vec<FrameRecord>,
    /// Aggregate metrics (warmup excluded).
    pub metrics: Metrics,
    /// Total simulated duration.
    pub makespan: Micros,
}

/// The aggregate result of one arena-resident run: everything that escapes
/// the [`SimArena`] by value. Frames and trace stay in the arena and are
/// read (or carried into a [`SimOutcome`]) separately.
#[derive(Clone, Copy, Debug)]
pub struct SimSummary {
    /// Aggregate metrics (warmup excluded).
    pub metrics: Metrics,
    /// Total simulated duration.
    pub makespan: Micros,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobKind {
    /// A whole serial activation of a task.
    Serial(TaskId),
    /// The splitter phase of a data-parallel activation.
    Split(TaskId),
    /// One chunk (index, count) of a data-parallel activation.
    Chunk(TaskId, u32, u32),
    /// The joiner phase of a data-parallel activation.
    Join(TaskId),
}

impl JobKind {
    fn task(self) -> TaskId {
        match self {
            JobKind::Serial(t) | JobKind::Split(t) | JobKind::Chunk(t, _, _) | JobKind::Join(t) => {
                t
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Job {
    /// Stable identity across preemptions.
    id: u64,
    /// FIFO position (refreshed on requeue, so preempted jobs go to the
    /// back — the round-robin behaviour of a time-sliced scheduler).
    seq: u64,
    kind: JobKind,
    frame: u64,
    remaining: Micros,
    /// Whether output-channel slots have been reserved for this activation.
    reserved: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    Finish(u32),
    Digitize(u64),
}

#[derive(Clone, Debug)]
struct Running {
    job: Job,
    slice_start: Micros,
    slice: Micros,
}

/// A `(frame, count)` pair list: the dense-map replacement for per-frame
/// hash entries. The live window per entity is small (bounded by the
/// channel capacity / outstanding activations), so linear scans beat
/// hashing.
type FrameCounts = Vec<(u64, u32)>;

/// Register `count` for `frame`; the frame must not already be present.
fn slot_insert(v: &mut FrameCounts, frame: u64, count: u32) {
    debug_assert!(v.iter().all(|&(f, _)| f != frame), "duplicate frame slot");
    v.push((frame, count));
}

/// Decrement `frame`'s count, dropping the pair at zero. Panics with `what`
/// if the frame is absent — mirroring the accounting invariants the
/// hash-map version asserted via `expect`.
fn slot_dec(v: &mut FrameCounts, frame: u64, what: &str) -> u32 {
    let i = v
        .iter()
        .position(|&(f, _)| f == frame)
        .unwrap_or_else(|| panic!("{what}"));
    v[i].1 -= 1;
    let left = v[i].1;
    if left == 0 {
        v.swap_remove(i);
    }
    left
}

/// Decrement `frame`'s count, initializing it to `init` first if absent
/// (the `entry().or_insert()` pattern). Drops the pair at zero.
fn slot_dec_or_init(v: &mut FrameCounts, frame: u64, init: u32) -> u32 {
    match v.iter().position(|&(f, _)| f == frame) {
        Some(i) => {
            v[i].1 -= 1;
            let left = v[i].1;
            if left == 0 {
                v.swap_remove(i);
            }
            left
        }
        None => {
            let left = init - 1;
            if left > 0 {
                v.push((frame, left));
            }
            left
        }
    }
}

fn refill_none<T>(v: &mut Vec<Option<T>>, n: usize) {
    v.clear();
    v.resize_with(n, || None);
}

/// Clear every queue in place (keeping capacities) and adjust the outer
/// length to `n`.
fn reset_queues<T>(v: &mut Vec<VecDeque<T>>, n: usize) {
    for q in v.iter_mut() {
        q.clear();
    }
    if v.len() < n {
        v.resize_with(n, VecDeque::new);
    } else {
        v.truncate(n);
    }
}

/// Clear every slot in place (keeping inner capacities) and adjust the
/// outer length to `n`.
fn reset_slots<T>(v: &mut Vec<Vec<T>>, n: usize) {
    for s in v.iter_mut() {
        s.clear();
    }
    if v.len() < n {
        v.resize_with(n, Vec::new);
    } else {
        v.truncate(n);
    }
}

/// Reusable simulator state: every buffer one online run needs, rented
/// across runs.
///
/// A fresh arena per run reproduces the historical `simulate_online`
/// behaviour; reusing one arena across a sweep makes the event loop
/// allocation-free after the first run (buffers are cleared, never freed).
/// Results are bit-identical either way — the arena holds no state that
/// survives `simulate` other than buffer capacity.
///
/// ```
/// use cluster::{ClusterSpec, FrameClock, OnlineConfig, SimArena, TraceMode};
/// use taskgraph::{builders, AppState, Micros};
///
/// let graph = builders::color_tracker();
/// let cluster = ClusterSpec::single_node(4);
/// let mut arena = SimArena::new();
/// let mut cfg = OnlineConfig::new(FrameClock::new(Micros::from_millis(500), 8), AppState::new(2));
/// cfg.trace_mode = TraceMode::Off; // timing run: no trace cost
/// let a = arena.simulate(&graph, &cluster, &cfg);
/// let b = arena.simulate(&graph, &cluster, &cfg); // reuses every buffer
/// assert_eq!(a.metrics, b.metrics);
/// ```
#[derive(Debug, Default)]
pub struct SimArena {
    events: BinaryHeap<Reverse<(Micros, u64, Event)>>,
    /// Per-task FIFO of queued `Serial`/`Split` activations. Jobs are only
    /// ever appended with a fresh, increasing `seq`, so each queue is
    /// seq-sorted and the head is the task's oldest queued activation.
    task_fifo: Vec<VecDeque<Job>>,
    /// Queued `Chunk`/`Join` jobs (also seq-sorted): work any processor may
    /// take without acquiring a task thread.
    pool: VecDeque<Job>,
    /// A preempted `Serial`/`Split` job that still owns its task's thread —
    /// the only job of that task that can be scheduled until it finishes.
    owner: Vec<Option<Job>>,
    /// Scratch for the frame-skip path (frames consumed without running).
    skip_scratch: Vec<u64>,
    /// Per-task thread occupancy: the id of the job holding the thread.
    busy: Vec<Option<u64>>,
    /// Per-processor running slice.
    running: Vec<Option<Running>>,
    free_procs: Vec<u32>,
    /// Live (reserved or present) items per channel.
    occupancy: Vec<usize>,
    /// Per channel: consumers still owing a consume, by frame.
    remaining_consumers: Vec<FrameCounts>,
    /// Per task: inputs not yet present, by frame.
    missing_inputs: Vec<FrameCounts>,
    /// Per task: chunks still running for a DP activation, by frame.
    chunks_left: Vec<FrameCounts>,
    /// Per task: chunk plans keyed by the `n_models` of the frame's state —
    /// a dynamic environment changes the plan between frames.
    plans: Vec<Vec<(u32, ChunkPlan)>>,
    /// Distinct states of the run (scratch for plan construction).
    states: Vec<AppState>,
    /// The graph's source tasks (computed once per run).
    sources: Vec<TaskId>,
    digitized: Vec<Option<Micros>>,
    completed: Vec<Option<Micros>>,
    /// Per-frame count of completed task activations.
    tasks_done: Vec<u32>,
    frames: Vec<FrameRecord>,
    trace: ExecutionTrace,
    scratch: MetricsScratch,
}

impl SimArena {
    /// An empty arena; buffers grow to the working-set size on first use.
    #[must_use]
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Run the online scheduler on `graph` over `cluster`, reusing this
    /// arena's buffers. Identical results to [`simulate_online`] (which is
    /// this method on a throwaway arena).
    ///
    /// Panics under the same conditions as [`simulate_online`].
    pub fn simulate(
        &mut self,
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        cfg: &OnlineConfig,
    ) -> SimSummary {
        graph.validate().expect("graph must validate");
        assert!(cfg.channel_capacity >= 1, "capacity must be at least 1");
        let n_frames = cfg.clock.n_frames;
        let n_procs = cluster.n_procs();
        self.reset(graph, n_procs, n_frames, cfg.trace_mode);

        // Distinct states of the run: a dynamic run needs one chunk plan
        // per (task, state) the track visits.
        match &cfg.state_track {
            Some(track) => {
                for &(_, s) in track.changes() {
                    if !self.states.contains(&s) {
                        self.states.push(s);
                    }
                }
            }
            None => self.states.push(cfg.state),
        }
        for (tid, decomp) in &cfg.decomposition {
            let task = graph.task(*tid);
            let dp = task
                .dp
                .as_ref()
                .unwrap_or_else(|| panic!("task {} is not data parallel", task.name));
            for st in &self.states {
                let plan = dp.plan(task.cost.eval(st), *decomp, st);
                let slots = &mut self.plans[tid.0];
                match slots.iter_mut().find(|e| e.0 == st.n_models) {
                    Some(e) => e.1 = plan,
                    None => slots.push((st.n_models, plan)),
                }
            }
        }

        let mut sim = Sim {
            graph,
            cfg,
            now: Micros::ZERO,
            eseq: 0,
            next_id: 0,
            next_seq: 0,
            makespan: Micros::ZERO,
            a: self,
        };
        for f in 0..n_frames {
            let t = cfg.clock.arrival(f);
            sim.push_event(t, Event::Digitize(f));
        }
        sim.run();
        let makespan = sim.makespan;

        self.frames.clear();
        for f in 0..n_frames {
            self.frames.push(FrameRecord {
                frame: f,
                digitized_at: self.digitized[f as usize].unwrap_or(Micros::ZERO),
                completed_at: self.completed[f as usize],
            });
        }
        self.trace.seal();
        let metrics = Metrics::from_records_in(&mut self.scratch, &self.frames, cfg.warmup_frames);
        SimSummary { metrics, makespan }
    }

    /// Per-frame lifecycle records of the most recent run.
    #[must_use]
    pub fn frames(&self) -> &[FrameRecord] {
        &self.frames
    }

    /// The trace of the most recent run (contents per its [`TraceMode`]).
    #[must_use]
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Convert the arena's last run into an owned [`SimOutcome`], consuming
    /// the arena (moves the trace and frame buffers out instead of cloning).
    #[must_use]
    pub fn into_outcome(self, summary: SimSummary) -> SimOutcome {
        SimOutcome {
            trace: self.trace,
            frames: self.frames,
            metrics: summary.metrics,
            makespan: summary.makespan,
        }
    }

    fn reset(&mut self, graph: &TaskGraph, n_procs: u32, n_frames: u64, mode: TraceMode) {
        let n_tasks = graph.n_tasks();
        let n_chans = graph.channels().len();
        self.events.clear();
        reset_queues(&mut self.task_fifo, n_tasks);
        self.pool.clear();
        refill_none(&mut self.owner, n_tasks);
        self.skip_scratch.clear();
        refill_none(&mut self.busy, n_tasks);
        refill_none(&mut self.running, n_procs as usize);
        self.free_procs.clear();
        self.free_procs.extend((0..n_procs).rev());
        self.occupancy.clear();
        self.occupancy.resize(n_chans, 0);
        reset_slots(&mut self.remaining_consumers, n_chans);
        reset_slots(&mut self.missing_inputs, n_tasks);
        reset_slots(&mut self.chunks_left, n_tasks);
        reset_slots(&mut self.plans, n_tasks);
        self.states.clear();
        self.sources.clear();
        self.sources.extend(graph.sources());
        refill_none(&mut self.digitized, n_frames as usize);
        refill_none(&mut self.completed, n_frames as usize);
        self.tasks_done.clear();
        self.tasks_done.resize(n_frames as usize, 0);
        self.trace.reset(n_procs, mode);
    }
}

struct Sim<'a> {
    graph: &'a TaskGraph,
    cfg: &'a OnlineConfig,
    now: Micros,
    eseq: u64,
    next_id: u64,
    next_seq: u64,
    /// Latest slice end observed (tracked directly so `TraceMode::Off` runs
    /// still report a makespan).
    makespan: Micros,
    a: &'a mut SimArena,
}

/// Run the online scheduler on `graph` over `cluster`.
///
/// Equivalent to [`SimArena::simulate`] on a fresh arena — this is the
/// reference (oracle) path sweeps are checked against.
///
/// Panics if the configuration can deadlock (a diagnostic is printed with
/// the stuck queue) — with a validated DAG and capacity ≥ 1 this does not
/// happen.
#[must_use]
pub fn simulate_online(graph: &TaskGraph, cluster: &ClusterSpec, cfg: OnlineConfig) -> SimOutcome {
    let mut arena = SimArena::new();
    let summary = arena.simulate(graph, cluster, &cfg);
    arena.into_outcome(summary)
}

impl Sim<'_> {
    fn push_event(&mut self, t: Micros, e: Event) {
        self.a.events.push(Reverse((t, self.eseq, e)));
        self.eseq += 1;
    }

    /// The application state in force for `frame`.
    fn state_of(&self, frame: u64) -> AppState {
        match &self.cfg.state_track {
            Some(track) => track.state_at(frame),
            None => self.cfg.state,
        }
    }

    fn plan_of(&self, task: usize, frame: u64) -> Option<&ChunkPlan> {
        let n_models = self.state_of(frame).n_models;
        self.a.plans[task]
            .iter()
            .find(|e| e.0 == n_models)
            .map(|e| &e.1)
    }

    fn spawn(&mut self, kind: JobKind, frame: u64, cost: Micros) {
        let job = Job {
            id: self.next_id,
            seq: self.next_seq,
            kind,
            frame,
            remaining: cost,
            reserved: false,
        };
        self.next_id += 1;
        self.next_seq += 1;
        match kind {
            JobKind::Serial(t) | JobKind::Split(t) => self.a.task_fifo[t.0].push_back(job),
            JobKind::Chunk(..) | JobKind::Join(_) => self.a.pool.push_back(job),
        }
    }

    /// Spawn the activation of `task` for `frame`: a serial job, or the
    /// split phase of a data-parallel activation.
    fn spawn_activation(&mut self, task: TaskId, frame: u64) {
        match self.plan_of(task.0, frame) {
            Some(plan) if plan.chunks > 1 => {
                let split = plan.split_cost;
                self.spawn(JobKind::Split(task), frame, split);
            }
            _ => {
                let cost = self.graph.task(task).cost.eval(&self.state_of(frame));
                self.spawn(JobKind::Serial(task), frame, cost);
            }
        }
    }

    fn outputs_have_space(&self, task: TaskId) -> bool {
        self.graph
            .task(task)
            .outputs
            .iter()
            .all(|c| self.a.occupancy[c.0] < self.cfg.channel_capacity)
    }

    /// Assign eligible jobs to free processors, FIFO by seq.
    ///
    /// The eligible set decomposes per queue, so each assignment scans one
    /// candidate per task plus the pool head — not every queued job:
    ///
    /// * a preempted thread **owner** is its task's only schedulable job
    ///   (thread held, output slots already reserved);
    /// * otherwise a task's seq-sorted FIFO contributes its first job that
    ///   passes the output-space check (`Split` phases bypass it, so they
    ///   can overtake a space-blocked `Serial` head — exactly as in a flat
    ///   scan);
    /// * the chunk/join **pool** contributes its first eligible job.
    ///
    /// The overall pick is the minimum-seq candidate, identical to the
    /// historical full scan for the oldest eligible job because within one
    /// queue eligibility is uniform and seqs are sorted.
    fn dispatch(&mut self) {
        enum Pick {
            Owner(usize),
            Fifo(usize, usize),
            Pool(usize),
        }
        loop {
            if self.a.free_procs.is_empty() {
                return;
            }
            let graph = self.graph;
            let mut best_seq = u64::MAX;
            let mut best: Option<Pick> = None;
            for t in 0..graph.n_tasks() {
                if let Some(owner) = &self.a.owner[t] {
                    if owner.seq < best_seq {
                        best_seq = owner.seq;
                        best = Some(Pick::Owner(t));
                    }
                } else if self.a.busy[t].is_none() && !self.a.task_fifo[t].is_empty() {
                    let space = self.outputs_have_space(TaskId(t));
                    for (i, job) in self.a.task_fifo[t].iter().enumerate() {
                        if space || matches!(job.kind, JobKind::Split(_)) {
                            if job.seq < best_seq {
                                best_seq = job.seq;
                                best = Some(Pick::Fifo(t, i));
                            }
                            break;
                        }
                    }
                }
            }
            for (i, job) in self.a.pool.iter().enumerate() {
                let ok = match job.kind {
                    JobKind::Chunk(..) => true,
                    JobKind::Join(t) => job.reserved || self.outputs_have_space(t),
                    JobKind::Serial(_) | JobKind::Split(_) => {
                        unreachable!("pool holds chunks and joins")
                    }
                };
                if ok {
                    if job.seq < best_seq {
                        best = Some(Pick::Pool(i));
                    }
                    break;
                }
            }

            let mut job = match best {
                None => return,
                Some(Pick::Owner(t)) => self.a.owner[t].take().expect("owner present"),
                Some(Pick::Pool(i)) => self.a.pool.remove(i).expect("pool candidate"),
                Some(Pick::Fifo(t, i)) => {
                    // NewestUnseen-style consumption: when the selected job
                    // is the start of an activation with inputs, jump to the
                    // newest queued frame of the same task and skip (consume
                    // without processing) everything older — the activation
                    // job only exists once all of its inputs are present, so
                    // the skipped inputs are consumable.
                    if self.cfg.skip_stale && !graph.task(TaskId(t)).inputs.is_empty() {
                        let fifo = &mut self.a.task_fifo[t];
                        let newest = fifo.iter().map(|j| j.frame).max().expect("fifo non-empty");
                        let mut skipped = std::mem::take(&mut self.a.skip_scratch);
                        let mut newest_job = None;
                        while let Some(j) = fifo.pop_front() {
                            if j.frame == newest {
                                newest_job = Some(j);
                            } else {
                                skipped.push(j.frame);
                            }
                        }
                        for &f in &skipped {
                            self.consume_inputs(TaskId(t), f);
                        }
                        skipped.clear();
                        self.a.skip_scratch = skipped;
                        newest_job.expect("newest job was queued")
                    } else {
                        self.a.task_fifo[t].remove(i).expect("fifo candidate")
                    }
                }
            };
            let proc = self.a.free_procs.pop().expect("checked non-empty");

            // Acquire the task thread / reserve output slots on first slice.
            match job.kind {
                JobKind::Serial(t) | JobKind::Split(t) => {
                    self.a.busy[t.0] = Some(job.id);
                }
                _ => {}
            }
            if matches!(job.kind, JobKind::Serial(_) | JobKind::Join(_)) && !job.reserved {
                let t = job.kind.task();
                let graph = self.graph;
                for c in &graph.task(t).outputs {
                    self.a.occupancy[c.0] += 1;
                }
                job.reserved = true;
            }

            let slice = match self.cfg.quantum {
                Some(q) => q.min(job.remaining),
                None => job.remaining,
            };
            let end = self.now + slice;
            self.push_event(end, Event::Finish(proc));
            self.a.running[proc as usize] = Some(Running {
                job,
                slice_start: self.now,
                slice,
            });
        }
    }

    fn run(&mut self) {
        while let Some(Reverse((t, _, event))) = self.a.events.pop() {
            self.now = t;
            match event {
                Event::Digitize(frame) => {
                    for i in 0..self.a.sources.len() {
                        let s = self.a.sources[i];
                        self.spawn_activation(s, frame);
                    }
                }
                Event::Finish(proc) => self.finish(proc),
            }
            self.dispatch();
        }
        let queued: Vec<(JobKind, u64)> = self
            .a
            .task_fifo
            .iter()
            .flatten()
            .chain(self.a.pool.iter())
            .chain(self.a.owner.iter().flatten())
            .map(|j| (j.kind, j.frame))
            .collect();
        assert!(
            queued.is_empty() && self.a.running.iter().all(Option::is_none),
            "online simulation deadlocked at {} with {} queued jobs: {:?}",
            self.now,
            queued.len(),
            queued
        );
    }

    fn finish(&mut self, proc: u32) {
        let Running {
            mut job,
            slice_start,
            slice,
        } = self.a.running[proc as usize]
            .take()
            .expect("proc was running");
        self.a.free_procs.push(proc);
        self.makespan = self.makespan.max(self.now);

        let chunk = match job.kind {
            JobKind::Chunk(_, i, n) => Some((i, n)),
            _ => None,
        };
        self.a.trace.push(TraceEntry {
            proc: ProcId(proc),
            task: job.kind.task(),
            frame: job.frame,
            chunk,
            start: slice_start,
            end: self.now,
        });

        job.remaining = job.remaining.saturating_sub(slice);
        if job.remaining > Micros::ZERO {
            // Preempted: requeue at the back (fresh seq keeps every queue
            // seq-sorted). A Serial/Split keeps its task thread, so it goes
            // to the owner slot; chunks and joins rejoin the pool.
            job.seq = self.next_seq;
            self.next_seq += 1;
            match job.kind {
                JobKind::Serial(t) | JobKind::Split(t) => {
                    self.a.owner[t.0] = Some(job);
                }
                JobKind::Chunk(..) | JobKind::Join(_) => self.a.pool.push_back(job),
            }
            return;
        }

        let frame = job.frame;
        match job.kind {
            JobKind::Serial(t) => {
                self.a.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
            JobKind::Split(t) => {
                // Thread blocks awaiting the joiner; chunks go to the pool.
                let plan = *self.plan_of(t.0, frame).expect("split implies plan");
                slot_insert(&mut self.a.chunks_left[t.0], frame, plan.chunks);
                for i in 0..plan.chunks {
                    self.spawn(JobKind::Chunk(t, i, plan.chunks), frame, plan.chunk_cost);
                }
            }
            JobKind::Chunk(t, _, _) => {
                let left = slot_dec(&mut self.a.chunks_left[t.0], frame, "chunk accounting");
                if left == 0 {
                    let join = self
                        .plan_of(t.0, frame)
                        .expect("chunk implies plan")
                        .join_cost;
                    self.spawn(JobKind::Join(t), frame, join);
                }
            }
            JobKind::Join(t) => {
                self.a.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
        }
    }

    /// Release this task's claim on its inputs for `frame` (processing done
    /// or frame skipped): the GC obligation of STM's `consume`.
    fn consume_inputs(&mut self, t: TaskId, frame: u64) {
        let graph = self.graph;
        for &c in &graph.task(t).inputs {
            let left = slot_dec(
                &mut self.a.remaining_consumers[c.0],
                frame,
                "input was present",
            );
            if left == 0 {
                self.a.occupancy[c.0] -= 1;
            }
        }
    }

    /// A logical task activation finished: publish outputs, consume inputs,
    /// track frame progress.
    fn complete_activation(&mut self, t: TaskId, frame: u64) {
        let graph = self.graph;
        let task = graph.task(t);
        // Publish outputs (slots were reserved at start).
        for &c in &task.outputs {
            let consumers = &graph.channel(c).consumers;
            slot_insert(
                &mut self.a.remaining_consumers[c.0],
                frame,
                consumers.len() as u32,
            );
            for &cons in consumers {
                let missing = slot_dec_or_init(
                    &mut self.a.missing_inputs[cons.0],
                    frame,
                    graph.task(cons).inputs.len() as u32,
                );
                if missing == 0 {
                    self.spawn_activation(cons, frame);
                }
            }
        }
        // Consume inputs.
        self.consume_inputs(t, frame);
        // Track the digitizer and per-frame completion.
        if task.inputs.is_empty() {
            self.a.digitized[frame as usize] = Some(self.now);
        }
        let done = &mut self.a.tasks_done[frame as usize];
        *done += 1;
        if *done as usize == graph.n_tasks() {
            self.a.completed[frame as usize] = Some(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn tracker_cfg(period_ms: u64, frames: u64, n_models: u32) -> OnlineConfig {
        OnlineConfig::new(
            FrameClock::new(Micros::from_millis(period_ms), frames),
            AppState::new(n_models),
        )
    }

    #[test]
    fn every_frame_completes() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(2000, 10, 2));
        assert_eq!(out.frames.len(), 10);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        assert!(out.trace.find_overlap().is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let a = simulate_online(&g, &c, tracker_cfg(500, 12, 3));
        let b = simulate_online(&g, &c, tracker_cfg(500, 12, 3));
        assert_eq!(a.trace.entries(), b.trace.entries());
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_runs() {
        // One arena reused across heterogeneous runs (different graphs,
        // processor counts, frame counts, quanta, skip modes) must
        // reproduce every fresh-arena run exactly.
        let tracker = builders::color_tracker();
        let pipe = builders::pipeline(&[100, 200, 300]);
        let c4 = ClusterSpec::single_node(4);
        let c2 = ClusterSpec::single_node(2);
        let mut quantum_cfg = tracker_cfg(500, 5, 4);
        quantum_cfg.quantum = Some(Micros::from_millis(100));
        let mut skip_cfg = tracker_cfg(33, 30, 8);
        skip_cfg.skip_stale = true;
        skip_cfg.channel_capacity = 16;
        let mut dp_cfg = tracker_cfg(33, 20, 8);
        dp_cfg.decomposition.insert(
            tracker.task_by_name("Target Detection").unwrap(),
            Decomposition::new(1, 8),
        );
        let pipe_cfg = OnlineConfig::new(FrameClock::new(Micros(300), 20), AppState::new(1));

        let runs: Vec<(&TaskGraph, &ClusterSpec, OnlineConfig)> = vec![
            (&tracker, &c4, tracker_cfg(2000, 10, 2)),
            (&pipe, &c2, pipe_cfg),
            (&tracker, &c2, quantum_cfg),
            (&tracker, &c4, skip_cfg),
            (&tracker, &c4, dp_cfg),
            (&tracker, &c4, tracker_cfg(33, 25, 8)),
        ];
        let mut arena = SimArena::new();
        for (g, c, cfg) in runs {
            let fresh = simulate_online(g, c, cfg.clone());
            let reused = arena.simulate(g, c, &cfg);
            assert_eq!(fresh.metrics, reused.metrics);
            assert_eq!(fresh.makespan, reused.makespan);
            assert_eq!(fresh.frames, arena.frames());
            assert_eq!(fresh.trace.entries(), arena.trace().entries());
        }
    }

    #[test]
    fn trace_modes_agree_on_everything_but_storage() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut arena = SimArena::new();
        let mut cfg = tracker_cfg(33, 25, 8);
        cfg.quantum = Some(Micros::from_millis(50));

        cfg.trace_mode = TraceMode::Full;
        let full = arena.simulate(&g, &c, &cfg);
        let full_slices = arena.trace().recorded_slices();
        let full_util = arena.trace().utilization();
        assert!(arena.trace().is_complete());
        assert!(full_slices > 0);

        cfg.trace_mode = TraceMode::Summary;
        let summary = arena.simulate(&g, &c, &cfg);
        assert_eq!(summary.metrics, full.metrics);
        assert_eq!(summary.makespan, full.makespan);
        assert_eq!(arena.trace().recorded_slices(), full_slices);
        assert!((arena.trace().utilization() - full_util).abs() < 1e-12);
        assert!(arena.trace().entries().is_empty());

        cfg.trace_mode = TraceMode::Ring(16);
        let ring = arena.simulate(&g, &c, &cfg);
        assert_eq!(ring.metrics, full.metrics);
        assert_eq!(arena.trace().entries().len(), 16);
        assert_eq!(arena.trace().recorded_slices(), full_slices);
        // The ring window is the tail of the execution, in order.
        assert!(arena
            .trace()
            .entries()
            .windows(2)
            .all(|w| w[0].start <= w[1].start));

        cfg.trace_mode = TraceMode::Off;
        let off = arena.simulate(&g, &c, &cfg);
        assert_eq!(off.metrics, full.metrics);
        assert_eq!(off.makespan, full.makespan, "makespan survives Off mode");
        assert_eq!(arena.trace().recorded_slices(), 0);
        assert!(arena.trace().entries().is_empty());
    }

    #[test]
    fn slow_period_gives_unloaded_latency() {
        // With a very slow digitizer the system is idle between frames, so
        // latency is just the serial critical path through the graph.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(20_000, 6, 1));
        // Serial work after the digitizer ≈ 80+60+876+40+2 ms plus waits.
        let lat = out.metrics.mean_latency.as_secs_f64();
        assert!(lat > 0.8 && lat < 1.4, "latency {lat}");
    }

    #[test]
    fn saturation_raises_latency_and_throughput() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let fast = simulate_online(&g, &c, tracker_cfg(33, 30, 8));
        let slow = simulate_online(&g, &c, tracker_cfg(9_000, 30, 8));
        assert!(
            fast.metrics.mean_latency > slow.metrics.mean_latency,
            "saturated latency {} must exceed unloaded latency {}",
            fast.metrics.mean_latency,
            slow.metrics.mean_latency
        );
        assert!(
            fast.metrics.throughput_hz > slow.metrics.throughput_hz,
            "saturated throughput {} must exceed unloaded {}",
            fast.metrics.throughput_hz,
            slow.metrics.throughput_hz
        );
    }

    #[test]
    fn capacity_bounds_latency_plateau() {
        // Under saturation, latency scales with channel capacity: the
        // backlog a frame sits behind is capacity-bounded.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut small = tracker_cfg(33, 25, 8);
        small.channel_capacity = 2;
        let mut big = tracker_cfg(33, 25, 8);
        big.channel_capacity = 8;
        let s = simulate_online(&g, &c, small);
        let b = simulate_online(&g, &c, big);
        assert!(b.metrics.mean_latency > s.metrics.mean_latency);
    }

    #[test]
    fn decomposition_reduces_saturated_latency() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t4 = g.task_by_name("Target Detection").unwrap();
        let serial = tracker_cfg(33, 20, 8);
        let mut dp = tracker_cfg(33, 20, 8);
        dp.decomposition.insert(t4, Decomposition::new(1, 8));
        let a = simulate_online(&g, &c, serial);
        let b = simulate_online(&g, &c, dp);
        assert!(
            b.metrics.mean_latency < a.metrics.mean_latency,
            "MP=8 {} must beat serial {} at 8 models",
            b.metrics.mean_latency,
            a.metrics.mean_latency
        );
    }

    #[test]
    fn quantum_preemption_slices_work() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let mut cfg = tracker_cfg(500, 5, 4);
        cfg.quantum = Some(Micros::from_millis(100));
        let out = simulate_online(&g, &c, cfg);
        // T4 at 4 models ≈ 3.4 s; with a 100 ms quantum it must appear as
        // many slices.
        let t4 = g.task_by_name("Target Detection").unwrap();
        let slices = out.trace.task_slices(t4);
        assert!(slices.len() > 5 * 10, "got {} slices", slices.len());
        assert!(slices
            .iter()
            .all(|s| s.duration() <= Micros::from_millis(100)));
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
    }

    #[test]
    fn single_processor_still_completes() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(1);
        let out = simulate_online(&g, &c, tracker_cfg(100, 8, 2));
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        assert!(out.trace.find_overlap().is_none());
    }

    #[test]
    fn pipeline_graph_runs() {
        let g = builders::pipeline(&[100, 200, 300]);
        let c = ClusterSpec::single_node(3);
        let cfg = OnlineConfig::new(FrameClock::new(Micros(300), 20), AppState::new(1));
        let out = simulate_online(&g, &c, cfg);
        assert_eq!(out.metrics.frames_dropped, 0);
        // Steady state: stage2 (300us) is the bottleneck → throughput ≈ 1/300us.
        assert!(out.metrics.throughput_hz > 2500.0);
    }

    #[test]
    fn trace_conservation_every_task_every_frame() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(1000, 6, 2));
        for f in 0..6u64 {
            for t in g.task_ids() {
                let ran = out
                    .trace
                    .entries()
                    .iter()
                    .any(|e| e.task == t && e.frame == f);
                assert!(ran, "task {t} frame {f} never ran");
            }
        }
    }

    #[test]
    fn skip_stale_bounds_latency_but_drops_frames() {
        // Saturated 8-model run: without skipping the backlog inflates
        // latency; with NewestUnseen-style skipping latency stays near the
        // unloaded value and the drop count absorbs the overload.
        // Generous buffering (16 items) so the backlog materializes instead
        // of blocking the digitizer — the regime where skipping matters.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut keep = tracker_cfg(33, 30, 8);
        keep.channel_capacity = 16;
        let mut skip = tracker_cfg(33, 30, 8);
        skip.channel_capacity = 16;
        skip.skip_stale = true;
        let a = simulate_online(&g, &c, keep);
        let b = simulate_online(&g, &c, skip);
        assert_eq!(a.metrics.frames_dropped, 0);
        assert!(
            b.metrics.frames_dropped > 10,
            "overload must drop frames, got {}",
            b.metrics.frames_dropped
        );
        assert!(
            b.metrics.mean_latency < a.metrics.mean_latency / 2,
            "skip {} vs keep {}",
            b.metrics.mean_latency,
            a.metrics.mean_latency
        );
        assert!(b.trace.find_overlap().is_none());
    }

    #[test]
    fn skip_stale_is_harmless_when_unloaded() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut cfg = tracker_cfg(10_000, 8, 2);
        cfg.skip_stale = true;
        let out = simulate_online(&g, &c, cfg);
        assert_eq!(out.metrics.frames_dropped, 0);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
    }

    #[test]
    fn skipped_frames_do_not_leak_channel_slots() {
        // After a skip-heavy run, the system still drains completely (the
        // deadlock assertion inside run() would fire otherwise), and late
        // frames complete — proof that skipped inputs were consumed.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let mut cfg = tracker_cfg(33, 40, 8);
        cfg.skip_stale = true;
        cfg.channel_capacity = 2;
        let out = simulate_online(&g, &c, cfg);
        let last_completed = out
            .frames
            .iter()
            .filter(|f| f.completed_at.is_some())
            .map(|f| f.frame)
            .max()
            .unwrap();
        assert!(last_completed >= 35, "late frames must still complete");
    }

    #[test]
    fn dynamic_state_track_changes_costs_mid_run() {
        // 1 model for frames 0..5, 8 models afterwards: later frames must
        // take much longer end to end.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut cfg = tracker_cfg(9_000, 10, 1);
        cfg.state_track = Some(crate::workload::StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (5, AppState::new(8)),
        ]));
        let out = simulate_online(&g, &c, cfg);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        let lat = |f: usize| out.frames[f].latency().unwrap();
        assert!(
            lat(7) > lat(2) * 3,
            "heavy regime {} vs light regime {}",
            lat(7),
            lat(2)
        );
    }

    #[test]
    fn dynamic_track_with_decomposition_replans_per_state() {
        // MP=8 decomposition: at 1 model it collapses to a serial plan, at
        // 8 models it runs 8 chunks — the run must handle both.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t4 = g.task_by_name("Target Detection").unwrap();
        let mut cfg = tracker_cfg(9_000, 8, 1);
        cfg.decomposition.insert(t4, Decomposition::new(1, 8));
        cfg.state_track = Some(crate::workload::StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (4, AppState::new(8)),
        ]));
        let out = simulate_online(&g, &c, cfg);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        // Early frames: serial T4 (no chunk entries); late frames: chunks.
        let chunks_for = |frame: u64| {
            out.trace
                .entries()
                .iter()
                .filter(|e| e.frame == frame && e.chunk.is_some())
                .count()
        };
        assert_eq!(chunks_for(1), 0, "1 model clamps MP=8 to serial");
        assert_eq!(chunks_for(6), 8, "8 models run 8 chunks");
    }

    #[test]
    #[should_panic(expected = "not data parallel")]
    fn decomposing_serial_task_panics() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t2 = g.task_by_name("Histogram").unwrap();
        let mut cfg = tracker_cfg(100, 2, 1);
        cfg.decomposition.insert(t2, Decomposition::new(2, 1));
        let _ = simulate_online(&g, &c, cfg);
    }
}
