//! A *general on-line scheduler* simulator: the paper's pthread baseline.
//!
//! The policy is deliberately dependence-blind (§3.2): it keeps a FIFO ready
//! queue of runnable jobs and assigns the oldest eligible job to any free
//! processor, optionally preempting at a fixed quantum. It "not only knows
//! nothing about the specific application but also has no understanding of
//! the application class". The simulated pathologies match the paper's list:
//!
//! * it "focuses more on throughput" — any runnable upstream work is taken
//!   eagerly, so early tasks produce bursts of items while later, slower
//!   tasks fall behind (the T3/T4 phenomenon of Fig. 4(a));
//! * with a quantum it will "schedule a thread for enough time to generate
//!   two and a half items", leaving partially processed items;
//! * it assumes "a thread can only be scheduled on one processor at a time",
//!   so a task's activations for successive frames serialize even when
//!   processors idle.
//!
//! Flow control is the only STM mechanism retained: channels hold at most
//! `channel_capacity` live items and the digitizer blocks when its output is
//! full, which is what makes latency *plateau* (rather than diverge) when
//! the digitizer period saturates the system — the upper branch of the
//! paper's Fig. 3 tuning curve.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

use taskgraph::{AppState, ChunkPlan, Decomposition, Micros, TaskGraph, TaskId};

use crate::metrics::{FrameRecord, Metrics};
use crate::spec::{ClusterSpec, ProcId};
use crate::trace::{ExecutionTrace, TraceEntry};
use crate::workload::{FrameClock, StateTrack};

/// Configuration of one online-scheduler run.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Frame arrival clock (digitizer period × frame count).
    pub clock: FrameClock,
    /// The (static) application state used to evaluate task costs. Ignored
    /// when `state_track` is set.
    pub state: AppState,
    /// Per-frame application state (a dynamic environment): task costs and
    /// chunk plans follow the state in force when each frame was digitized.
    pub state_track: Option<StateTrack>,
    /// Maximum live items per channel (flow control). Must be ≥ 1.
    pub channel_capacity: usize,
    /// Preemption quantum; `None` runs every job slice to completion.
    pub quantum: Option<Micros>,
    /// Fixed data decomposition per data-parallel task. Tasks absent from
    /// the map run serially (FP=1, MP=1).
    pub decomposition: BTreeMap<TaskId, Decomposition>,
    /// Completed frames excluded from metrics (pipeline fill).
    pub warmup_frames: usize,
    /// When true, a backlogged task jumps to its newest ready frame and
    /// *skips* the older ones (the STM `NewestUnseen` consumption style).
    /// This keeps latency bounded under overload at the price of dropped
    /// frames — the paper's uniformity pathology: a non-uniform execution
    /// "might process three frames in a row and then skip the next hundred".
    pub skip_stale: bool,
}

impl OnlineConfig {
    /// A run with sensible defaults: capacity 4, no preemption, serial
    /// tasks, no frame skipping.
    #[must_use]
    pub fn new(clock: FrameClock, state: AppState) -> Self {
        OnlineConfig {
            clock,
            state,
            state_track: None,
            channel_capacity: 4,
            quantum: None,
            decomposition: BTreeMap::new(),
            warmup_frames: 2,
            skip_stale: false,
        }
    }
}

/// The result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// Every processor slice executed.
    pub trace: ExecutionTrace,
    /// Per-frame lifecycle records.
    pub frames: Vec<FrameRecord>,
    /// Aggregate metrics (warmup excluded).
    pub metrics: Metrics,
    /// Total simulated duration.
    pub makespan: Micros,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobKind {
    /// A whole serial activation of a task.
    Serial(TaskId),
    /// The splitter phase of a data-parallel activation.
    Split(TaskId),
    /// One chunk (index, count) of a data-parallel activation.
    Chunk(TaskId, u32, u32),
    /// The joiner phase of a data-parallel activation.
    Join(TaskId),
}

impl JobKind {
    fn task(self) -> TaskId {
        match self {
            JobKind::Serial(t) | JobKind::Split(t) | JobKind::Chunk(t, _, _) | JobKind::Join(t) => {
                t
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Job {
    /// Stable identity across preemptions.
    id: u64,
    /// FIFO position (refreshed on requeue, so preempted jobs go to the
    /// back — the round-robin behaviour of a time-sliced scheduler).
    seq: u64,
    kind: JobKind,
    frame: u64,
    remaining: Micros,
    /// Whether output-channel slots have been reserved for this activation.
    reserved: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    Finish(u32),
    Digitize(u64),
}

struct Running {
    job: Job,
    slice_start: Micros,
    slice: Micros,
}

struct Sim<'g> {
    graph: &'g TaskGraph,
    cfg: OnlineConfig,
    now: Micros,
    events: BinaryHeap<Reverse<(Micros, u64, Event)>>,
    eseq: u64,
    ready: Vec<Job>,
    next_id: u64,
    next_seq: u64,
    /// Per-task thread occupancy: the id of the job holding the thread.
    busy: Vec<Option<u64>>,
    running: HashMap<u32, Running>,
    free_procs: Vec<u32>,
    /// Live (reserved or present) items per channel.
    occupancy: Vec<usize>,
    /// Consumers still owing a consume for (channel, frame).
    remaining_consumers: HashMap<(usize, u64), usize>,
    /// Inputs not yet present for (task, frame).
    missing_inputs: HashMap<(usize, u64), usize>,
    /// Chunks still running for a DP activation (task, frame).
    chunks_left: HashMap<(usize, u64), u32>,
    /// Chunk plans for DP tasks, keyed by (task, n_models of the frame's
    /// state) — a dynamic environment changes the plan between frames.
    plans: HashMap<(usize, u32), ChunkPlan>,
    digitized: Vec<Option<Micros>>,
    completed: Vec<Option<Micros>>,
    tasks_done: HashMap<u64, usize>,
    trace: ExecutionTrace,
}

/// Run the online scheduler on `graph` over `cluster`.
///
/// Panics if the configuration can deadlock (a diagnostic is printed with
/// the stuck queue) — with a validated DAG and capacity ≥ 1 this does not
/// happen.
#[must_use]
pub fn simulate_online(graph: &TaskGraph, cluster: &ClusterSpec, cfg: OnlineConfig) -> SimOutcome {
    graph.validate().expect("graph must validate");
    assert!(cfg.channel_capacity >= 1, "capacity must be at least 1");
    let n_frames = cfg.clock.n_frames;
    let n_procs = cluster.n_procs();

    // Chunk plans per (task, state): a dynamic run needs one plan per
    // distinct state the track visits.
    let states: Vec<AppState> = match &cfg.state_track {
        Some(track) => track.distinct_states(),
        None => vec![cfg.state],
    };
    let mut plans = HashMap::new();
    for (tid, decomp) in &cfg.decomposition {
        let task = graph.task(*tid);
        let dp = task
            .dp
            .as_ref()
            .unwrap_or_else(|| panic!("task {} is not data parallel", task.name));
        for st in &states {
            let plan = dp.plan(task.cost.eval(st), *decomp, st);
            plans.insert((tid.0, st.n_models), plan);
        }
    }

    let mut sim = Sim {
        graph,

        now: Micros::ZERO,
        events: BinaryHeap::new(),
        eseq: 0,
        ready: Vec::new(),
        next_id: 0,
        next_seq: 0,
        busy: vec![None; graph.n_tasks()],
        running: HashMap::new(),
        free_procs: (0..n_procs).rev().collect(),
        occupancy: vec![0; graph.channels().len()],
        remaining_consumers: HashMap::new(),
        missing_inputs: HashMap::new(),
        chunks_left: HashMap::new(),
        plans,
        digitized: vec![None; n_frames as usize],
        completed: vec![None; n_frames as usize],
        tasks_done: HashMap::new(),
        trace: ExecutionTrace::new(n_procs),
        cfg,
    };

    for f in 0..n_frames {
        let t = sim.cfg.clock.arrival(f);
        sim.push_event(t, Event::Digitize(f));
    }

    sim.run();

    let frames: Vec<FrameRecord> = (0..n_frames)
        .map(|f| FrameRecord {
            frame: f,
            digitized_at: sim.digitized[f as usize].unwrap_or(Micros::ZERO),
            completed_at: sim.completed[f as usize],
        })
        .collect();
    let metrics = Metrics::from_records(&frames, sim.cfg.warmup_frames);
    let makespan = sim.trace.makespan();
    SimOutcome {
        trace: sim.trace,
        frames,
        metrics,
        makespan,
    }
}

impl<'g> Sim<'g> {
    fn push_event(&mut self, t: Micros, e: Event) {
        self.events.push(Reverse((t, self.eseq, e)));
        self.eseq += 1;
    }

    /// The application state in force for `frame`.
    fn state_of(&self, frame: u64) -> AppState {
        match &self.cfg.state_track {
            Some(track) => track.state_at(frame),
            None => self.cfg.state,
        }
    }

    fn plan_of(&self, task: usize, frame: u64) -> Option<&ChunkPlan> {
        self.plans.get(&(task, self.state_of(frame).n_models))
    }

    fn spawn(&mut self, kind: JobKind, frame: u64, cost: Micros) {
        let job = Job {
            id: self.next_id,
            seq: self.next_seq,
            kind,
            frame,
            remaining: cost,
            reserved: false,
        };
        self.next_id += 1;
        self.next_seq += 1;
        self.ready.push(job);
    }

    /// Spawn the activation of `task` for `frame`: a serial job, or the
    /// split phase of a data-parallel activation.
    fn spawn_activation(&mut self, task: TaskId, frame: u64) {
        match self.plan_of(task.0, frame) {
            Some(plan) if plan.chunks > 1 => {
                let split = plan.split_cost;
                self.spawn(JobKind::Split(task), frame, split);
            }
            _ => {
                let cost = self.graph.task(task).cost.eval(&self.state_of(frame));
                self.spawn(JobKind::Serial(task), frame, cost);
            }
        }
    }

    fn outputs_have_space(&self, task: TaskId) -> bool {
        self.graph
            .task(task)
            .outputs
            .iter()
            .all(|c| self.occupancy[c.0] < self.cfg.channel_capacity)
    }

    fn eligible(&self, job: &Job) -> bool {
        match job.kind {
            JobKind::Serial(t) | JobKind::Split(t) => {
                let thread_free = match self.busy[t.0] {
                    None => true,
                    Some(id) => id == job.id,
                };
                let space = job.reserved
                    || matches!(job.kind, JobKind::Split(_))
                    || self.outputs_have_space(t);
                thread_free && space
            }
            JobKind::Join(t) => job.reserved || self.outputs_have_space(t),
            JobKind::Chunk(..) => true,
        }
    }

    /// Assign eligible jobs to free processors, FIFO by seq.
    fn dispatch(&mut self) {
        loop {
            if self.free_procs.is_empty() {
                return;
            }
            // Oldest eligible job.
            let mut best: Option<usize> = None;
            for (i, job) in self.ready.iter().enumerate() {
                if self.eligible(job) && best.is_none_or(|b| self.ready[b].seq > job.seq) {
                    best = Some(i);
                }
            }
            let Some(mut i) = best else { return };

            // NewestUnseen-style consumption: when the selected job is the
            // start of an activation with inputs, jump to the newest ready
            // frame of the same task and skip (consume without processing)
            // everything older — the activation job only exists once all of
            // its inputs are present, so the skipped inputs are consumable.
            if self.cfg.skip_stale {
                let kind = self.ready[i].kind;
                if matches!(kind, JobKind::Serial(_) | JobKind::Split(_))
                    && !self.graph.task(kind.task()).inputs.is_empty()
                    && !self.ready[i].reserved
                    && self.busy[kind.task().0] != Some(self.ready[i].id)
                {
                    let t = kind.task();
                    let busy_id = self.busy[t.0];
                    let starts_activation = move |j: &Job| {
                        matches!(j.kind, JobKind::Serial(_) | JobKind::Split(_))
                            && j.kind.task() == t
                            && !j.reserved
                            && busy_id != Some(j.id)
                    };
                    let newest = self
                        .ready
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| starts_activation(j))
                        .max_by_key(|(_, j)| j.frame)
                        .map(|(idx, j)| (idx, j.frame))
                        .expect("selected job qualifies");
                    let skipped: Vec<u64> = self
                        .ready
                        .iter()
                        .filter(|j| starts_activation(j) && j.frame < newest.1)
                        .map(|j| j.frame)
                        .collect();
                    self.ready
                        .retain(|j| !(starts_activation(j) && j.frame < newest.1));
                    for f in skipped {
                        self.consume_inputs(t, f);
                    }
                    // Indices shifted; find the newest job again.
                    i = self
                        .ready
                        .iter()
                        .position(|j| starts_activation(j) && j.frame == newest.1)
                        .expect("newest job still queued");
                }
            }

            let mut job = self.ready.swap_remove(i);
            let proc = self.free_procs.pop().expect("checked non-empty");

            // Acquire the task thread / reserve output slots on first slice.
            match job.kind {
                JobKind::Serial(t) | JobKind::Split(t) => {
                    self.busy[t.0] = Some(job.id);
                }
                _ => {}
            }
            if matches!(job.kind, JobKind::Serial(_) | JobKind::Join(_)) && !job.reserved {
                let t = job.kind.task();
                for c in &self.graph.task(t).outputs {
                    self.occupancy[c.0] += 1;
                }
                job.reserved = true;
            }

            let slice = match self.cfg.quantum {
                Some(q) => q.min(job.remaining),
                None => job.remaining,
            };
            let end = self.now + slice;
            self.push_event(end, Event::Finish(proc));
            self.running.insert(
                proc,
                Running {
                    job,
                    slice_start: self.now,
                    slice,
                },
            );
        }
    }

    fn run(&mut self) {
        while let Some(Reverse((t, _, event))) = self.events.pop() {
            self.now = t;
            match event {
                Event::Digitize(frame) => {
                    let sources = self.graph.sources();
                    for s in sources {
                        self.spawn_activation(s, frame);
                    }
                }
                Event::Finish(proc) => self.finish(proc),
            }
            self.dispatch();
        }
        assert!(
            self.ready.is_empty() && self.running.is_empty(),
            "online simulation deadlocked at {} with {} queued jobs: {:?}",
            self.now,
            self.ready.len(),
            self.ready
                .iter()
                .map(|j| (j.kind, j.frame))
                .collect::<Vec<_>>()
        );
    }

    fn finish(&mut self, proc: u32) {
        let Running {
            mut job,
            slice_start,
            slice,
        } = self.running.remove(&proc).expect("proc was running");
        self.free_procs.push(proc);

        let chunk = match job.kind {
            JobKind::Chunk(_, i, n) => Some((i, n)),
            _ => None,
        };
        self.trace.push(TraceEntry {
            proc: ProcId(proc),
            task: job.kind.task(),
            frame: job.frame,
            chunk,
            start: slice_start,
            end: self.now,
        });

        job.remaining = job.remaining.saturating_sub(slice);
        if job.remaining > Micros::ZERO {
            // Preempted: thread stays owned by this job; requeue at the back.
            job.seq = self.next_seq;
            self.next_seq += 1;
            self.ready.push(job);
            return;
        }

        let frame = job.frame;
        match job.kind {
            JobKind::Serial(t) => {
                self.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
            JobKind::Split(t) => {
                // Thread blocks awaiting the joiner; chunks go to the pool.
                let plan = *self.plan_of(t.0, frame).expect("split implies plan");
                self.chunks_left.insert((t.0, frame), plan.chunks);
                for i in 0..plan.chunks {
                    self.spawn(JobKind::Chunk(t, i, plan.chunks), frame, plan.chunk_cost);
                }
            }
            JobKind::Chunk(t, _, _) => {
                let left = self
                    .chunks_left
                    .get_mut(&(t.0, frame))
                    .expect("chunk accounting");
                *left -= 1;
                if *left == 0 {
                    self.chunks_left.remove(&(t.0, frame));
                    let join = self
                        .plan_of(t.0, frame)
                        .expect("chunk implies plan")
                        .join_cost;
                    self.spawn(JobKind::Join(t), frame, join);
                }
            }
            JobKind::Join(t) => {
                self.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
        }
    }

    /// Release this task's claim on its inputs for `frame` (processing done
    /// or frame skipped): the GC obligation of STM's `consume`.
    fn consume_inputs(&mut self, t: TaskId, frame: u64) {
        for &c in &self.graph.task(t).inputs.clone() {
            let left = self
                .remaining_consumers
                .get_mut(&(c.0, frame))
                .expect("input was present");
            *left -= 1;
            if *left == 0 {
                self.remaining_consumers.remove(&(c.0, frame));
                self.occupancy[c.0] -= 1;
            }
        }
    }

    /// A logical task activation finished: publish outputs, consume inputs,
    /// track frame progress.
    fn complete_activation(&mut self, t: TaskId, frame: u64) {
        let task = self.graph.task(t);
        // Publish outputs (slots were reserved at start).
        for &c in &task.outputs.clone() {
            let consumers = self.graph.channel(c).consumers.clone();
            self.remaining_consumers
                .insert((c.0, frame), consumers.len());
            for cons in consumers {
                let missing = self
                    .missing_inputs
                    .entry((cons.0, frame))
                    .or_insert_with(|| self.graph.task(cons).inputs.len());
                *missing -= 1;
                if *missing == 0 {
                    self.missing_inputs.remove(&(cons.0, frame));
                    self.spawn_activation(cons, frame);
                }
            }
        }
        // Consume inputs.
        self.consume_inputs(t, frame);
        // Track the digitizer and per-frame completion.
        if task.inputs.is_empty() {
            self.digitized[frame as usize] = Some(self.now);
        }
        let done = self.tasks_done.entry(frame).or_insert(0);
        *done += 1;
        if *done == self.graph.n_tasks() {
            self.tasks_done.remove(&frame);
            self.completed[frame as usize] = Some(self.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn tracker_cfg(period_ms: u64, frames: u64, n_models: u32) -> OnlineConfig {
        OnlineConfig::new(
            FrameClock::new(Micros::from_millis(period_ms), frames),
            AppState::new(n_models),
        )
    }

    #[test]
    fn every_frame_completes() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(2000, 10, 2));
        assert_eq!(out.frames.len(), 10);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        assert!(out.trace.find_overlap().is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let a = simulate_online(&g, &c, tracker_cfg(500, 12, 3));
        let b = simulate_online(&g, &c, tracker_cfg(500, 12, 3));
        assert_eq!(a.trace.entries(), b.trace.entries());
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn slow_period_gives_unloaded_latency() {
        // With a very slow digitizer the system is idle between frames, so
        // latency is just the serial critical path through the graph.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(20_000, 6, 1));
        // Serial work after the digitizer ≈ 80+60+876+40+2 ms plus waits.
        let lat = out.metrics.mean_latency.as_secs_f64();
        assert!(lat > 0.8 && lat < 1.4, "latency {lat}");
    }

    #[test]
    fn saturation_raises_latency_and_throughput() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let fast = simulate_online(&g, &c, tracker_cfg(33, 30, 8));
        let slow = simulate_online(&g, &c, tracker_cfg(9_000, 30, 8));
        assert!(
            fast.metrics.mean_latency > slow.metrics.mean_latency,
            "saturated latency {} must exceed unloaded latency {}",
            fast.metrics.mean_latency,
            slow.metrics.mean_latency
        );
        assert!(
            fast.metrics.throughput_hz > slow.metrics.throughput_hz,
            "saturated throughput {} must exceed unloaded {}",
            fast.metrics.throughput_hz,
            slow.metrics.throughput_hz
        );
    }

    #[test]
    fn capacity_bounds_latency_plateau() {
        // Under saturation, latency scales with channel capacity: the
        // backlog a frame sits behind is capacity-bounded.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut small = tracker_cfg(33, 25, 8);
        small.channel_capacity = 2;
        let mut big = tracker_cfg(33, 25, 8);
        big.channel_capacity = 8;
        let s = simulate_online(&g, &c, small);
        let b = simulate_online(&g, &c, big);
        assert!(b.metrics.mean_latency > s.metrics.mean_latency);
    }

    #[test]
    fn decomposition_reduces_saturated_latency() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t4 = g.task_by_name("Target Detection").unwrap();
        let serial = tracker_cfg(33, 20, 8);
        let mut dp = tracker_cfg(33, 20, 8);
        dp.decomposition.insert(t4, Decomposition::new(1, 8));
        let a = simulate_online(&g, &c, serial);
        let b = simulate_online(&g, &c, dp);
        assert!(
            b.metrics.mean_latency < a.metrics.mean_latency,
            "MP=8 {} must beat serial {} at 8 models",
            b.metrics.mean_latency,
            a.metrics.mean_latency
        );
    }

    #[test]
    fn quantum_preemption_slices_work() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let mut cfg = tracker_cfg(500, 5, 4);
        cfg.quantum = Some(Micros::from_millis(100));
        let out = simulate_online(&g, &c, cfg);
        // T4 at 4 models ≈ 3.4 s; with a 100 ms quantum it must appear as
        // many slices.
        let t4 = g.task_by_name("Target Detection").unwrap();
        let slices = out.trace.task_slices(t4);
        assert!(slices.len() > 5 * 10, "got {} slices", slices.len());
        assert!(slices
            .iter()
            .all(|s| s.duration() <= Micros::from_millis(100)));
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
    }

    #[test]
    fn single_processor_still_completes() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(1);
        let out = simulate_online(&g, &c, tracker_cfg(100, 8, 2));
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        assert!(out.trace.find_overlap().is_none());
    }

    #[test]
    fn pipeline_graph_runs() {
        let g = builders::pipeline(&[100, 200, 300]);
        let c = ClusterSpec::single_node(3);
        let cfg = OnlineConfig::new(FrameClock::new(Micros(300), 20), AppState::new(1));
        let out = simulate_online(&g, &c, cfg);
        assert_eq!(out.metrics.frames_dropped, 0);
        // Steady state: stage2 (300us) is the bottleneck → throughput ≈ 1/300us.
        assert!(out.metrics.throughput_hz > 2500.0);
    }

    #[test]
    fn trace_conservation_every_task_every_frame() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let out = simulate_online(&g, &c, tracker_cfg(1000, 6, 2));
        for f in 0..6u64 {
            for t in g.task_ids() {
                let ran = out
                    .trace
                    .entries()
                    .iter()
                    .any(|e| e.task == t && e.frame == f);
                assert!(ran, "task {t} frame {f} never ran");
            }
        }
    }

    #[test]
    fn skip_stale_bounds_latency_but_drops_frames() {
        // Saturated 8-model run: without skipping the backlog inflates
        // latency; with NewestUnseen-style skipping latency stays near the
        // unloaded value and the drop count absorbs the overload.
        // Generous buffering (16 items) so the backlog materializes instead
        // of blocking the digitizer — the regime where skipping matters.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut keep = tracker_cfg(33, 30, 8);
        keep.channel_capacity = 16;
        let mut skip = tracker_cfg(33, 30, 8);
        skip.channel_capacity = 16;
        skip.skip_stale = true;
        let a = simulate_online(&g, &c, keep);
        let b = simulate_online(&g, &c, skip);
        assert_eq!(a.metrics.frames_dropped, 0);
        assert!(
            b.metrics.frames_dropped > 10,
            "overload must drop frames, got {}",
            b.metrics.frames_dropped
        );
        assert!(
            b.metrics.mean_latency < a.metrics.mean_latency / 2,
            "skip {} vs keep {}",
            b.metrics.mean_latency,
            a.metrics.mean_latency
        );
        assert!(b.trace.find_overlap().is_none());
    }

    #[test]
    fn skip_stale_is_harmless_when_unloaded() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut cfg = tracker_cfg(10_000, 8, 2);
        cfg.skip_stale = true;
        let out = simulate_online(&g, &c, cfg);
        assert_eq!(out.metrics.frames_dropped, 0);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
    }

    #[test]
    fn skipped_frames_do_not_leak_channel_slots() {
        // After a skip-heavy run, the system still drains completely (the
        // deadlock assertion inside run() would fire otherwise), and late
        // frames complete — proof that skipped inputs were consumed.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let mut cfg = tracker_cfg(33, 40, 8);
        cfg.skip_stale = true;
        cfg.channel_capacity = 2;
        let out = simulate_online(&g, &c, cfg);
        let last_completed = out
            .frames
            .iter()
            .filter(|f| f.completed_at.is_some())
            .map(|f| f.frame)
            .max()
            .unwrap();
        assert!(last_completed >= 35, "late frames must still complete");
    }

    #[test]
    fn dynamic_state_track_changes_costs_mid_run() {
        // 1 model for frames 0..5, 8 models afterwards: later frames must
        // take much longer end to end.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let mut cfg = tracker_cfg(9_000, 10, 1);
        cfg.state_track = Some(crate::workload::StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (5, AppState::new(8)),
        ]));
        let out = simulate_online(&g, &c, cfg);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        let lat = |f: usize| out.frames[f].latency().unwrap();
        assert!(
            lat(7) > lat(2) * 3,
            "heavy regime {} vs light regime {}",
            lat(7),
            lat(2)
        );
    }

    #[test]
    fn dynamic_track_with_decomposition_replans_per_state() {
        // MP=8 decomposition: at 1 model it collapses to a serial plan, at
        // 8 models it runs 8 chunks — the run must handle both.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t4 = g.task_by_name("Target Detection").unwrap();
        let mut cfg = tracker_cfg(9_000, 8, 1);
        cfg.decomposition.insert(t4, Decomposition::new(1, 8));
        cfg.state_track = Some(crate::workload::StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (4, AppState::new(8)),
        ]));
        let out = simulate_online(&g, &c, cfg);
        assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        // Early frames: serial T4 (no chunk entries); late frames: chunks.
        let chunks_for = |frame: u64| {
            out.trace
                .entries()
                .iter()
                .filter(|e| e.frame == frame && e.chunk.is_some())
                .count()
        };
        assert_eq!(chunks_for(1), 0, "1 model clamps MP=8 to serial");
        assert_eq!(chunks_for(6), 8, "8 models run 8 chunks");
    }

    #[test]
    #[should_panic(expected = "not data parallel")]
    fn decomposing_serial_task_panics() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t2 = g.task_by_name("Histogram").unwrap();
        let mut cfg = tracker_cfg(100, 2, 1);
        cfg.decomposition.insert(t2, Decomposition::new(2, 1));
        let _ = simulate_online(&g, &c, cfg);
    }
}
