//! The pre-overhaul online simulator, frozen as a reference oracle.
//!
//! This is the hash-map-based event engine exactly as it stood before the
//! arena rework in [`crate::online`]: per-run allocation of the event heap,
//! ready queue and trace, `HashMap` lookups keyed by `(task, frame)` /
//! `(channel, frame)` on every event, per-activation `Vec` clones of input
//! and output channel lists, and unconditional full trace recording. It is
//! kept in-tree — following the data-path overhaul's precedent — for two
//! jobs:
//!
//! * **oracle**: equivalence tests assert the overhauled engine reproduces
//!   this one bit for bit (trace, frames, metrics, makespan) across serial,
//!   data-parallel, preemptive, frame-skipping and dynamic-state runs;
//! * **honest benchmarking**: the `sweep` bench bin times this path as its
//!   "before", so the recorded speedup measures the overhaul, not hardware
//!   drift.
//!
//! Do not extend this module; new simulator features belong in
//! [`crate::online`], with this file untouched as the historical baseline.
//! The one deliberate difference: [`simulate_online_ref`] ignores
//! `cfg.trace_mode` and always records a full trace, which is what the old
//! engine did.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use taskgraph::{AppState, ChunkPlan, Micros, TaskGraph, TaskId};

use crate::metrics::{FrameRecord, Metrics};
use crate::online::{OnlineConfig, SimOutcome};
use crate::spec::{ClusterSpec, ProcId};
use crate::trace::{ExecutionTrace, TraceEntry};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobKind {
    /// A whole serial activation of a task.
    Serial(TaskId),
    /// The splitter phase of a data-parallel activation.
    Split(TaskId),
    /// One chunk (index, count) of a data-parallel activation.
    Chunk(TaskId, u32, u32),
    /// The joiner phase of a data-parallel activation.
    Join(TaskId),
}

impl JobKind {
    fn task(self) -> TaskId {
        match self {
            JobKind::Serial(t) | JobKind::Split(t) | JobKind::Chunk(t, _, _) | JobKind::Join(t) => {
                t
            }
        }
    }
}

#[derive(Clone, Debug)]
struct Job {
    /// Stable identity across preemptions.
    id: u64,
    /// FIFO position (refreshed on requeue, so preempted jobs go to the
    /// back — the round-robin behaviour of a time-sliced scheduler).
    seq: u64,
    kind: JobKind,
    frame: u64,
    remaining: Micros,
    /// Whether output-channel slots have been reserved for this activation.
    reserved: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    Finish(u32),
    Digitize(u64),
}

struct Running {
    job: Job,
    slice_start: Micros,
    slice: Micros,
}

struct Sim<'g> {
    graph: &'g TaskGraph,
    cfg: OnlineConfig,
    now: Micros,
    events: BinaryHeap<Reverse<(Micros, u64, Event)>>,
    eseq: u64,
    ready: Vec<Job>,
    next_id: u64,
    next_seq: u64,
    /// Per-task thread occupancy: the id of the job holding the thread.
    busy: Vec<Option<u64>>,
    running: HashMap<u32, Running>,
    free_procs: Vec<u32>,
    /// Live (reserved or present) items per channel.
    occupancy: Vec<usize>,
    /// Consumers still owing a consume for (channel, frame).
    remaining_consumers: HashMap<(usize, u64), usize>,
    /// Inputs not yet present for (task, frame).
    missing_inputs: HashMap<(usize, u64), usize>,
    /// Chunks still running for a DP activation (task, frame).
    chunks_left: HashMap<(usize, u64), u32>,
    /// Chunk plans for DP tasks, keyed by (task, n_models of the frame's
    /// state) — a dynamic environment changes the plan between frames.
    plans: HashMap<(usize, u32), ChunkPlan>,
    digitized: Vec<Option<Micros>>,
    completed: Vec<Option<Micros>>,
    tasks_done: HashMap<u64, usize>,
    trace: ExecutionTrace,
}

/// Run the online scheduler on `graph` over `cluster` with the
/// pre-overhaul engine (always records a full trace).
///
/// Panics if the configuration can deadlock (a diagnostic is printed with
/// the stuck queue) — with a validated DAG and capacity ≥ 1 this does not
/// happen.
#[must_use]
pub fn simulate_online_ref(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    cfg: OnlineConfig,
) -> SimOutcome {
    graph.validate().expect("graph must validate");
    assert!(cfg.channel_capacity >= 1, "capacity must be at least 1");
    let n_frames = cfg.clock.n_frames;
    let n_procs = cluster.n_procs();

    // Chunk plans per (task, state): a dynamic run needs one plan per
    // distinct state the track visits.
    let states: Vec<AppState> = match &cfg.state_track {
        Some(track) => track.distinct_states(),
        None => vec![cfg.state],
    };
    let mut plans = HashMap::new();
    for (tid, decomp) in &cfg.decomposition {
        let task = graph.task(*tid);
        let dp = task
            .dp
            .as_ref()
            .unwrap_or_else(|| panic!("task {} is not data parallel", task.name));
        for st in &states {
            let plan = dp.plan(task.cost.eval(st), *decomp, st);
            plans.insert((tid.0, st.n_models), plan);
        }
    }

    let mut sim = Sim {
        graph,

        now: Micros::ZERO,
        events: BinaryHeap::new(),
        eseq: 0,
        ready: Vec::new(),
        next_id: 0,
        next_seq: 0,
        busy: vec![None; graph.n_tasks()],
        running: HashMap::new(),
        free_procs: (0..n_procs).rev().collect(),
        occupancy: vec![0; graph.channels().len()],
        remaining_consumers: HashMap::new(),
        missing_inputs: HashMap::new(),
        chunks_left: HashMap::new(),
        plans,
        digitized: vec![None; n_frames as usize],
        completed: vec![None; n_frames as usize],
        tasks_done: HashMap::new(),
        trace: ExecutionTrace::new(n_procs),
        cfg,
    };

    for f in 0..n_frames {
        let t = sim.cfg.clock.arrival(f);
        sim.push_event(t, Event::Digitize(f));
    }

    sim.run();

    let frames: Vec<FrameRecord> = (0..n_frames)
        .map(|f| FrameRecord {
            frame: f,
            digitized_at: sim.digitized[f as usize].unwrap_or(Micros::ZERO),
            completed_at: sim.completed[f as usize],
        })
        .collect();
    let metrics = Metrics::from_records(&frames, sim.cfg.warmup_frames);
    let makespan = sim.trace.makespan();
    SimOutcome {
        trace: sim.trace,
        frames,
        metrics,
        makespan,
    }
}

impl<'g> Sim<'g> {
    fn push_event(&mut self, t: Micros, e: Event) {
        self.events.push(Reverse((t, self.eseq, e)));
        self.eseq += 1;
    }

    /// The application state in force for `frame`.
    fn state_of(&self, frame: u64) -> AppState {
        match &self.cfg.state_track {
            Some(track) => track.state_at(frame),
            None => self.cfg.state,
        }
    }

    fn plan_of(&self, task: usize, frame: u64) -> Option<&ChunkPlan> {
        self.plans.get(&(task, self.state_of(frame).n_models))
    }

    fn spawn(&mut self, kind: JobKind, frame: u64, cost: Micros) {
        let job = Job {
            id: self.next_id,
            seq: self.next_seq,
            kind,
            frame,
            remaining: cost,
            reserved: false,
        };
        self.next_id += 1;
        self.next_seq += 1;
        self.ready.push(job);
    }

    /// Spawn the activation of `task` for `frame`: a serial job, or the
    /// split phase of a data-parallel activation.
    fn spawn_activation(&mut self, task: TaskId, frame: u64) {
        match self.plan_of(task.0, frame) {
            Some(plan) if plan.chunks > 1 => {
                let split = plan.split_cost;
                self.spawn(JobKind::Split(task), frame, split);
            }
            _ => {
                let cost = self.graph.task(task).cost.eval(&self.state_of(frame));
                self.spawn(JobKind::Serial(task), frame, cost);
            }
        }
    }

    fn outputs_have_space(&self, task: TaskId) -> bool {
        self.graph
            .task(task)
            .outputs
            .iter()
            .all(|c| self.occupancy[c.0] < self.cfg.channel_capacity)
    }

    fn eligible(&self, job: &Job) -> bool {
        match job.kind {
            JobKind::Serial(t) | JobKind::Split(t) => {
                let thread_free = match self.busy[t.0] {
                    None => true,
                    Some(id) => id == job.id,
                };
                let space = job.reserved
                    || matches!(job.kind, JobKind::Split(_))
                    || self.outputs_have_space(t);
                thread_free && space
            }
            JobKind::Join(t) => job.reserved || self.outputs_have_space(t),
            JobKind::Chunk(..) => true,
        }
    }

    /// Assign eligible jobs to free processors, FIFO by seq.
    fn dispatch(&mut self) {
        loop {
            if self.free_procs.is_empty() {
                return;
            }
            // Oldest eligible job.
            let mut best: Option<usize> = None;
            for (i, job) in self.ready.iter().enumerate() {
                if self.eligible(job) && best.is_none_or(|b| self.ready[b].seq > job.seq) {
                    best = Some(i);
                }
            }
            let Some(mut i) = best else { return };

            // NewestUnseen-style consumption: when the selected job is the
            // start of an activation with inputs, jump to the newest ready
            // frame of the same task and skip (consume without processing)
            // everything older — the activation job only exists once all of
            // its inputs are present, so the skipped inputs are consumable.
            if self.cfg.skip_stale {
                let kind = self.ready[i].kind;
                if matches!(kind, JobKind::Serial(_) | JobKind::Split(_))
                    && !self.graph.task(kind.task()).inputs.is_empty()
                    && !self.ready[i].reserved
                    && self.busy[kind.task().0] != Some(self.ready[i].id)
                {
                    let t = kind.task();
                    let busy_id = self.busy[t.0];
                    let starts_activation = move |j: &Job| {
                        matches!(j.kind, JobKind::Serial(_) | JobKind::Split(_))
                            && j.kind.task() == t
                            && !j.reserved
                            && busy_id != Some(j.id)
                    };
                    let newest = self
                        .ready
                        .iter()
                        .enumerate()
                        .filter(|(_, j)| starts_activation(j))
                        .max_by_key(|(_, j)| j.frame)
                        .map(|(idx, j)| (idx, j.frame))
                        .expect("selected job qualifies");
                    let skipped: Vec<u64> = self
                        .ready
                        .iter()
                        .filter(|j| starts_activation(j) && j.frame < newest.1)
                        .map(|j| j.frame)
                        .collect();
                    self.ready
                        .retain(|j| !(starts_activation(j) && j.frame < newest.1));
                    for f in skipped {
                        self.consume_inputs(t, f);
                    }
                    // Indices shifted; find the newest job again.
                    i = self
                        .ready
                        .iter()
                        .position(|j| starts_activation(j) && j.frame == newest.1)
                        .expect("newest job still queued");
                }
            }

            let mut job = self.ready.swap_remove(i);
            let proc = self.free_procs.pop().expect("checked non-empty");

            // Acquire the task thread / reserve output slots on first slice.
            match job.kind {
                JobKind::Serial(t) | JobKind::Split(t) => {
                    self.busy[t.0] = Some(job.id);
                }
                _ => {}
            }
            if matches!(job.kind, JobKind::Serial(_) | JobKind::Join(_)) && !job.reserved {
                let t = job.kind.task();
                for c in &self.graph.task(t).outputs {
                    self.occupancy[c.0] += 1;
                }
                job.reserved = true;
            }

            let slice = match self.cfg.quantum {
                Some(q) => q.min(job.remaining),
                None => job.remaining,
            };
            let end = self.now + slice;
            self.push_event(end, Event::Finish(proc));
            self.running.insert(
                proc,
                Running {
                    job,
                    slice_start: self.now,
                    slice,
                },
            );
        }
    }

    fn run(&mut self) {
        while let Some(Reverse((t, _, event))) = self.events.pop() {
            self.now = t;
            match event {
                Event::Digitize(frame) => {
                    let sources = self.graph.sources();
                    for s in sources {
                        self.spawn_activation(s, frame);
                    }
                }
                Event::Finish(proc) => self.finish(proc),
            }
            self.dispatch();
        }
        assert!(
            self.ready.is_empty() && self.running.is_empty(),
            "online simulation deadlocked at {} with {} queued jobs: {:?}",
            self.now,
            self.ready.len(),
            self.ready
                .iter()
                .map(|j| (j.kind, j.frame))
                .collect::<Vec<_>>()
        );
    }

    fn finish(&mut self, proc: u32) {
        let Running {
            mut job,
            slice_start,
            slice,
        } = self.running.remove(&proc).expect("proc was running");
        self.free_procs.push(proc);

        let chunk = match job.kind {
            JobKind::Chunk(_, i, n) => Some((i, n)),
            _ => None,
        };
        self.trace.push(TraceEntry {
            proc: ProcId(proc),
            task: job.kind.task(),
            frame: job.frame,
            chunk,
            start: slice_start,
            end: self.now,
        });

        job.remaining = job.remaining.saturating_sub(slice);
        if job.remaining > Micros::ZERO {
            // Preempted: thread stays owned by this job; requeue at the back.
            job.seq = self.next_seq;
            self.next_seq += 1;
            self.ready.push(job);
            return;
        }

        let frame = job.frame;
        match job.kind {
            JobKind::Serial(t) => {
                self.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
            JobKind::Split(t) => {
                // Thread blocks awaiting the joiner; chunks go to the pool.
                let plan = *self.plan_of(t.0, frame).expect("split implies plan");
                self.chunks_left.insert((t.0, frame), plan.chunks);
                for i in 0..plan.chunks {
                    self.spawn(JobKind::Chunk(t, i, plan.chunks), frame, plan.chunk_cost);
                }
            }
            JobKind::Chunk(t, _, _) => {
                let left = self
                    .chunks_left
                    .get_mut(&(t.0, frame))
                    .expect("chunk accounting");
                *left -= 1;
                if *left == 0 {
                    self.chunks_left.remove(&(t.0, frame));
                    let join = self
                        .plan_of(t.0, frame)
                        .expect("chunk implies plan")
                        .join_cost;
                    self.spawn(JobKind::Join(t), frame, join);
                }
            }
            JobKind::Join(t) => {
                self.busy[t.0] = None;
                self.complete_activation(t, frame);
            }
        }
    }

    /// Release this task's claim on its inputs for `frame` (processing done
    /// or frame skipped): the GC obligation of STM's `consume`.
    fn consume_inputs(&mut self, t: TaskId, frame: u64) {
        for &c in &self.graph.task(t).inputs.clone() {
            let left = self
                .remaining_consumers
                .get_mut(&(c.0, frame))
                .expect("input was present");
            *left -= 1;
            if *left == 0 {
                self.remaining_consumers.remove(&(c.0, frame));
                self.occupancy[c.0] -= 1;
            }
        }
    }

    /// A logical task activation finished: publish outputs, consume inputs,
    /// track frame progress.
    fn complete_activation(&mut self, t: TaskId, frame: u64) {
        let task = self.graph.task(t);
        // Publish outputs (slots were reserved at start).
        for &c in &task.outputs.clone() {
            let consumers = self.graph.channel(c).consumers.clone();
            self.remaining_consumers
                .insert((c.0, frame), consumers.len());
            for cons in consumers {
                let missing = self
                    .missing_inputs
                    .entry((cons.0, frame))
                    .or_insert_with(|| self.graph.task(cons).inputs.len());
                *missing -= 1;
                if *missing == 0 {
                    self.missing_inputs.remove(&(cons.0, frame));
                    self.spawn_activation(cons, frame);
                }
            }
        }
        // Consume inputs.
        self.consume_inputs(t, frame);
        // Track the digitizer and per-frame completion.
        if task.inputs.is_empty() {
            self.digitized[frame as usize] = Some(self.now);
        }
        let done = self.tasks_done.entry(frame).or_insert(0);
        *done += 1;
        if *done == self.graph.n_tasks() {
            self.tasks_done.remove(&frame);
            self.completed[frame as usize] = Some(self.now);
        }
    }
}
