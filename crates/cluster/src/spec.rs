//! Cluster topology: nodes × processors with locality-dependent
//! communication, the "number of nodes and the number of processors within
//! each node" of the scheduling algorithm's input (Fig. 6).

use taskgraph::{CommCosts, Locality};

/// Index of one SMP node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Global index of one processor across the whole cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// A homogeneous cluster of SMP nodes.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    nodes: u32,
    procs_per_node: u32,
    comm: CommCosts,
}

impl ClusterSpec {
    /// `nodes` SMPs of `procs_per_node` processors each, with the given
    /// communication model.
    #[must_use]
    pub fn new(nodes: u32, procs_per_node: u32, comm: CommCosts) -> Self {
        assert!(nodes > 0 && procs_per_node > 0, "cluster must be non-empty");
        ClusterSpec {
            nodes,
            procs_per_node,
            comm,
        }
    }

    /// A single SMP with `procs` processors and free communication — the
    /// configuration most of the paper's figures use.
    #[must_use]
    pub fn single_node(procs: u32) -> Self {
        ClusterSpec::new(1, procs, CommCosts::FREE)
    }

    /// The paper's platform: four 4-way SMPs.
    #[must_use]
    pub fn paper_cluster() -> Self {
        ClusterSpec::new(4, 4, CommCosts::default_cluster())
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> u32 {
        self.nodes
    }

    /// Processors per node.
    #[must_use]
    pub fn procs_per_node(&self) -> u32 {
        self.procs_per_node
    }

    /// Total processors.
    #[must_use]
    pub fn n_procs(&self) -> u32 {
        self.nodes * self.procs_per_node
    }

    /// The node a processor belongs to.
    #[must_use]
    pub fn node_of(&self, p: ProcId) -> NodeId {
        assert!(p.0 < self.n_procs(), "processor {p:?} out of range");
        NodeId(p.0 / self.procs_per_node)
    }

    /// Locality of a transfer from processor `a` to processor `b`.
    #[must_use]
    pub fn locality(&self, a: ProcId, b: ProcId) -> Locality {
        if self.node_of(a) == self.node_of(b) {
            Locality::IntraNode
        } else {
            Locality::InterNode
        }
    }

    /// The communication cost model.
    #[must_use]
    pub fn comm(&self) -> &CommCosts {
        &self.comm
    }

    /// Iterate over all processor ids.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.n_procs()).map(ProcId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::Micros;

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.n_nodes(), 4);
        assert_eq!(c.n_procs(), 16);
        assert_eq!(c.node_of(ProcId(0)), NodeId(0));
        assert_eq!(c.node_of(ProcId(3)), NodeId(0));
        assert_eq!(c.node_of(ProcId(4)), NodeId(1));
        assert_eq!(c.node_of(ProcId(15)), NodeId(3));
    }

    #[test]
    fn locality_classification() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.locality(ProcId(0), ProcId(3)), Locality::IntraNode);
        assert_eq!(c.locality(ProcId(0), ProcId(4)), Locality::InterNode);
        assert_eq!(c.locality(ProcId(5), ProcId(5)), Locality::IntraNode);
    }

    #[test]
    fn single_node_comm_is_free() {
        let c = ClusterSpec::single_node(4);
        assert_eq!(c.n_procs(), 4);
        assert_eq!(
            c.comm().transfer(1 << 20, c.locality(ProcId(0), ProcId(3))),
            Micros::ZERO
        );
    }

    #[test]
    fn procs_iterator_is_exhaustive() {
        let c = ClusterSpec::new(2, 3, CommCosts::FREE);
        let ids: Vec<u32> = c.procs().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_proc_panics() {
        let c = ClusterSpec::single_node(2);
        let _ = c.node_of(ProcId(2));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_cluster_rejected() {
        let _ = ClusterSpec::new(0, 4, CommCosts::FREE);
    }
}
