//! Generic parallel parameter-sweep driver.
//!
//! Every evaluation figure (Fig. 3 tuning curves, the regime-switch trace,
//! the ablation, the surveillance sweep) has the same shape: many
//! *independent* simulator runs over a grid of configurations. This module
//! runs such a grid over a pool of worker threads, one rented [`SimArena`]
//! per worker so the event loop allocates nothing after its first run, and
//! returns results in **input order** regardless of which worker finished
//! which run when — so a parallel sweep is bit-identical to a serial one
//! (asserted by the `sweep_determinism` test and the CI smoke step).
//!
//! The driver is generic over the per-run closure: it hands the closure a
//! `&mut SimArena`, the input index, and the input value, and collects
//! whatever the closure returns. Simulation itself stays deterministic
//! because each run is self-contained; the only cross-run state is buffer
//! capacity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel;

use crate::online::SimArena;

/// How a sweep is driven.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepConfig {
    /// Worker thread count; `0` = available parallelism (at least 1).
    pub threads: usize,
    /// Print a progress line (to stderr) as runs complete.
    pub progress: bool,
}

impl SweepConfig {
    /// A quiet sweep on every available core.
    #[must_use]
    pub fn new() -> Self {
        SweepConfig::default()
    }

    /// A serial sweep (one worker) — the oracle the parallel path is
    /// checked against.
    #[must_use]
    pub fn serial() -> Self {
        SweepConfig {
            threads: 1,
            progress: false,
        }
    }

    fn resolve_threads(&self, n_inputs: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let t = if self.threads == 0 { hw } else { self.threads };
        t.clamp(1, n_inputs.max(1))
    }
}

/// Wall-clock accounting for one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepStats {
    /// Number of runs executed.
    pub runs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock time.
    pub elapsed: Duration,
}

impl SweepStats {
    /// Completed runs per second of wall-clock time.
    #[must_use]
    pub fn runs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.runs as f64 / secs
        } else {
            0.0
        }
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} runs on {} thread(s) in {:.3} s ({:.1} runs/s)",
            self.runs,
            self.threads,
            self.elapsed.as_secs_f64(),
            self.runs_per_sec()
        )
    }
}

/// The results of a sweep, in input order, plus its wall-clock stats.
#[derive(Clone, Debug)]
pub struct SweepOutput<R> {
    /// One result per input, `results[i]` from `inputs[i]`.
    pub results: Vec<R>,
    /// Wall-clock accounting.
    pub stats: SweepStats,
}

/// Run `f` once per input over a pool of worker threads, each renting its
/// own [`SimArena`], and return the results **in input order**.
///
/// `f` receives `(arena, input_index, input)`. The input order of the
/// result vector — not worker scheduling — determines output order, so
/// serial and parallel sweeps of a deterministic `f` are bit-identical.
///
/// A panic in `f` propagates out of the sweep.
pub fn sweep<I, R, F>(cfg: SweepConfig, inputs: Vec<I>, f: F) -> SweepOutput<R>
where
    I: Send,
    R: Send,
    F: Fn(&mut SimArena, usize, I) -> R + Sync,
{
    let n = inputs.len();
    let threads = cfg.resolve_threads(n);
    let start = Instant::now();

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    if threads <= 1 {
        // Serial fast path: no channels, no worker threads — the oracle.
        let mut arena = SimArena::new();
        for (i, input) in inputs.into_iter().enumerate() {
            results[i] = Some(f(&mut arena, i, input));
            if cfg.progress {
                eprint!("\r  sweep: {}/{n} runs", i + 1);
            }
        }
        if cfg.progress && n > 0 {
            eprintln!();
        }
    } else {
        let (job_tx, job_rx) = channel::unbounded::<(usize, I)>();
        let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
        for pair in inputs.into_iter().enumerate() {
            job_tx.send(pair).expect("receiver lives");
        }
        drop(job_tx);
        let done = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..threads {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                let done = &done;
                let f = &f;
                s.spawn(move || {
                    let mut arena = SimArena::new();
                    while let Ok((i, input)) = job_rx.recv() {
                        let r = f(&mut arena, i, input);
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if cfg.progress {
                            eprint!("\r  sweep: {finished}/{n} runs");
                        }
                        if res_tx.send((i, r)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(res_tx);
            for (i, r) in res_rx.iter() {
                results[i] = Some(r);
            }
        });
        if cfg.progress && n > 0 {
            eprintln!();
        }
    }

    let results: Vec<R> = results
        .into_iter()
        .map(|r| r.expect("every input produced a result"))
        .collect();
    SweepOutput {
        results,
        stats: SweepStats {
            runs: n,
            threads,
            elapsed: start.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineConfig;
    use crate::spec::ClusterSpec;
    use crate::trace::TraceMode;
    use crate::workload::FrameClock;
    use taskgraph::{builders, AppState, Micros};

    fn tracker_inputs() -> Vec<OnlineConfig> {
        let mut inputs = Vec::new();
        for period_ms in [20u64, 33, 100, 500, 2000] {
            for n_models in [1u32, 4, 8] {
                let mut cfg = OnlineConfig::new(
                    FrameClock::new(Micros::from_millis(period_ms), 12),
                    AppState::new(n_models),
                );
                cfg.trace_mode = TraceMode::Off;
                inputs.push(cfg);
            }
        }
        inputs
    }

    #[test]
    fn results_are_in_input_order() {
        let out = sweep(SweepConfig::new(), (0..100usize).collect(), |_, i, v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out.results, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        assert_eq!(out.stats.runs, 100);
    }

    #[test]
    fn sweep_determinism_serial_vs_parallel_and_run_to_run() {
        // The acceptance-criteria test: a real simulator sweep must be
        // bit-identical serial vs. parallel and across repeated runs.
        let graph = builders::color_tracker();
        let cluster = ClusterSpec::single_node(4);
        let run = |arena: &mut SimArena, _i: usize, cfg: OnlineConfig| {
            let s = arena.simulate(&graph, &cluster, &cfg);
            (s.metrics, s.makespan)
        };
        let serial = sweep(SweepConfig::serial(), tracker_inputs(), run);
        let serial2 = sweep(SweepConfig::serial(), tracker_inputs(), run);
        let parallel = sweep(
            SweepConfig {
                threads: 4,
                progress: false,
            },
            tracker_inputs(),
            run,
        );
        assert_eq!(serial.results, serial2.results, "run-to-run determinism");
        assert_eq!(serial.results, parallel.results, "serial vs parallel");
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out = sweep(SweepConfig::new(), Vec::<usize>::new(), |_, _, v| v);
        assert!(out.results.is_empty());
        assert_eq!(out.stats.runs, 0);
    }

    #[test]
    fn thread_count_is_clamped_to_inputs() {
        let out = sweep(
            SweepConfig {
                threads: 64,
                progress: false,
            },
            vec![1, 2, 3],
            |_, _, v| v,
        );
        assert_eq!(out.stats.threads, 3);
        assert_eq!(out.results, vec![1, 2, 3]);
    }
}
