//! Execution traces: what ran where, when — the raw material for the paper's
//! Figures 4 and 5 (per-processor timelines with per-timestamp shading).

use crate::spec::ProcId;
use taskgraph::{Micros, TaskId};

/// How much of the execution a simulator run records.
///
/// Timing-oriented sweeps run thousands of simulations whose traces are
/// never read; recording every slice then costs an allocation-heavy `Vec`
/// push per processor slice plus the final buffer. `TraceMode` gates that
/// cost: metrics ([`crate::Metrics`]) are computed from frame records and
/// are *identical* in every mode (property-tested), so `Off` is always safe
/// for runs that only need numbers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// Record nothing. Summary statistics (`makespan`, `busy_time`,
    /// `utilization`) read as empty; use the simulator's own makespan.
    Off,
    /// Keep only the O(procs) aggregates — per-processor busy time, slice
    /// count, makespan — with no per-slice storage.
    Summary,
    /// Record every slice (the historical behaviour).
    #[default]
    Full,
    /// Record aggregates plus a ring buffer of the *last* `n` slices: a
    /// flight recorder for long runs where only the recent window matters.
    Ring(usize),
}

/// One contiguous slice of processor time spent on one task activation (or
/// one chunk of a data-parallel activation). Preempted activations appear as
/// several entries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// The processor that ran the slice.
    pub proc: ProcId,
    /// The task.
    pub task: TaskId,
    /// The frame (timestamp / iteration) being processed.
    pub frame: u64,
    /// Chunk index and chunk count when this is a data-parallel chunk.
    pub chunk: Option<(u32, u32)>,
    /// Slice start (absolute simulated time).
    pub start: Micros,
    /// Slice end.
    pub end: Micros,
}

impl TraceEntry {
    /// Slice duration.
    #[must_use]
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }
}

/// A complete per-run trace.
///
/// Aggregates (makespan, per-processor busy time, slice count) are
/// maintained incrementally on every [`ExecutionTrace::push`], so the
/// summary accessors are O(1) and remain correct even in
/// [`TraceMode::Summary`] and [`TraceMode::Ring`], where per-slice storage
/// is reduced or bounded.
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
    /// Ring cursor: index of the oldest stored entry once a `Ring(cap)`
    /// buffer has wrapped. Always 0 in the other modes.
    ring_head: usize,
    mode: TraceMode,
    n_procs: u32,
    busy: Vec<Micros>,
    max_end: Micros,
    recorded: u64,
}

impl Default for ExecutionTrace {
    fn default() -> Self {
        ExecutionTrace::new(0)
    }
}

impl ExecutionTrace {
    /// An empty trace over `n_procs` processors, recording every slice.
    #[must_use]
    pub fn new(n_procs: u32) -> Self {
        ExecutionTrace::with_mode(n_procs, TraceMode::Full)
    }

    /// An empty trace with an explicit recording mode.
    #[must_use]
    pub fn with_mode(n_procs: u32, mode: TraceMode) -> Self {
        ExecutionTrace {
            entries: Vec::new(),
            ring_head: 0,
            mode,
            n_procs,
            busy: vec![Micros::ZERO; n_procs as usize],
            max_end: Micros::ZERO,
            recorded: 0,
        }
    }

    /// Reset to an empty trace over `n_procs` processors in `mode`, keeping
    /// the entry buffer's capacity (arena reuse across simulator runs).
    pub fn reset(&mut self, n_procs: u32, mode: TraceMode) {
        self.entries.clear();
        self.ring_head = 0;
        self.mode = mode;
        self.n_procs = n_procs;
        self.busy.clear();
        self.busy.resize(n_procs as usize, Micros::ZERO);
        self.max_end = Micros::ZERO;
        self.recorded = 0;
    }

    /// The recording mode.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Append a slice. Panics if the slice is malformed (end before start or
    /// processor out of range) — traces are produced by simulators, so a
    /// malformed entry is a simulator bug.
    ///
    /// In [`TraceMode::Off`] this is a no-op; in [`TraceMode::Summary`] only
    /// the aggregates are updated; in [`TraceMode::Ring`] the oldest stored
    /// slice is evicted once the buffer is full.
    pub fn push(&mut self, e: TraceEntry) {
        if self.mode == TraceMode::Off {
            return;
        }
        assert!(e.end >= e.start, "trace slice ends before it starts");
        assert!(e.proc.0 < self.n_procs, "trace slice on unknown processor");
        self.busy[e.proc.0 as usize] += e.duration();
        self.max_end = self.max_end.max(e.end);
        self.recorded += 1;
        match self.mode {
            TraceMode::Off | TraceMode::Summary => {}
            TraceMode::Full => self.entries.push(e),
            TraceMode::Ring(cap) => {
                if self.entries.len() < cap {
                    self.entries.push(e);
                } else if cap > 0 {
                    self.entries[self.ring_head] = e;
                    self.ring_head = (self.ring_head + 1) % cap;
                }
            }
        }
    }

    /// All *stored* slices in insertion (time) order. Under
    /// [`TraceMode::Ring`] this is the retained window; under
    /// [`TraceMode::Summary`]/[`TraceMode::Off`] it is empty — check
    /// [`ExecutionTrace::recorded_slices`] to distinguish "no work ran" from
    /// "not recorded".
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        debug_assert_eq!(self.ring_head, 0, "ring trace read before seal()");
        &self.entries
    }

    /// Rotate a wrapped ring buffer so `entries()` is in insertion order.
    /// Idempotent; a no-op in every other mode. Simulators call this once at
    /// end of run.
    pub fn seal(&mut self) {
        if self.ring_head != 0 {
            self.entries.rotate_left(self.ring_head);
            self.ring_head = 0;
        }
    }

    /// Total slices observed (including any not stored due to the mode).
    #[must_use]
    pub fn recorded_slices(&self) -> u64 {
        self.recorded
    }

    /// Whether every observed slice is also stored (always true in
    /// [`TraceMode::Full`]).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.recorded == self.entries.len() as u64
    }

    /// Number of processors in the run.
    #[must_use]
    pub fn n_procs(&self) -> u32 {
        self.n_procs
    }

    /// Latest end time across all observed slices. O(1).
    #[must_use]
    pub fn makespan(&self) -> Micros {
        self.max_end
    }

    /// Total busy time of one processor, over all observed slices. O(1).
    #[must_use]
    pub fn busy_time(&self, proc: ProcId) -> Micros {
        self.busy
            .get(proc.0 as usize)
            .copied()
            .unwrap_or(Micros::ZERO)
    }

    /// Fraction of `procs × makespan` spent busy, over all observed slices.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span == Micros::ZERO || self.n_procs == 0 {
            return 0.0;
        }
        let busy: Micros = self.busy.iter().copied().sum();
        busy.0 as f64 / (span.0 as f64 * f64::from(self.n_procs))
    }

    /// Verify no processor runs two slices at once. Returns the first
    /// overlapping pair if any — the basic sanity check every simulator run
    /// is subjected to in tests.
    #[must_use]
    pub fn find_overlap(&self) -> Option<(TraceEntry, TraceEntry)> {
        let mut by_proc: Vec<Vec<&TraceEntry>> = vec![Vec::new(); self.n_procs as usize];
        for e in &self.entries {
            by_proc[e.proc.0 as usize].push(e);
        }
        for slices in &mut by_proc {
            slices.sort_by_key(|e| (e.start, e.end));
            for w in slices.windows(2) {
                if w[1].start < w[0].end {
                    return Some(((*w[0]).clone(), (*w[1]).clone()));
                }
            }
        }
        None
    }

    /// Per-frame completion time: the max `end` over all slices of `frame`.
    #[must_use]
    pub fn frame_completion(&self, frame: u64) -> Option<Micros> {
        self.entries
            .iter()
            .filter(|e| e.frame == frame)
            .map(|e| e.end)
            .max()
    }

    /// Slices of a given task, in time order.
    #[must_use]
    pub fn task_slices(&self, task: TaskId) -> Vec<&TraceEntry> {
        let mut v: Vec<&TraceEntry> = self.entries.iter().filter(|e| e.task == task).collect();
        v.sort_by_key(|e| (e.start, e.end));
        v
    }

    /// Push the stored slices into a shared [`obs::ChromeTrace`] builder as
    /// process `pid`, one Chrome thread lane per simulated processor. This
    /// is the unification point with the live runtime's trace export: push
    /// a live [`obs::SpanDump`] and a simulated trace into the *same*
    /// builder (distinct pids) and the two runs render side by side in
    /// `chrome://tracing`.
    ///
    /// `task_names` maps `TaskId` indices to display names; missing entries
    /// fall back to `task<N>`.
    pub fn push_into_chrome(
        &self,
        chrome: &mut obs::ChromeTrace,
        pid: u32,
        process_name: &str,
        task_names: &[String],
    ) {
        debug_assert_eq!(self.ring_head, 0, "ring trace exported before seal()");
        chrome.set_process_name(pid, process_name);
        for p in 0..self.n_procs {
            chrome.set_thread_name(pid, p, &format!("proc {p}"));
        }
        for e in &self.entries {
            let base = task_names
                .get(e.task.0)
                .map_or_else(|| format!("task{}", e.task.0), String::clone);
            let name = match e.chunk {
                Some((i, n)) => format!("{base} chunk {}/{n}", i + 1),
                None => base,
            };
            chrome.complete(
                &name,
                "sim",
                pid,
                e.proc.0,
                e.start.0 as f64,
                e.duration().0 as f64,
                Some(e.frame),
            );
        }
    }

    /// Export the stored slices as a standalone Chrome trace JSON document
    /// (see [`ExecutionTrace::push_into_chrome`] for the merged variant).
    #[must_use]
    pub fn to_chrome_json(&self, task_names: &[String]) -> String {
        let mut chrome = obs::ChromeTrace::new();
        self.push_into_chrome(&mut chrome, 0, "simulated", task_names);
        chrome.to_json()
    }

    /// Export as CSV (`proc,task,frame,chunk_idx,chunk_of,start_us,end_us`),
    /// for external plotting of the Fig. 4/5 timelines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("proc,task,frame,chunk_idx,chunk_of,start_us,end_us\n");
        for e in &self.entries {
            let (ci, cn) = match e.chunk {
                Some((i, n)) => (i.to_string(), n.to_string()),
                None => (String::new(), String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                e.proc.0, e.task.0, e.frame, ci, cn, e.start.0, e.end.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(proc: u32, task: usize, frame: u64, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            proc: ProcId(proc),
            task: TaskId(task),
            frame,
            chunk: None,
            start: Micros(start),
            end: Micros(end),
        }
    }

    #[test]
    fn makespan_and_busy_time() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(entry(1, 1, 0, 5, 25));
        t.push(entry(0, 2, 0, 10, 15));
        assert_eq!(t.makespan(), Micros(25));
        assert_eq!(t.busy_time(ProcId(0)), Micros(15));
        assert_eq!(t.busy_time(ProcId(1)), Micros(20));
        let util = t.utilization();
        assert!((util - 35.0 / 50.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_detection() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(entry(0, 1, 0, 10, 20)); // touching is fine
        assert!(t.find_overlap().is_none());
        t.push(entry(0, 2, 0, 15, 18));
        assert!(t.find_overlap().is_some());
    }

    #[test]
    fn frame_completion_is_last_end() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 0, 3, 0, 10));
        t.push(entry(1, 1, 3, 10, 40));
        t.push(entry(0, 2, 4, 12, 20));
        assert_eq!(t.frame_completion(3), Some(Micros(40)));
        assert_eq!(t.frame_completion(4), Some(Micros(20)));
        assert_eq!(t.frame_completion(9), None);
    }

    #[test]
    fn task_slices_sorted() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(1, 7, 1, 20, 30));
        t.push(entry(0, 7, 0, 0, 10));
        let slices = t.task_slices(TaskId(7));
        assert_eq!(slices.len(), 2);
        assert!(slices[0].start < slices[1].start);
    }

    #[test]
    #[should_panic(expected = "unknown processor")]
    fn bad_proc_rejected() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(1, 0, 0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn reversed_slice_rejected() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(0, 0, 0, 10, 5));
    }

    #[test]
    fn csv_export_roundtrips_fields() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 3, 7, 100, 250));
        t.push(TraceEntry {
            proc: ProcId(1),
            task: TaskId(3),
            frame: 7,
            chunk: Some((2, 4)),
            start: Micros(250),
            end: Micros(400),
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "proc,task,frame,chunk_idx,chunk_of,start_us,end_us"
        );
        assert_eq!(lines[1], "0,3,7,,,100,250");
        assert_eq!(lines[2], "1,3,7,2,4,250,400");
    }

    #[test]
    fn chrome_export_is_valid_and_named() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(TraceEntry {
            proc: ProcId(1),
            task: TaskId(1),
            frame: 0,
            chunk: Some((0, 2)),
            start: Micros(10),
            end: Micros(40),
        });
        let json = t.to_chrome_json(&["Digitizer".to_string(), "Histogram".to_string()]);
        // 3 metadata (process + 2 threads) + 2 slices.
        assert_eq!(obs::chrome::validate(&json), Ok(5), "{json}");
        assert!(json.contains("Digitizer"));
        assert!(json.contains("Histogram chunk 1/2"));
        // Unknown task ids fall back to a stable name.
        let mut u = ExecutionTrace::new(1);
        u.push(entry(0, 9, 0, 0, 1));
        assert!(u.to_chrome_json(&[]).contains("task9"));
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = ExecutionTrace::new(4);
        assert_eq!(t.makespan(), Micros::ZERO);
        assert_eq!(t.utilization(), 0.0);
        assert!(t.find_overlap().is_none());
        assert!(t.is_complete());
    }

    #[test]
    fn off_mode_stores_and_aggregates_nothing() {
        let mut t = ExecutionTrace::with_mode(2, TraceMode::Off);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(entry(1, 1, 0, 5, 25));
        assert!(t.entries().is_empty());
        assert_eq!(t.recorded_slices(), 0);
        assert_eq!(t.makespan(), Micros::ZERO);
    }

    #[test]
    fn summary_mode_keeps_aggregates_without_entries() {
        let mut full = ExecutionTrace::with_mode(2, TraceMode::Full);
        let mut summ = ExecutionTrace::with_mode(2, TraceMode::Summary);
        for e in [
            entry(0, 0, 0, 0, 10),
            entry(1, 1, 0, 5, 25),
            entry(0, 2, 1, 10, 15),
        ] {
            full.push(e.clone());
            summ.push(e);
        }
        assert!(summ.entries().is_empty());
        assert!(!summ.is_complete());
        assert_eq!(summ.recorded_slices(), 3);
        assert_eq!(summ.makespan(), full.makespan());
        assert_eq!(summ.busy_time(ProcId(0)), full.busy_time(ProcId(0)));
        assert_eq!(summ.busy_time(ProcId(1)), full.busy_time(ProcId(1)));
        assert!((summ.utilization() - full.utilization()).abs() < 1e-12);
    }

    #[test]
    fn ring_mode_keeps_last_n_in_order() {
        let mut t = ExecutionTrace::with_mode(1, TraceMode::Ring(3));
        for i in 0..7u64 {
            t.push(entry(0, i as usize, i, i * 10, i * 10 + 5));
        }
        t.seal();
        let frames: Vec<u64> = t.entries().iter().map(|e| e.frame).collect();
        assert_eq!(frames, vec![4, 5, 6], "last three slices, oldest first");
        assert_eq!(t.recorded_slices(), 7);
        assert!(!t.is_complete());
        // Aggregates still cover every slice.
        assert_eq!(t.makespan(), Micros(65));
        assert_eq!(t.busy_time(ProcId(0)), Micros(35));
        // seal() is idempotent.
        t.seal();
        assert_eq!(t.entries().len(), 3);
    }

    #[test]
    fn reset_clears_but_keeps_mode_change() {
        let mut t = ExecutionTrace::with_mode(1, TraceMode::Full);
        t.push(entry(0, 0, 0, 0, 10));
        t.reset(3, TraceMode::Summary);
        assert_eq!(t.n_procs(), 3);
        assert_eq!(t.mode(), TraceMode::Summary);
        assert!(t.entries().is_empty());
        assert_eq!(t.recorded_slices(), 0);
        assert_eq!(t.makespan(), Micros::ZERO);
        assert_eq!(t.busy_time(ProcId(2)), Micros::ZERO);
    }
}
