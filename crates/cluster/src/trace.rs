//! Execution traces: what ran where, when — the raw material for the paper's
//! Figures 4 and 5 (per-processor timelines with per-timestamp shading).

use crate::spec::ProcId;
use taskgraph::{Micros, TaskId};

/// One contiguous slice of processor time spent on one task activation (or
/// one chunk of a data-parallel activation). Preempted activations appear as
/// several entries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    /// The processor that ran the slice.
    pub proc: ProcId,
    /// The task.
    pub task: TaskId,
    /// The frame (timestamp / iteration) being processed.
    pub frame: u64,
    /// Chunk index and chunk count when this is a data-parallel chunk.
    pub chunk: Option<(u32, u32)>,
    /// Slice start (absolute simulated time).
    pub start: Micros,
    /// Slice end.
    pub end: Micros,
}

impl TraceEntry {
    /// Slice duration.
    #[must_use]
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }
}

/// A complete per-run trace.
#[derive(Clone, Debug, Default)]
pub struct ExecutionTrace {
    entries: Vec<TraceEntry>,
    n_procs: u32,
}

impl ExecutionTrace {
    /// An empty trace over `n_procs` processors.
    #[must_use]
    pub fn new(n_procs: u32) -> Self {
        ExecutionTrace {
            entries: Vec::new(),
            n_procs,
        }
    }

    /// Append a slice. Panics if the slice is malformed (end before start or
    /// processor out of range) — traces are produced by simulators, so a
    /// malformed entry is a simulator bug.
    pub fn push(&mut self, e: TraceEntry) {
        assert!(e.end >= e.start, "trace slice ends before it starts");
        assert!(e.proc.0 < self.n_procs, "trace slice on unknown processor");
        self.entries.push(e);
    }

    /// All slices in insertion (time) order.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of processors in the run.
    #[must_use]
    pub fn n_procs(&self) -> u32 {
        self.n_procs
    }

    /// Latest end time across all slices.
    #[must_use]
    pub fn makespan(&self) -> Micros {
        self.entries
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// Total busy time of one processor.
    #[must_use]
    pub fn busy_time(&self, proc: ProcId) -> Micros {
        self.entries
            .iter()
            .filter(|e| e.proc == proc)
            .map(TraceEntry::duration)
            .sum()
    }

    /// Fraction of `procs × makespan` spent busy.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let span = self.makespan();
        if span == Micros::ZERO || self.n_procs == 0 {
            return 0.0;
        }
        let busy: Micros = self.entries.iter().map(TraceEntry::duration).sum();
        busy.0 as f64 / (span.0 as f64 * f64::from(self.n_procs))
    }

    /// Verify no processor runs two slices at once. Returns the first
    /// overlapping pair if any — the basic sanity check every simulator run
    /// is subjected to in tests.
    #[must_use]
    pub fn find_overlap(&self) -> Option<(TraceEntry, TraceEntry)> {
        let mut by_proc: Vec<Vec<&TraceEntry>> = vec![Vec::new(); self.n_procs as usize];
        for e in &self.entries {
            by_proc[e.proc.0 as usize].push(e);
        }
        for slices in &mut by_proc {
            slices.sort_by_key(|e| (e.start, e.end));
            for w in slices.windows(2) {
                if w[1].start < w[0].end {
                    return Some(((*w[0]).clone(), (*w[1]).clone()));
                }
            }
        }
        None
    }

    /// Per-frame completion time: the max `end` over all slices of `frame`.
    #[must_use]
    pub fn frame_completion(&self, frame: u64) -> Option<Micros> {
        self.entries
            .iter()
            .filter(|e| e.frame == frame)
            .map(|e| e.end)
            .max()
    }

    /// Slices of a given task, in time order.
    #[must_use]
    pub fn task_slices(&self, task: TaskId) -> Vec<&TraceEntry> {
        let mut v: Vec<&TraceEntry> = self.entries.iter().filter(|e| e.task == task).collect();
        v.sort_by_key(|e| (e.start, e.end));
        v
    }

    /// Export as CSV (`proc,task,frame,chunk_idx,chunk_of,start_us,end_us`),
    /// for external plotting of the Fig. 4/5 timelines.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("proc,task,frame,chunk_idx,chunk_of,start_us,end_us\n");
        for e in &self.entries {
            let (ci, cn) = match e.chunk {
                Some((i, n)) => (i.to_string(), n.to_string()),
                None => (String::new(), String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                e.proc.0, e.task.0, e.frame, ci, cn, e.start.0, e.end.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(proc: u32, task: usize, frame: u64, start: u64, end: u64) -> TraceEntry {
        TraceEntry {
            proc: ProcId(proc),
            task: TaskId(task),
            frame,
            chunk: None,
            start: Micros(start),
            end: Micros(end),
        }
    }

    #[test]
    fn makespan_and_busy_time() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(entry(1, 1, 0, 5, 25));
        t.push(entry(0, 2, 0, 10, 15));
        assert_eq!(t.makespan(), Micros(25));
        assert_eq!(t.busy_time(ProcId(0)), Micros(15));
        assert_eq!(t.busy_time(ProcId(1)), Micros(20));
        let util = t.utilization();
        assert!((util - 35.0 / 50.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_detection() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(0, 0, 0, 0, 10));
        t.push(entry(0, 1, 0, 10, 20)); // touching is fine
        assert!(t.find_overlap().is_none());
        t.push(entry(0, 2, 0, 15, 18));
        assert!(t.find_overlap().is_some());
    }

    #[test]
    fn frame_completion_is_last_end() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 0, 3, 0, 10));
        t.push(entry(1, 1, 3, 10, 40));
        t.push(entry(0, 2, 4, 12, 20));
        assert_eq!(t.frame_completion(3), Some(Micros(40)));
        assert_eq!(t.frame_completion(4), Some(Micros(20)));
        assert_eq!(t.frame_completion(9), None);
    }

    #[test]
    fn task_slices_sorted() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(1, 7, 1, 20, 30));
        t.push(entry(0, 7, 0, 0, 10));
        let slices = t.task_slices(TaskId(7));
        assert_eq!(slices.len(), 2);
        assert!(slices[0].start < slices[1].start);
    }

    #[test]
    #[should_panic(expected = "unknown processor")]
    fn bad_proc_rejected() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(1, 0, 0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn reversed_slice_rejected() {
        let mut t = ExecutionTrace::new(1);
        t.push(entry(0, 0, 0, 10, 5));
    }

    #[test]
    fn csv_export_roundtrips_fields() {
        let mut t = ExecutionTrace::new(2);
        t.push(entry(0, 3, 7, 100, 250));
        t.push(TraceEntry {
            proc: ProcId(1),
            task: TaskId(3),
            frame: 7,
            chunk: Some((2, 4)),
            start: Micros(250),
            end: Micros(400),
        });
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "proc,task,frame,chunk_idx,chunk_of,start_us,end_us"
        );
        assert_eq!(lines[1], "0,3,7,,,100,250");
        assert_eq!(lines[2], "1,3,7,2,4,250,400");
    }

    #[test]
    fn empty_trace_is_sane() {
        let t = ExecutionTrace::new(4);
        assert_eq!(t.makespan(), Micros::ZERO);
        assert_eq!(t.utilization(), 0.0);
        assert!(t.find_overlap().is_none());
    }
}
