//! Workload descriptions: frame arrival clocks and piecewise-constant
//! application-state tracks (the regime signal driving constrained
//! dynamism).

use taskgraph::{AppState, Micros};

/// A periodic frame source: frame `f` becomes available at `f * period`.
/// "The primary tuning variable is the period at which the digitizer thread
/// executes" (§3.1); 33 ms is the NTSC minimum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameClock {
    /// Time between consecutive digitizer activations.
    pub period: Micros,
    /// Number of frames the run digitizes.
    pub n_frames: u64,
}

impl FrameClock {
    /// A clock with the given period and frame count.
    #[must_use]
    pub fn new(period: Micros, n_frames: u64) -> Self {
        assert!(period.0 > 0, "period must be positive");
        assert!(n_frames > 0, "must digitize at least one frame");
        FrameClock { period, n_frames }
    }

    /// NTSC rate (33 ms — the digitizer's minimum execution period).
    #[must_use]
    pub fn ntsc(n_frames: u64) -> Self {
        FrameClock::new(Micros::from_millis(33), n_frames)
    }

    /// Earliest time frame `f` can be digitized.
    #[must_use]
    pub fn arrival(&self, frame: u64) -> Micros {
        Micros(self.period.0 * frame)
    }
}

/// A piecewise-constant [`AppState`] over *frame numbers*: the number of
/// kiosk customers as a function of time. Constrained dynamism means this
/// track has few distinct values and changes infrequently.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StateTrack {
    /// `(first_frame, state)` pairs, sorted by frame, first entry at frame 0.
    changes: Vec<(u64, AppState)>,
}

impl StateTrack {
    /// A track that never changes.
    #[must_use]
    pub fn constant(state: AppState) -> Self {
        StateTrack {
            changes: vec![(0, state)],
        }
    }

    /// Build from change points. The first must start at frame 0; frames
    /// must be strictly increasing.
    #[must_use]
    pub fn from_changes(changes: Vec<(u64, AppState)>) -> Self {
        assert!(!changes.is_empty(), "state track cannot be empty");
        assert_eq!(changes[0].0, 0, "first change must cover frame 0");
        assert!(
            changes.windows(2).all(|w| w[0].0 < w[1].0),
            "change frames must be strictly increasing"
        );
        StateTrack { changes }
    }

    /// The state in force at `frame`.
    #[must_use]
    pub fn state_at(&self, frame: u64) -> AppState {
        let idx = self
            .changes
            .partition_point(|&(f, _)| f <= frame)
            .saturating_sub(1);
        self.changes[idx].1
    }

    /// All change points.
    #[must_use]
    pub fn changes(&self) -> &[(u64, AppState)] {
        &self.changes
    }

    /// The distinct states the track visits (the regime set the schedule
    /// table must cover).
    #[must_use]
    pub fn distinct_states(&self) -> Vec<AppState> {
        let mut v: Vec<AppState> = Vec::new();
        for &(_, s) in &self.changes {
            if !v.contains(&s) {
                v.push(s);
            }
        }
        v
    }

    /// Number of state changes (transitions, not counting the initial
    /// state).
    #[must_use]
    pub fn n_transitions(&self) -> usize {
        self.changes.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_arrivals_are_periodic() {
        let c = FrameClock::new(Micros::from_millis(33), 10);
        assert_eq!(c.arrival(0), Micros::ZERO);
        assert_eq!(c.arrival(3), Micros(99_000));
        assert_eq!(FrameClock::ntsc(5).period, Micros::from_millis(33));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = FrameClock::new(Micros::ZERO, 1);
    }

    #[test]
    fn constant_track() {
        let t = StateTrack::constant(AppState::new(3));
        assert_eq!(t.state_at(0), AppState::new(3));
        assert_eq!(t.state_at(1_000_000), AppState::new(3));
        assert_eq!(t.n_transitions(), 0);
    }

    #[test]
    fn piecewise_lookup() {
        let t = StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (100, AppState::new(3)),
            (250, AppState::new(2)),
        ]);
        assert_eq!(t.state_at(0), AppState::new(1));
        assert_eq!(t.state_at(99), AppState::new(1));
        assert_eq!(t.state_at(100), AppState::new(3));
        assert_eq!(t.state_at(249), AppState::new(3));
        assert_eq!(t.state_at(250), AppState::new(2));
        assert_eq!(t.state_at(10_000), AppState::new(2));
        assert_eq!(t.n_transitions(), 2);
    }

    #[test]
    fn distinct_states_deduplicate() {
        let t = StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (10, AppState::new(2)),
            (20, AppState::new(1)),
        ]);
        assert_eq!(
            t.distinct_states(),
            vec![AppState::new(1), AppState::new(2)]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_changes_rejected() {
        let _ = StateTrack::from_changes(vec![(0, AppState::new(1)), (0, AppState::new(2))]);
    }

    #[test]
    #[should_panic(expected = "frame 0")]
    fn missing_initial_state_rejected() {
        let _ = StateTrack::from_changes(vec![(5, AppState::new(1))]);
    }
}
