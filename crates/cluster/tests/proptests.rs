//! Property tests for the online simulator: conservation, determinism, and
//! trace sanity over random graphs and configurations.

use std::collections::BTreeMap;

use cluster::{
    simulate_online, simulate_online_ref, ClusterSpec, FrameClock, OnlineConfig, SimArena,
    TraceMode,
};
use proptest::prelude::*;
use taskgraph::{AppState, CostModel, Micros, SizeModel, TaskGraph, TaskGraphBuilder, TaskId};

/// Random layered DAG with one source (see cds-core's proptests for the
/// same shape).
fn random_graph(costs: Vec<u64>, edge_bits: u64) -> TaskGraph {
    let n = costs.len();
    let mut b = TaskGraphBuilder::new();
    let ids: Vec<TaskId> = costs
        .iter()
        .enumerate()
        .map(|(i, &c)| b.task(format!("t{i}"), CostModel::Const(Micros(c % 500 + 1))))
        .collect();
    for w in ids.windows(2) {
        let c = b.channel(format!("s{}", w[1].0), SizeModel::Const(8));
        b.produces(w[0], c);
        b.consumes(w[1], c);
    }
    let mut bits = edge_bits;
    for i in 0..n {
        for j in (i + 2)..n {
            bits = bits.rotate_left(9).wrapping_mul(0x9E3779B97F4A7C15);
            if bits & 3 == 0 {
                let c = b.channel(format!("x{i}_{j}"), SizeModel::Const(8));
                b.produces(ids[i], c);
                b.consumes(ids[j], c);
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every digitized frame completes exactly once; the trace never
    /// overlaps; runs are deterministic.
    #[test]
    fn online_sim_conserves_frames(
        costs in proptest::collection::vec(1u64..500, 2..6),
        edges in any::<u64>(),
        procs in 1u32..5,
        period in 1u64..2000,
        capacity in 1usize..6,
        quantum in proptest::option::of(10u64..300),
    ) {
        let g = random_graph(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let mut cfg = OnlineConfig::new(
            FrameClock::new(Micros(period), 12),
            AppState::new(1),
        );
        cfg.channel_capacity = capacity;
        cfg.quantum = quantum.map(Micros);
        let a = simulate_online(&g, &c, cfg.clone());
        prop_assert_eq!(a.frames.len(), 12);
        prop_assert!(a.frames.iter().all(|f| f.completed_at.is_some()));
        prop_assert!(a.trace.find_overlap().is_none());
        // Every (task, frame) pair ran.
        for f in 0..12u64 {
            for t in g.task_ids() {
                prop_assert!(
                    a.trace.entries().iter().any(|e| e.task == t && e.frame == f),
                    "task {t} frame {f} missing"
                );
            }
        }
        // Determinism.
        let b = simulate_online(&g, &c, cfg);
        prop_assert_eq!(a.trace.entries(), b.trace.entries());
    }

    /// Completion order respects dependences: a frame's sink completion
    /// never precedes its source slice.
    #[test]
    fn online_sim_respects_causality(
        costs in proptest::collection::vec(1u64..300, 2..6),
        edges in any::<u64>(),
        procs in 1u32..4,
    ) {
        let g = random_graph(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let cfg = OnlineConfig::new(FrameClock::new(Micros(50), 8), AppState::new(1));
        let out = simulate_online(&g, &c, cfg);
        for rec in &out.frames {
            prop_assert!(rec.completed_at.unwrap() >= rec.digitized_at);
        }
        // Per frame, every consumer slice starts at/after its producer's
        // last slice ends.
        for (from, to, _) in g.edges() {
            for f in 0..8u64 {
                let prod_end = out
                    .trace
                    .entries()
                    .iter()
                    .filter(|e| e.task == from && e.frame == f)
                    .map(|e| e.end)
                    .max()
                    .unwrap();
                let cons_start = out
                    .trace
                    .entries()
                    .iter()
                    .filter(|e| e.task == to && e.frame == f)
                    .map(|e| e.start)
                    .min()
                    .unwrap();
                prop_assert!(
                    cons_start >= prod_end,
                    "frame {f}: {to} started {cons_start:?} before {from} ended {prod_end:?}"
                );
            }
        }
    }

    /// Skip mode never deadlocks and never duplicates work: each (task,
    /// frame) runs at most once.
    #[test]
    fn skip_mode_never_duplicates(
        costs in proptest::collection::vec(1u64..400, 2..6),
        edges in any::<u64>(),
        procs in 1u32..4,
        period in 1u64..100,
    ) {
        let g = random_graph(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let mut cfg = OnlineConfig::new(FrameClock::new(Micros(period), 16), AppState::new(1));
        cfg.skip_stale = true;
        cfg.channel_capacity = 8;
        let out = simulate_online(&g, &c, cfg);
        prop_assert!(out.trace.find_overlap().is_none());
        let mut seen = std::collections::HashSet::new();
        for e in out.trace.entries() {
            // Whole serial activations (chunkless graphs here) appear once
            // unless preempted — no quantum configured, so exactly once.
            prop_assert!(
                seen.insert((e.task, e.frame, e.start)),
                "duplicate slice {e:?}"
            );
        }
        let _ = BTreeMap::<u8, u8>::new();
    }

    /// The overhauled arena engine is bit-identical to the frozen
    /// pre-overhaul reference engine — trace, frames, metrics and makespan —
    /// over random graphs, processor counts, capacities and quanta.
    #[test]
    fn arena_engine_matches_reference_engine(
        costs in proptest::collection::vec(1u64..500, 2..6),
        edges in any::<u64>(),
        procs in 1u32..5,
        period in 1u64..2000,
        capacity in 1usize..6,
        quantum in proptest::option::of(10u64..300),
        skip in any::<bool>(),
    ) {
        let g = random_graph(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let mut cfg = OnlineConfig::new(
            FrameClock::new(Micros(period), 10),
            AppState::new(1),
        );
        cfg.channel_capacity = capacity;
        cfg.quantum = quantum.map(Micros);
        cfg.skip_stale = skip;
        let reference = simulate_online_ref(&g, &c, cfg.clone());
        let new = simulate_online(&g, &c, cfg);
        prop_assert_eq!(reference.trace.entries(), new.trace.entries());
        prop_assert_eq!(&reference.frames, &new.frames);
        prop_assert_eq!(reference.metrics, new.metrics);
        prop_assert_eq!(reference.makespan, new.makespan);
    }

    /// Trace recording never perturbs simulation results: Summary, Ring and
    /// Off runs produce `Metrics` and makespans identical to Full — and one
    /// reused arena serves all four modes back to back.
    #[test]
    fn trace_mode_never_perturbs_metrics(
        costs in proptest::collection::vec(1u64..500, 2..6),
        edges in any::<u64>(),
        procs in 1u32..5,
        period in 1u64..1500,
        quantum in proptest::option::of(10u64..300),
    ) {
        let g = random_graph(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let mut cfg = OnlineConfig::new(
            FrameClock::new(Micros(period), 10),
            AppState::new(1),
        );
        cfg.quantum = quantum.map(Micros);
        let mut arena = SimArena::new();
        cfg.trace_mode = TraceMode::Full;
        let full = arena.simulate(&g, &c, &cfg);
        let full_slices = arena.trace().recorded_slices();
        for mode in [TraceMode::Summary, TraceMode::Ring(4), TraceMode::Off] {
            cfg.trace_mode = mode;
            let other = arena.simulate(&g, &c, &cfg);
            prop_assert_eq!(other.metrics, full.metrics, "mode {:?}", mode);
            prop_assert_eq!(other.makespan, full.makespan, "mode {:?}", mode);
            if mode != TraceMode::Off {
                prop_assert_eq!(arena.trace().recorded_slices(), full_slices);
            }
        }
    }
}
