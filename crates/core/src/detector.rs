//! Regime detection: constrained dynamism requires that "state changes are
//! detectable" (§2.1). In the kiosk, "departures and arrivals can be easily
//! detected using standard vision techniques" — the peak-detection output of
//! each processed frame reveals how many people are present.
//!
//! Raw per-frame detections are noisy (a person briefly occluded should not
//! trigger a schedule switch), so the detector debounces: a new state must
//! be observed for `confirm_after` consecutive frames before it is reported.
//! This also encodes the third property of constrained dynamism — "state
//! changes are infrequent" — as a filter against spurious flapping.

use taskgraph::AppState;

/// A debounced state-change detector, optionally asymmetric: the kiosk
/// should *greet* a new arrival promptly (switch up fast) but not drop to a
/// lighter schedule the moment someone is briefly occluded (switch down
/// slowly).
#[derive(Clone, Debug)]
pub struct RegimeDetector {
    confirm_up: usize,
    confirm_down: usize,
    current: AppState,
    pending: Option<(AppState, usize)>,
    switches: u64,
    observations: u64,
}

impl RegimeDetector {
    /// A detector starting in `initial`, requiring `confirm_after`
    /// consecutive observations of a new state before confirming it
    /// (`confirm_after = 1` switches immediately).
    #[must_use]
    pub fn new(initial: AppState, confirm_after: usize) -> Self {
        Self::asymmetric(initial, confirm_after, confirm_after)
    }

    /// A detector with different confirmation windows for transitions to
    /// *more* models (`confirm_up`) and to *fewer* (`confirm_down`).
    #[must_use]
    pub fn asymmetric(initial: AppState, confirm_up: usize, confirm_down: usize) -> Self {
        assert!(
            confirm_up >= 1 && confirm_down >= 1,
            "must confirm after at least one frame"
        );
        RegimeDetector {
            confirm_up,
            confirm_down,
            current: initial,
            pending: None,
            switches: 0,
            observations: 0,
        }
    }

    /// Feed one per-frame observation. Returns `Some(new_state)` exactly
    /// when a state change is confirmed.
    pub fn observe(&mut self, observed: AppState) -> Option<AppState> {
        self.observations += 1;
        if observed == self.current {
            self.pending = None;
            return None;
        }
        let count = match &self.pending {
            Some((s, c)) if *s == observed => c + 1,
            _ => 1,
        };
        let needed = if observed.n_models > self.current.n_models {
            self.confirm_up
        } else {
            self.confirm_down
        };
        if count >= needed {
            self.pending = None;
            self.current = observed;
            self.switches += 1;
            Some(observed)
        } else {
            self.pending = Some((observed, count));
            None
        }
    }

    /// The currently confirmed state.
    #[must_use]
    pub fn current(&self) -> AppState {
        self.current
    }

    /// Number of confirmed switches so far.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of observations fed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_mode_switches_on_first_observation() {
        let mut d = RegimeDetector::new(AppState::new(1), 1);
        assert_eq!(d.observe(AppState::new(3)), Some(AppState::new(3)));
        assert_eq!(d.current(), AppState::new(3));
        assert_eq!(d.switches(), 1);
    }

    #[test]
    fn debounce_filters_single_frame_blips() {
        let mut d = RegimeDetector::new(AppState::new(2), 3);
        // A one-frame occlusion: 2 → 1 → 2.
        assert_eq!(d.observe(AppState::new(1)), None);
        assert_eq!(d.observe(AppState::new(2)), None);
        assert_eq!(d.current(), AppState::new(2));
        assert_eq!(d.switches(), 0);
    }

    #[test]
    fn sustained_change_confirms_after_threshold() {
        let mut d = RegimeDetector::new(AppState::new(2), 3);
        assert_eq!(d.observe(AppState::new(3)), None);
        assert_eq!(d.observe(AppState::new(3)), None);
        assert_eq!(d.observe(AppState::new(3)), Some(AppState::new(3)));
        // Further identical observations do nothing.
        assert_eq!(d.observe(AppState::new(3)), None);
        assert_eq!(d.switches(), 1);
        assert_eq!(d.observations(), 4);
    }

    #[test]
    fn alternating_noise_never_confirms() {
        let mut d = RegimeDetector::new(AppState::new(1), 2);
        for _ in 0..10 {
            assert_eq!(d.observe(AppState::new(2)), None);
            assert_eq!(d.observe(AppState::new(1)), None);
        }
        assert_eq!(d.switches(), 0);
    }

    #[test]
    fn pending_state_resets_when_observation_changes() {
        let mut d = RegimeDetector::new(AppState::new(1), 3);
        assert_eq!(d.observe(AppState::new(2)), None);
        assert_eq!(d.observe(AppState::new(3)), None);
        assert_eq!(d.observe(AppState::new(3)), None);
        // 3 has only been seen twice consecutively.
        assert_eq!(d.observe(AppState::new(3)), Some(AppState::new(3)));
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_confirmation_rejected() {
        let _ = RegimeDetector::new(AppState::new(1), 0);
    }

    #[test]
    fn asymmetric_greets_fast_demotes_slowly() {
        // Up after 1 frame, down after 3.
        let mut d = RegimeDetector::asymmetric(AppState::new(1), 1, 3);
        // Arrival: confirmed immediately.
        assert_eq!(d.observe(AppState::new(2)), Some(AppState::new(2)));
        // Departure: needs three consecutive frames.
        assert_eq!(d.observe(AppState::new(1)), None);
        assert_eq!(d.observe(AppState::new(1)), None);
        assert_eq!(d.observe(AppState::new(1)), Some(AppState::new(1)));
        assert_eq!(d.switches(), 2);
    }

    #[test]
    fn asymmetric_occlusion_blip_does_not_demote() {
        let mut d = RegimeDetector::asymmetric(AppState::new(3), 1, 4);
        for _ in 0..3 {
            assert_eq!(d.observe(AppState::new(2)), None); // occlusion
            assert_eq!(d.observe(AppState::new(3)), None); // back
        }
        assert_eq!(d.current(), AppState::new(3));
        assert_eq!(d.switches(), 0);
    }
}
