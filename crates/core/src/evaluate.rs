//! Deterministic evaluation of a pipelined schedule against a frame clock:
//! unrolls the timetable into an [`ExecutionTrace`] with per-frame records,
//! directly comparable to online-scheduler runs (they share the metric
//! types). This produces the "optimal" point of Fig. 3 and the timelines of
//! Figs. 4–5.

use cluster::{
    ClusterSpec, ExecutionTrace, FrameClock, FrameRecord, Metrics, SimOutcome, TraceEntry,
};
use taskgraph::{Micros, TaskGraph};

use crate::expand::ExpandedGraph;
use crate::schedule::{IterationSchedule, PipelinedSchedule, Placement};

/// Unroll `sched` over the frames of `clock`. Iteration `f` starts at
/// `max(arrival(f), origin(f-1) + II)`: the digitizer cannot run before the
/// frame exists, and the pipeline cannot exceed its initiation rate.
#[must_use]
pub fn evaluate_schedule(
    sched: &PipelinedSchedule,
    graph: &TaskGraph,
    clock: FrameClock,
    warmup_frames: usize,
) -> SimOutcome {
    assert!(
        sched.find_collision().is_none(),
        "refusing to evaluate a colliding schedule"
    );
    let sources = graph.sources();
    let source_end = digitize_offset(&sched.iteration, graph);

    let mut trace = ExecutionTrace::new(sched.n_procs);
    let mut frames = Vec::with_capacity(clock.n_frames as usize);
    let mut origin = Micros::ZERO;
    for f in 0..clock.n_frames {
        origin = if f == 0 {
            clock.arrival(0)
        } else {
            clock.arrival(f).max(origin + sched.ii)
        };
        for p in &sched.iteration.placements {
            trace.push(TraceEntry {
                proc: sched.proc_of(p, f),
                task: p.task,
                frame: f,
                chunk: p.chunk,
                start: origin + p.start,
                end: origin + p.end,
            });
        }
        frames.push(FrameRecord {
            frame: f,
            digitized_at: origin + source_end,
            completed_at: Some(origin + sched.iteration.latency),
        });
    }
    let _ = sources;
    let metrics = Metrics::from_records(&frames, warmup_frames);
    let makespan = trace.makespan();
    SimOutcome {
        trace,
        frames,
        metrics,
        makespan,
    }
}

/// Offset within the iteration at which digitization completes (the max end
/// over source-task placements; zero if the schedule has no source
/// placements, e.g. a synthetic iteration).
#[must_use]
pub fn digitize_offset(iter: &IterationSchedule, graph: &TaskGraph) -> Micros {
    let sources = graph.sources();
    iter.placements
        .iter()
        .filter(|p| sources.contains(&p.task))
        .map(|p| p.end)
        .max()
        .unwrap_or(Micros::ZERO)
}

/// Re-time an iteration schedule with new instance durations while keeping
/// its *structure* (processor assignment and per-processor order) fixed:
/// what actually happens when a schedule precomputed for one regime executes
/// while the application is in another. `expanded` must be built with
/// [`ExpandedGraph::build_with_costs`] using the schedule's own state as the
/// structural state.
#[must_use]
pub fn replay_iteration(
    iter: &IterationSchedule,
    expanded: &ExpandedGraph,
    cluster: &ClusterSpec,
) -> IterationSchedule {
    let n = iter.placements.len();
    assert_eq!(n, expanded.len(), "schedule/expansion mismatch");

    // Constraint graph: dependence edges plus per-processor sequence edges.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0usize; n];
    for (i, inst) in expanded.instances().iter().enumerate() {
        for e in &inst.preds {
            edges[e.from].push(i);
            indeg[i] += 1;
        }
    }
    let mut by_proc: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, p) in iter.placements.iter().enumerate() {
        by_proc.entry(p.proc.0).or_default().push(i);
    }
    for seq in by_proc.values_mut() {
        seq.sort_by_key(|&i| (iter.placements[i].start, i));
        for w in seq.windows(2) {
            edges[w[0]].push(w[1]);
            indeg[w[1]] += 1;
        }
    }

    // Forward pass in topological order of the combined constraints.
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut new: Vec<Option<Placement>> = vec![None; n];
    let mut proc_ready: std::collections::HashMap<u32, Micros> = Default::default();
    let mut done = 0usize;
    while let Some(i) = ready.pop() {
        done += 1;
        let old = iter.placements[i];
        let mut start = proc_ready.get(&old.proc.0).copied().unwrap_or(Micros::ZERO);
        for e in &expanded.instances()[i].preds {
            let pred = new[e.from].expect("preds retimed first");
            let comm = cluster
                .comm()
                .transfer(e.bytes, cluster.locality(pred.proc, old.proc));
            start = start.max(pred.end + e.delay + comm);
        }
        let end = start + expanded.instances()[i].duration;
        new[i] = Some(Placement {
            task: old.task,
            chunk: old.chunk,
            proc: old.proc,
            start,
            end,
        });
        proc_ready.insert(old.proc.0, end);
        for &s in &edges[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    assert_eq!(done, n, "replay constraint graph must be acyclic");

    let placements: Vec<Placement> = new.into_iter().map(Option::unwrap).collect();
    let latency = placements
        .iter()
        .map(|p| p.end)
        .max()
        .unwrap_or(Micros::ZERO);
    IterationSchedule {
        placements,
        latency,
        state: *expanded.state(),
        decomp: iter.decomp.clone(),
    }
}

/// Re-time an iteration with multiplicatively jittered instance durations:
/// instance `i`'s duration is scaled by `factors[i]` (1.0 = nominal). The
/// schedule's structure (placements, per-processor order) is kept, as in
/// [`replay_iteration`] — this models executing a precomputed schedule when
/// real task times wander around the calibrated means.
#[must_use]
pub fn replay_with_jitter(
    iter: &IterationSchedule,
    expanded: &ExpandedGraph,
    cluster: &ClusterSpec,
    factors: &[f64],
) -> IterationSchedule {
    assert_eq!(factors.len(), expanded.len(), "one factor per instance");
    assert!(
        factors.iter().all(|&f| f.is_finite() && f >= 0.0),
        "factors must be finite and non-negative"
    );
    // Build a jittered copy of the expansion by scaling durations.
    let mut jittered = expanded.clone();
    jittered.scale_durations(factors);
    replay_iteration(iter, &jittered, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_schedule, OptimalConfig};
    use crate::pipeline::naive_pipeline;
    use cluster::ClusterSpec;
    use taskgraph::{builders, AppState};

    #[test]
    fn evaluation_has_no_overlaps_and_steady_latency() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let sched = naive_pipeline(&g, &c, &state);
        let clock = FrameClock::new(Micros::from_millis(100), 16);
        let out = evaluate_schedule(&sched, &g, clock, 0);
        assert!(out.trace.find_overlap().is_none());
        // Every frame has identical latency (schedules are deterministic).
        let lats: Vec<Micros> = out.frames.iter().map(|f| f.latency().unwrap()).collect();
        assert!(lats.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn slow_clock_gates_throughput() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(2);
        let sched = naive_pipeline(&g, &c, &state);
        // Period far above II: completions spaced by the period.
        let period = sched.ii * 10;
        let out = evaluate_schedule(&sched, &g, FrameClock::new(period, 10), 1);
        let expect = 1.0 / period.as_secs_f64();
        assert!((out.metrics.throughput_hz - expect).abs() / expect < 0.01);
    }

    #[test]
    fn fast_clock_runs_at_ii() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(2);
        let sched = naive_pipeline(&g, &c, &state);
        let out = evaluate_schedule(&sched, &g, FrameClock::new(Micros(1), 10), 1);
        let expect = sched.throughput_hz();
        assert!((out.metrics.throughput_hz - expect).abs() / expect < 0.01);
        // Uniformity is perfect: II spacing.
        assert!(out.metrics.uniformity_cov < 1e-9);
    }

    #[test]
    fn optimal_point_dominates_pipeline_latency() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let clock = FrameClock::new(Micros::from_millis(33), 12);
        let naive = evaluate_schedule(&naive_pipeline(&g, &c, &state), &g, clock, 2);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let best = evaluate_schedule(&opt.best, &g, clock, 2);
        assert!(best.metrics.mean_latency < naive.metrics.mean_latency);
    }

    #[test]
    fn replay_with_same_state_is_identity() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build(&g, &state, &opt.best.iteration.decomp);
        let replayed = replay_iteration(&opt.best.iteration, &e, &c);
        assert_eq!(replayed.latency, opt.best.iteration.latency);
    }

    #[test]
    fn replay_with_heavier_state_stretches() {
        // A schedule built for 2 models replayed while 8 are present.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let light = AppState::new(2);
        let heavy = AppState::new(8);
        let opt = optimal_schedule(&g, &c, &light, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build_with_costs(
            &g,
            &light,
            &heavy,
            &opt.best.iteration.decomp,
        );
        let replayed = replay_iteration(&opt.best.iteration, &e, &c);
        assert!(replayed.latency > opt.best.iteration.latency);
        // And it is far worse than the schedule natively optimal for 8.
        let native = optimal_schedule(&g, &c, &heavy, &OptimalConfig::default());
        assert!(replayed.latency > native.minimal_latency);
    }

    #[test]
    fn jitter_of_one_is_identity() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build(&g, &state, &opt.best.iteration.decomp);
        let factors = vec![1.0; e.len()];
        let replayed = replay_with_jitter(&opt.best.iteration, &e, &c, &factors);
        assert_eq!(replayed.placements, opt.best.iteration.placements);
    }

    #[test]
    fn uniform_slowdown_scales_latency_proportionally() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(2);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build(&g, &state, &opt.best.iteration.decomp);
        let factors = vec![1.5; e.len()];
        let replayed = replay_with_jitter(&opt.best.iteration, &e, &c, &factors);
        let ratio = replayed.latency.as_secs_f64() / opt.best.iteration.latency.as_secs_f64();
        assert!((ratio - 1.5).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn single_slow_chunk_stretches_the_join() {
        // Slowing one T4 chunk delays everything behind the joiner.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build(&g, &state, &opt.best.iteration.decomp);
        let mut factors = vec![1.0; e.len()];
        let chunk_idx = e
            .instances()
            .iter()
            .position(|i| i.chunk.is_some())
            .expect("has chunks");
        factors[chunk_idx] = 2.0;
        let replayed = replay_with_jitter(&opt.best.iteration, &e, &c, &factors);
        assert!(replayed.latency > opt.best.iteration.latency);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn bad_jitter_rejected() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let state = AppState::new(1);
        let opt = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build(&g, &state, &opt.best.iteration.decomp);
        let factors = vec![f64::NAN; e.len()];
        let _ = replay_with_jitter(&opt.best.iteration, &e, &c, &factors);
    }

    #[test]
    fn replay_preserves_structure() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let light = AppState::new(2);
        let heavy = AppState::new(4);
        let opt = optimal_schedule(&g, &c, &light, &OptimalConfig::default());
        let e = crate::expand::ExpandedGraph::build_with_costs(
            &g,
            &light,
            &heavy,
            &opt.best.iteration.decomp,
        );
        let replayed = replay_iteration(&opt.best.iteration, &e, &c);
        for (old, new) in opt
            .best
            .iteration
            .placements
            .iter()
            .zip(&replayed.placements)
        {
            assert_eq!(old.proc, new.proc);
            assert_eq!(old.task, new.task);
            assert_eq!(old.chunk, new.chunk);
        }
    }

    #[test]
    fn digitizer_offset_found() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(1);
        let sched = naive_pipeline(&g, &c, &state);
        let off = digitize_offset(&sched.iteration, &g);
        assert!(off > Micros::ZERO && off < sched.iteration.latency);
    }
}
