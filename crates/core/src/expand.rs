//! Expansion of a task graph into the per-iteration *instance DAG* the
//! scheduler actually places: one instance per serial task, or one instance
//! per chunk for a data-parallel task under a chosen decomposition.
//!
//! Splitter/joiner activation costs become *edge delays* (they gate when a
//! chunk may start and when successors may start) rather than processor
//! time — they are small compared to chunk work, and the per-chunk overhead
//! that does consume processor time is already folded into every chunk's
//! duration by [`taskgraph::DataParallelSpec::plan`].

use std::collections::BTreeMap;

use taskgraph::{AppState, Decomposition, Micros, TaskGraph, TaskId};

/// A dependence edge into an instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PredEdge {
    /// Index of the predecessor instance.
    pub from: usize,
    /// Fixed delay (splitter/joiner activation costs along this edge).
    pub delay: Micros,
    /// Bytes transferred, for locality-dependent communication cost.
    pub bytes: u64,
}

/// One schedulable unit: a serial task activation or one chunk of a
/// data-parallel activation.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The originating task.
    pub task: TaskId,
    /// `(index, count)` when this is a chunk.
    pub chunk: Option<(u32, u32)>,
    /// Execution time (per-chunk overhead included for chunks).
    pub duration: Micros,
    /// Incoming dependence edges.
    pub preds: Vec<PredEdge>,
}

/// The per-iteration instance DAG for one (graph, state, decomposition)
/// triple.
#[derive(Clone, Debug)]
pub struct ExpandedGraph {
    instances: Vec<Instance>,
    /// `succs[i]` = indices of instances depending on instance `i`.
    succs: Vec<Vec<usize>>,
    /// Longest-path-to-exit (duration + delays) from each instance's start.
    bottom: Vec<Micros>,
    state: AppState,
    decomp: BTreeMap<TaskId, Decomposition>,
}

impl ExpandedGraph {
    /// Expand `graph` under `state`, decomposing each task listed in
    /// `decomp`. Tasks absent from the map (or clamping to one chunk) stay
    /// serial. Panics on non-DP tasks in `decomp` or invalid graphs.
    #[must_use]
    pub fn build(
        graph: &TaskGraph,
        state: &AppState,
        decomp: &BTreeMap<TaskId, Decomposition>,
    ) -> Self {
        Self::build_with_costs(graph, state, state, decomp)
    }

    /// Like [`build`](Self::build), but with the *structure* (chunk counts,
    /// via MP clamping) fixed by `structural_state` while durations and byte
    /// counts are evaluated at `cost_state`. This models executing a
    /// schedule precomputed for one regime while the application is actually
    /// in another — the mismatch the regime switcher exists to avoid.
    #[must_use]
    pub fn build_with_costs(
        graph: &TaskGraph,
        structural_state: &AppState,
        cost_state: &AppState,
        decomp: &BTreeMap<TaskId, Decomposition>,
    ) -> Self {
        let state = structural_state;
        graph.validate().expect("graph must validate");
        // Per task: plan (chunk count etc.) and the instance index range.
        let mut first_instance = vec![usize::MAX; graph.n_tasks()];
        let mut plans = vec![None; graph.n_tasks()];
        let mut instances: Vec<Instance> = Vec::new();

        for t in graph.task_ids() {
            let task = graph.task(t);
            let plan = decomp.get(&t).map(|d| {
                let dp = task
                    .dp
                    .as_ref()
                    .unwrap_or_else(|| panic!("task {} is not data parallel", task.name));
                dp.plan_mixed(task.cost.eval(cost_state), *d, state, cost_state)
            });
            first_instance[t.0] = instances.len();
            match &plan {
                Some(p) if p.chunks > 1 => {
                    for i in 0..p.chunks {
                        instances.push(Instance {
                            task: t,
                            chunk: Some((i, p.chunks)),
                            duration: p.chunk_cost,
                            preds: Vec::new(),
                        });
                    }
                }
                _ => {
                    instances.push(Instance {
                        task: t,
                        chunk: None,
                        duration: task.cost.eval(cost_state),
                        preds: Vec::new(),
                    });
                }
            }
            plans[t.0] = plan;
        }

        let n_instances_of = |t: TaskId| -> u32 {
            match &plans[t.0] {
                Some(p) if p.chunks > 1 => p.chunks,
                _ => 1,
            }
        };

        // Dependence edges: all-to-all between the instance sets of
        // producer and consumer, with split/join delays and divided bytes.
        for (from_t, to_t, chan) in graph.edges() {
            let bytes_full = graph.channel(chan).item_size.eval(cost_state);
            let nf = n_instances_of(from_t);
            let nt = n_instances_of(to_t);
            let join_delay = match &plans[from_t.0] {
                Some(p) if p.chunks > 1 => p.join_cost,
                _ => Micros::ZERO,
            };
            let split_delay = match &plans[to_t.0] {
                Some(p) if p.chunks > 1 => p.split_cost,
                _ => Micros::ZERO,
            };
            let bytes = bytes_full / u64::from(nt.max(1));
            for fi in 0..nf {
                let from = first_instance[from_t.0] + fi as usize;
                for ti in 0..nt {
                    let to = first_instance[to_t.0] + ti as usize;
                    instances[to].preds.push(PredEdge {
                        from,
                        delay: join_delay + split_delay,
                        bytes,
                    });
                }
            }
        }

        let mut succs = vec![Vec::new(); instances.len()];
        for (i, inst) in instances.iter().enumerate() {
            for e in &inst.preds {
                succs[e.from].push(i);
            }
        }

        // Bottom levels over the instance DAG (durations + fixed delays;
        // communication is excluded so this stays a valid lower bound for
        // any placement).
        let order = topo(&instances, &succs);
        let mut bottom = vec![Micros::ZERO; instances.len()];
        for &i in order.iter().rev() {
            let mut best = Micros::ZERO;
            for &s in &succs[i] {
                let delay = instances[s]
                    .preds
                    .iter()
                    .find(|e| e.from == i)
                    .map(|e| e.delay)
                    .unwrap_or(Micros::ZERO);
                best = best.max(bottom[s] + delay);
            }
            bottom[i] = instances[i].duration + best;
        }

        ExpandedGraph {
            instances,
            succs,
            bottom,
            state: *state,
            decomp: decomp.clone(),
        }
    }

    /// The instances, in task order (chunks of one task are contiguous).
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the DAG is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Successor indices of instance `i`.
    #[must_use]
    pub fn succs(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Longest path (durations + delays) from the start of instance `i` to
    /// the end of the iteration.
    #[must_use]
    pub fn bottom_level(&self, i: usize) -> Micros {
        self.bottom[i]
    }

    /// Critical path length of the instance DAG (latency lower bound).
    #[must_use]
    pub fn span(&self) -> Micros {
        self.bottom.iter().copied().max().unwrap_or(Micros::ZERO)
    }

    /// Total instance work.
    #[must_use]
    pub fn work(&self) -> Micros {
        self.instances.iter().map(|i| i.duration).sum()
    }

    /// The state this expansion was built for.
    #[must_use]
    pub fn state(&self) -> &AppState {
        &self.state
    }

    /// The decomposition this expansion was built for.
    #[must_use]
    pub fn decomp(&self) -> &BTreeMap<TaskId, Decomposition> {
        &self.decomp
    }

    /// A topological order of instance indices.
    #[must_use]
    pub fn topo_order(&self) -> Vec<usize> {
        topo(&self.instances, &self.succs)
    }

    /// Scale every instance duration by the matching factor (rounded to the
    /// nearest microsecond) and recompute bottom levels. Used for
    /// cost-noise robustness analysis.
    pub fn scale_durations(&mut self, factors: &[f64]) {
        assert_eq!(factors.len(), self.instances.len());
        for (inst, &f) in self.instances.iter_mut().zip(factors) {
            inst.duration = Micros((inst.duration.0 as f64 * f).round() as u64);
        }
        // Recompute bottom levels for the new durations.
        let order = topo(&self.instances, &self.succs);
        for &i in order.iter().rev() {
            let mut best = Micros::ZERO;
            for &s in &self.succs[i] {
                let delay = self.instances[s]
                    .preds
                    .iter()
                    .find(|e| e.from == i)
                    .map(|e| e.delay)
                    .unwrap_or(Micros::ZERO);
                best = best.max(self.bottom[s] + delay);
            }
            self.bottom[i] = self.instances[i].duration + best;
        }
    }
}

fn topo(instances: &[Instance], succs: &[Vec<usize>]) -> Vec<usize> {
    let mut indeg: Vec<usize> = instances.iter().map(|i| i.preds.len()).collect();
    let mut ready: Vec<usize> = (0..instances.len()).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(instances.len());
    while let Some(i) = ready.pop() {
        out.push(i);
        for &s in &succs[i] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                ready.push(s);
            }
        }
    }
    assert_eq!(out.len(), instances.len(), "instance DAG must be acyclic");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn tracker_expansion(n_models: u32, fp: u32, mp: u32) -> (TaskGraph, ExpandedGraph) {
        let g = builders::color_tracker();
        let t4 = g.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(fp, mp));
        let e = ExpandedGraph::build(&g, &AppState::new(n_models), &d);
        (g, e)
    }

    use taskgraph::TaskGraph;

    #[test]
    fn serial_expansion_is_one_instance_per_task() {
        let g = builders::color_tracker();
        let e = ExpandedGraph::build(&g, &AppState::new(4), &BTreeMap::new());
        assert_eq!(e.len(), g.n_tasks());
        assert!(e.instances().iter().all(|i| i.chunk.is_none()));
        // Edge count equals graph edge count.
        let n_edges: usize = e.instances().iter().map(|i| i.preds.len()).sum();
        assert_eq!(n_edges, g.edges().len());
    }

    #[test]
    fn dp_expansion_creates_chunks() {
        let (g, e) = tracker_expansion(8, 1, 8);
        assert_eq!(e.len(), g.n_tasks() - 1 + 8);
        let chunks: Vec<&Instance> = e.instances().iter().filter(|i| i.chunk.is_some()).collect();
        assert_eq!(chunks.len(), 8);
        assert!(chunks.iter().all(|c| c.chunk.unwrap().1 == 8));
        // All chunks share the same duration.
        assert!(chunks.windows(2).all(|w| w[0].duration == w[1].duration));
    }

    #[test]
    fn chunk_fan_in_and_fan_out() {
        let (g, e) = tracker_expansion(8, 1, 4);
        let t5 = g.task_by_name("Peak Detection").unwrap();
        let t5_inst = e.instances().iter().position(|i| i.task == t5).unwrap();
        // T5 waits for all four chunks.
        assert_eq!(e.instances()[t5_inst].preds.len(), 4);
        // Each chunk has three predecessors (frame, color model, mask).
        for (i, inst) in e.instances().iter().enumerate() {
            if inst.chunk.is_some() {
                assert_eq!(inst.preds.len(), 3, "instance {i}");
            }
        }
    }

    #[test]
    fn clamped_decomposition_stays_serial() {
        // MP=8 with one model clamps to one chunk → serial instance.
        let (g, e) = tracker_expansion(1, 1, 8);
        assert_eq!(e.len(), g.n_tasks());
        assert!(e.instances().iter().all(|i| i.chunk.is_none()));
    }

    #[test]
    fn span_shrinks_with_decomposition() {
        let (_, serial) = tracker_expansion(8, 1, 1);
        let (_, dp) = tracker_expansion(8, 1, 8);
        assert!(dp.span() < serial.span());
        // But total work grows (per-chunk overhead).
        assert!(dp.work() > serial.work());
    }

    #[test]
    fn bottom_levels_bound_span() {
        let (_, e) = tracker_expansion(8, 2, 4);
        let max = (0..e.len()).map(|i| e.bottom_level(i)).max().unwrap();
        assert_eq!(max, e.span());
        for i in 0..e.len() {
            assert!(e.bottom_level(i) >= e.instances()[i].duration);
        }
    }

    #[test]
    fn topo_order_valid() {
        let (_, e) = tracker_expansion(8, 2, 2);
        let order = e.topo_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; e.len()];
            for (idx, &i) in order.iter().enumerate() {
                p[i] = idx;
            }
            p
        };
        for (i, inst) in e.instances().iter().enumerate() {
            for e2 in &inst.preds {
                assert!(pos[e2.from] < pos[i]);
            }
        }
    }

    #[test]
    fn split_join_become_edge_delays() {
        let g = {
            use taskgraph::{CostModel, DataParallelSpec, SizeModel, TaskGraphBuilder};
            let mut b = TaskGraphBuilder::new();
            let src = b.task("src", CostModel::Const(Micros(10)));
            let dp = b.dp_task(
                "dp",
                CostModel::Const(Micros(100)),
                DataParallelSpec::new(vec![1, 2], vec![1], Micros(5))
                    .with_split_join(Micros(7), Micros(9)),
            );
            let sink = b.task("sink", CostModel::Const(Micros(1)));
            let c1 = b.channel("c1", SizeModel::Const(1000));
            let c2 = b.channel("c2", SizeModel::Const(1000));
            b.produces(src, c1);
            b.consumes(dp, c1);
            b.produces(dp, c2);
            b.consumes(sink, c2);
            b.build()
        };
        let mut d = BTreeMap::new();
        d.insert(taskgraph::TaskId(1), Decomposition::new(2, 1));
        let e = ExpandedGraph::build(&g, &AppState::new(1), &d);
        assert_eq!(e.len(), 4);
        // Chunk preds carry the split delay; sink preds carry the join delay.
        for inst in e.instances() {
            if inst.chunk.is_some() {
                assert!(inst.preds.iter().all(|p| p.delay == Micros(7)));
            }
            if inst.task == taskgraph::TaskId(2) {
                assert!(inst.preds.iter().all(|p| p.delay == Micros(9)));
            }
        }
        // Bytes divided across receiving chunks.
        let chunk = e.instances().iter().find(|i| i.chunk.is_some()).unwrap();
        assert_eq!(chunk.preds[0].bytes, 500);
    }

    #[test]
    #[should_panic(expected = "not data parallel")]
    fn decomposing_serial_task_panics() {
        let g = builders::color_tracker();
        let t2 = g.task_by_name("Histogram").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t2, Decomposition::new(2, 1));
        let _ = ExpandedGraph::build(&g, &AppState::new(1), &d);
    }
}
