//! Initiation-interval search: step 3 of the Fig. 6 algorithm.
//!
//! Given a minimal-latency single-iteration schedule, find the smallest
//! interval `II` (and per-iteration processor rotation `r`) at which the
//! pattern can repeat without two iterations colliding on a processor. The
//! rotation is the paper's Fig. 5(a) wrap-around: "the pattern shifts over
//! one processor for each successive time-stamp. Therefore every fourth
//! instance of T2 must wrap around and be scheduled to the first processor."
//!
//! The search is exact within the rotational-placement family: candidate II
//! values are the constraint boundaries `ceil((a.end − b.start) / d)` (the
//! points at which a forbidden overlap window closes), so the first feasible
//! candidate is the minimal feasible II for some rotation.

use taskgraph::Micros;

use crate::schedule::{IterationSchedule, PipelinedSchedule};

/// Pipeline `iter` onto `n_procs` processors at the smallest feasible
/// initiation interval. Always succeeds: `II = latency` with rotation 0 is
/// trivially feasible.
///
/// ```
/// use cds_core::expand::ExpandedGraph;
/// use cds_core::ii::find_best_ii;
/// use cds_core::listsched::list_schedule;
/// use cluster::ClusterSpec;
/// use std::collections::BTreeMap;
/// use taskgraph::{builders, AppState};
///
/// let graph = builders::pipeline(&[100, 200, 300]);
/// let cluster = ClusterSpec::single_node(3);
/// let e = ExpandedGraph::build(&graph, &AppState::new(1), &BTreeMap::new());
/// let iter = list_schedule(&e, &cluster);
/// let pipelined = find_best_ii(&iter, 3);
/// assert!(pipelined.find_collision().is_none());
/// assert!(pipelined.ii <= iter.latency);
/// ```
#[must_use]
pub fn find_best_ii(iter: &IterationSchedule, n_procs: u32) -> PipelinedSchedule {
    let all: Vec<u32> = (0..n_procs).collect();
    find_best_ii_rotations(iter, n_procs, &all)
}

/// [`find_best_ii`] restricted to the given per-iteration rotations. Used
/// for node-granular pipelining (§3.3): rotating by whole nodes keeps every
/// iteration's placements on one node, so "distinct iterations on distinct
/// nodes can overlap" without paying inter-node communication inside an
/// iteration.
#[must_use]
pub fn find_best_ii_rotations(
    iter: &IterationSchedule,
    n_procs: u32,
    rotations: &[u32],
) -> PipelinedSchedule {
    assert!(n_procs > 0, "need processors");
    assert!(!rotations.is_empty(), "need at least one rotation");
    let latency = iter.latency;
    if iter.placements.is_empty() || latency == Micros::ZERO {
        return PipelinedSchedule {
            iteration: iter.clone(),
            ii: Micros(1),
            rotation: rotations[0],
            n_procs,
        };
    }

    // Lower bound: total busy time spread over all processors.
    let busy = iter.busy_time();
    let lb = Micros(busy.0.div_ceil(u64::from(n_procs))).max(Micros(1));

    // Candidate IIs: the overlap-window boundaries, plus the bounds.
    let d_max = latency.0.div_ceil(lb.0);
    let mut candidates: Vec<Micros> = vec![lb, latency];
    for a in &iter.placements {
        for b in &iter.placements {
            if a.end > b.start {
                let diff = (a.end - b.start).0;
                for d in 1..=d_max {
                    let c = Micros(diff.div_ceil(d));
                    if c >= lb && c <= latency {
                        candidates.push(c);
                    }
                }
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    for ii in candidates {
        for &rotation in rotations {
            let sched = PipelinedSchedule {
                iteration: iter.clone(),
                ii,
                rotation,
                n_procs,
            };
            if sched.find_collision().is_none() {
                return sched;
            }
        }
    }
    unreachable!("II = latency is always feasible for some rotation in 0..n_procs");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Placement;
    use cluster::ProcId;
    use std::collections::BTreeMap;
    use taskgraph::{AppState, TaskId};

    fn iter_of(placements: Vec<Placement>) -> IterationSchedule {
        let latency = placements.iter().map(|p| p.end).max().unwrap();
        IterationSchedule {
            placements,
            latency,
            state: AppState::new(1),
            decomp: BTreeMap::new(),
        }
    }

    fn place(task: usize, proc: u32, start: u64, end: u64) -> Placement {
        Placement {
            task: TaskId(task),
            chunk: None,
            proc: ProcId(proc),
            start: Micros(start),
            end: Micros(end),
        }
    }

    #[test]
    fn serial_iteration_rotates_like_fig4b() {
        // One 90-long serial iteration on one proc, 3 procs available:
        // II = 30 with rotation (the naive pipeline tiling).
        let iter = iter_of(vec![place(0, 0, 0, 90)]);
        let p = find_best_ii(&iter, 3);
        assert_eq!(p.ii, Micros(30));
        assert_ne!(p.rotation, 0);
        assert!(p.find_collision().is_none());
        assert_eq!(p.overlapping_iterations(), 3);
    }

    #[test]
    fn single_proc_ii_is_busy_time() {
        let iter = iter_of(vec![place(0, 0, 0, 40), place(1, 0, 40, 90)]);
        let p = find_best_ii(&iter, 1);
        assert_eq!(p.ii, Micros(90));
        assert_eq!(p.rotation, 0);
    }

    #[test]
    fn idle_holes_allow_ii_below_latency_per_proc() {
        // Two procs each busy 50 out of a 100 iteration: II=50 feasible.
        let iter = iter_of(vec![place(0, 0, 0, 50), place(1, 1, 50, 100)]);
        let p = find_best_ii(&iter, 2);
        assert_eq!(p.ii, Micros(50));
        assert!(p.find_collision().is_none());
    }

    #[test]
    fn ii_never_below_work_bound() {
        // Busy 100 on each of 2 procs simultaneously: II >= 100.
        let iter = iter_of(vec![place(0, 0, 0, 100), place(1, 1, 0, 100)]);
        let p = find_best_ii(&iter, 2);
        assert_eq!(p.ii, Micros(100));
    }

    #[test]
    fn extra_processors_reduce_ii() {
        let iter = iter_of(vec![place(0, 0, 0, 60)]);
        let p2 = find_best_ii(&iter, 2);
        let p6 = find_best_ii(&iter, 6);
        assert!(p6.ii < p2.ii);
        assert_eq!(p6.ii, Micros(10));
        assert!(p6.find_collision().is_none());
    }

    #[test]
    fn empty_iteration_degenerates() {
        let iter = IterationSchedule {
            placements: vec![],
            latency: Micros::ZERO,
            state: AppState::new(1),
            decomp: BTreeMap::new(),
        };
        let p = find_best_ii(&iter, 4);
        assert_eq!(p.ii, Micros(1));
    }

    #[test]
    fn result_is_always_collision_free_fuzz() {
        // A deterministic mini-fuzz over awkward shapes.
        for (shape, procs) in [
            (vec![(0u32, 0u64, 33u64), (1, 0, 17), (0, 33, 50)], 3u32),
            (vec![(0, 0, 7), (1, 3, 11), (2, 5, 13)], 4),
            (vec![(0, 0, 100), (1, 10, 90), (2, 20, 80)], 5),
        ] {
            let placements: Vec<Placement> = shape
                .iter()
                .enumerate()
                .map(|(i, &(proc, s, e))| place(i, proc, s, e.max(s + 1)))
                .collect();
            let iter = iter_of(placements);
            let p = find_best_ii(&iter, procs);
            assert!(p.find_collision().is_none(), "shape {shape:?}");
            assert!(p.ii <= iter.latency);
        }
    }
}
