//! Legality checking: does a single-iteration schedule respect the instance
//! DAG's dependences (with split/join delays and locality-dependent
//! communication costs) and the one-job-per-processor resource constraint?
//!
//! Every schedule the enumerator, the list scheduler, or a test constructs
//! is validated through this checker — the simulators refuse malformed
//! schedules rather than silently reordering them.

use cluster::ClusterSpec;

use crate::expand::ExpandedGraph;
use crate::schedule::IterationSchedule;

/// Why a schedule is illegal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// Placement count does not match the instance count.
    WrongInstanceCount {
        /// Instance count of the expanded graph.
        expected: usize,
        /// Placement count found in the schedule.
        got: usize,
    },
    /// Placement `i` does not correspond to instance `i`.
    InstanceMismatch(usize),
    /// Placement duration differs from the instance duration.
    WrongDuration(usize),
    /// Placement starts before a dependence (plus delay and communication)
    /// is satisfied.
    DependenceViolated {
        /// The instance that starts too early.
        instance: usize,
        /// The predecessor whose completion it ignores.
        pred: usize,
    },
    /// Two placements overlap on one processor.
    ResourceConflict(usize, usize),
    /// A placement names a processor outside the cluster.
    UnknownProcessor(usize),
    /// The recorded latency is not the max placement end.
    WrongLatency,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::WrongInstanceCount { expected, got } => {
                write!(f, "expected {expected} placements, got {got}")
            }
            ScheduleError::InstanceMismatch(i) => write!(f, "placement {i} names wrong instance"),
            ScheduleError::WrongDuration(i) => write!(f, "placement {i} has wrong duration"),
            ScheduleError::DependenceViolated { instance, pred } => {
                write!(
                    f,
                    "instance {instance} starts before predecessor {pred} completes"
                )
            }
            ScheduleError::ResourceConflict(a, b) => {
                write!(f, "placements {a} and {b} overlap on one processor")
            }
            ScheduleError::UnknownProcessor(i) => write!(f, "placement {i} on unknown processor"),
            ScheduleError::WrongLatency => write!(f, "recorded latency mismatch"),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Check `sched` against `expanded` on `cluster`. Placements must be listed
/// in instance order.
pub fn check_iteration(
    sched: &IterationSchedule,
    expanded: &ExpandedGraph,
    cluster: &ClusterSpec,
) -> Result<(), ScheduleError> {
    let insts = expanded.instances();
    if sched.placements.len() != insts.len() {
        return Err(ScheduleError::WrongInstanceCount {
            expected: insts.len(),
            got: sched.placements.len(),
        });
    }
    for (i, (p, inst)) in sched.placements.iter().zip(insts).enumerate() {
        if p.task != inst.task || p.chunk != inst.chunk {
            return Err(ScheduleError::InstanceMismatch(i));
        }
        if p.end - p.start != inst.duration {
            return Err(ScheduleError::WrongDuration(i));
        }
        if p.proc.0 >= cluster.n_procs() {
            return Err(ScheduleError::UnknownProcessor(i));
        }
        for e in &inst.preds {
            let pred = &sched.placements[e.from];
            let comm = cluster
                .comm()
                .transfer(e.bytes, cluster.locality(pred.proc, p.proc));
            if p.start < pred.end + e.delay + comm {
                return Err(ScheduleError::DependenceViolated {
                    instance: i,
                    pred: e.from,
                });
            }
        }
    }
    // Resource conflicts.
    let mut idx: Vec<usize> = (0..sched.placements.len()).collect();
    idx.sort_by_key(|&i| (sched.placements[i].proc, sched.placements[i].start));
    for w in idx.windows(2) {
        let (a, b) = (&sched.placements[w[0]], &sched.placements[w[1]]);
        if a.proc == b.proc && b.start < a.end {
            return Err(ScheduleError::ResourceConflict(w[0], w[1]));
        }
    }
    if sched.latency != sched.computed_latency() {
        return Err(ScheduleError::WrongLatency);
    }
    Ok(())
}

/// Full validation of a pipelined schedule against its graph and cluster:
/// the iteration is legal ([`check_iteration`]), the pipeline is
/// collision-free, the decomposition matches the graph's DP specs, and the
/// processor count matches the cluster. This is the gate a schedule passes
/// before deployment (the `cds` CLI and the persist layer lean on it).
pub fn check_pipelined(
    sched: &crate::schedule::PipelinedSchedule,
    graph: &taskgraph::TaskGraph,
    cluster: &ClusterSpec,
) -> Result<(), ScheduleError> {
    if sched.n_procs != cluster.n_procs() {
        return Err(ScheduleError::WrongInstanceCount {
            expected: cluster.n_procs() as usize,
            got: sched.n_procs as usize,
        });
    }
    let expanded = ExpandedGraph::build(graph, &sched.iteration.state, &sched.iteration.decomp);
    check_iteration(&sched.iteration, &expanded, cluster)?;
    if let Some((d, a, b)) = sched.find_collision() {
        // Reuse ResourceConflict with placement indices resolved by search.
        let ia = sched
            .iteration
            .placements
            .iter()
            .position(|p| p == &a)
            .unwrap_or(usize::MAX);
        let ib = sched
            .iteration
            .placements
            .iter()
            .position(|p| p == &b)
            .unwrap_or(usize::MAX);
        let _ = d;
        return Err(ScheduleError::ResourceConflict(ia, ib));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Placement;
    use cluster::ProcId;
    use std::collections::BTreeMap;
    use taskgraph::{builders, AppState, Micros};

    fn serial_setup() -> (ExpandedGraph, ClusterSpec) {
        let g = builders::pipeline(&[10, 20, 30]);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        (e, ClusterSpec::single_node(2))
    }

    fn placements_from(e: &ExpandedGraph, specs: &[(u32, u64)]) -> IterationSchedule {
        let placements: Vec<Placement> = e
            .instances()
            .iter()
            .zip(specs)
            .map(|(inst, &(proc, start))| Placement {
                task: inst.task,
                chunk: inst.chunk,
                proc: ProcId(proc),
                start: Micros(start),
                end: Micros(start) + inst.duration,
            })
            .collect();
        let latency = placements.iter().map(|p| p.end).max().unwrap();
        IterationSchedule {
            placements,
            latency,
            state: AppState::new(1),
            decomp: BTreeMap::new(),
        }
    }

    #[test]
    fn valid_serial_schedule_passes() {
        let (e, c) = serial_setup();
        // pipeline builder: stage0(10) stage1(20) stage2(30) sink(0)
        let s = placements_from(&e, &[(0, 0), (0, 10), (0, 30), (0, 60)]);
        check_iteration(&s, &e, &c).unwrap();
    }

    #[test]
    fn dependence_violation_detected() {
        let (e, c) = serial_setup();
        let s = placements_from(&e, &[(0, 0), (0, 5), (0, 30), (0, 60)]);
        assert_eq!(
            check_iteration(&s, &e, &c),
            Err(ScheduleError::DependenceViolated {
                instance: 1,
                pred: 0
            })
        );
    }

    #[test]
    fn resource_conflict_detected() {
        // Two independent branches overlapping on one processor: all
        // dependences hold, only the resource constraint is violated.
        let g = builders::fork_join(2, 100);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        let c = ClusterSpec::single_node(2);
        // Instance order: fork, join, branch0, branch1, sink.
        let s = placements_from(&e, &[(0, 0), (0, 200), (0, 1), (0, 100), (0, 201)]);
        match check_iteration(&s, &e, &c) {
            Err(ScheduleError::ResourceConflict(_, _)) => {}
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn unknown_processor_detected() {
        let (e, c) = serial_setup();
        let s = placements_from(&e, &[(0, 0), (5, 10), (0, 30), (0, 60)]);
        assert_eq!(
            check_iteration(&s, &e, &c),
            Err(ScheduleError::UnknownProcessor(1))
        );
    }

    #[test]
    fn wrong_latency_detected() {
        let (e, c) = serial_setup();
        let mut s = placements_from(&e, &[(0, 0), (0, 10), (0, 30), (0, 60)]);
        s.latency = Micros(1);
        assert_eq!(
            check_iteration(&s, &e, &c),
            Err(ScheduleError::WrongLatency)
        );
    }

    #[test]
    fn wrong_count_detected() {
        let (e, c) = serial_setup();
        let mut s = placements_from(&e, &[(0, 0), (0, 10), (0, 30), (0, 60)]);
        s.placements.pop();
        assert!(matches!(
            check_iteration(&s, &e, &c),
            Err(ScheduleError::WrongInstanceCount { .. })
        ));
    }

    #[test]
    fn check_pipelined_accepts_optimal_and_rejects_bad_ii() {
        use crate::optimal::{optimal_schedule, OptimalConfig};
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let r = optimal_schedule(&g, &c, &AppState::new(2), &OptimalConfig::default());
        check_pipelined(&r.best, &g, &c).unwrap();

        // Quartering the II forces pipeline collisions.
        let mut bad = r.best.clone();
        bad.ii = Micros(bad.ii.0 / 4);
        assert!(matches!(
            check_pipelined(&bad, &g, &c),
            Err(ScheduleError::ResourceConflict(_, _))
        ));

        // Wrong cluster size.
        assert!(check_pipelined(&r.best, &g, &ClusterSpec::single_node(2)).is_err());
    }

    #[test]
    fn inter_node_communication_delays_consumers() {
        // Producer on node 0, consumer on node 1: the schedule must leave
        // room for the transfer.
        let g = builders::pipeline(&[10, 20]);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        let c = ClusterSpec::paper_cluster(); // inter-node costs nonzero
                                              // stage1 on proc 4 (node 1) immediately after stage0 ends: illegal.
        let tight = placements_from(&e, &[(0, 0), (4, 10), (4, 30)]);
        assert!(matches!(
            check_iteration(&tight, &e, &c),
            Err(ScheduleError::DependenceViolated { .. })
        ));
        // Same placement with slack for the transfers (inter-node into
        // stage1, intra-node into the sink): legal.
        let comm = c.comm().transfer(1024, taskgraph::Locality::InterNode).0;
        let intra = c.comm().transfer(16, taskgraph::Locality::IntraNode).0;
        let ok = placements_from(&e, &[(0, 0), (4, 10 + comm), (4, 30 + comm + intra)]);
        check_iteration(&ok, &e, &c).unwrap();
    }
}
