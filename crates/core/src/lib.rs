//! # Constrained-dynamic scheduling (the paper's contribution)
//!
//! This crate implements the scheduling framework of *Scheduling Constrained
//! Dynamic Applications on Clusters* (SC 1999):
//!
//! 1. **Per-regime optimal scheduling** (Fig. 6): for one application state,
//!    enumerate data decompositions and all legal single-iteration schedules
//!    ([`optimal`]), compute the minimal latency `L*`, collect the set `S`
//!    of schedules achieving `L*`, and pick from `S` the multi-iteration
//!    (software-pipelined) schedule with the best throughput via the
//!    initiation-interval search ([`ii`]).
//! 2. **Baselines**: the naive software pipeline of Fig. 4(b)
//!    ([`pipeline`]), a bottom-level list scheduler used as comparator and
//!    branch-and-bound seed ([`listsched`]), and — in the `cluster` crate —
//!    the dependence-blind online scheduler of Fig. 4(a).
//! 3. **Constrained dynamism** (§3.4): precompute one optimal schedule per
//!    state into a [`table::ScheduleTable`], detect state changes with a
//!    debounced [`detector::RegimeDetector`], and switch among schedules at
//!    run time ([`switcher`]) under a drain or cut-over transition policy.
//! 4. **Hand-tuning methodology** (§3.1): the digitizer-period sweep that
//!    produces Fig. 3's tuning curve ([`tuning`]).
//!
//! ```
//! use cds_core::optimal::{optimal_schedule, OptimalConfig};
//! use cluster::ClusterSpec;
//! use taskgraph::{builders, AppState};
//!
//! let graph = builders::color_tracker();
//! let cluster = ClusterSpec::single_node(4);
//! let best = optimal_schedule(&graph, &cluster, &AppState::new(8), &OptimalConfig::default());
//! // The optimal latency at 8 models beats the serial iteration by a wide margin.
//! assert!(best.minimal_latency < graph.total_work(&AppState::new(8)));
//! ```
//!
//! See `docs/ARCHITECTURE.md` for the full paper-to-code map.

#![warn(missing_docs)]

pub mod detector;
pub mod evaluate;
pub mod expand;
pub mod ii;
pub mod legality;
pub mod listsched;
pub mod multinode;
pub mod optimal;
pub mod persist;
pub mod pipeline;
pub mod pricing;
pub mod schedule;
pub mod sharedcache;
pub mod switcher;
pub mod table;
pub mod tuning;

pub use detector::RegimeDetector;
pub use evaluate::evaluate_schedule;
pub use expand::{ExpandedGraph, Instance};
pub use ii::{find_best_ii, find_best_ii_rotations};
pub use legality::{check_iteration, check_pipelined};
pub use listsched::list_schedule;
pub use multinode::{is_node_confined, node_pipelined};
pub use optimal::{optimal_schedule, optimal_schedule_warm, OptimalConfig, OptimalResult};
pub use persist::{
    schedule_cache_key, schedule_from_str, schedule_to_string, table_from_str, table_to_string,
    CacheMiss, ScheduleCache,
};
pub use pipeline::naive_pipeline;
pub use pricing::{optimal_schedule_priced, precompute_priced, PricedResult, PricedTable};
pub use schedule::{IterationSchedule, PipelinedSchedule, Placement, StagePrediction};
pub use sharedcache::{
    CollectionStrategy, GcMap, LruStrategy, SharedScheduleCache, TrackableValue,
};
pub use switcher::{simulate_regime_switched, SwitchConfig, TransitionPolicy};
pub use table::{ScheduleTable, TableBuildStats};
pub use tuning::{tuning_curve, TuningPoint};
