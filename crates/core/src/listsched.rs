//! Bottom-level (HLFET) list scheduling over the instance DAG.
//!
//! Not part of the paper's proposal — it is the classic heuristic the
//! optimal enumerator is compared against in the ablation experiment, and it
//! seeds the branch-and-bound with a good incumbent so pruning bites early.

use cluster::{ClusterSpec, ProcId};
use taskgraph::Micros;

use crate::expand::ExpandedGraph;
use crate::schedule::{IterationSchedule, Placement};

/// Greedy list schedule: repeatedly place the ready instance with the
/// largest bottom level on the processor where it can start earliest
/// (accounting for dependence delays and locality-dependent communication).
#[must_use]
pub fn list_schedule(expanded: &ExpandedGraph, cluster: &ClusterSpec) -> IterationSchedule {
    let insts = expanded.instances();
    let n = insts.len();
    let n_procs = cluster.n_procs();

    let mut placed: Vec<Option<Placement>> = vec![None; n];
    let mut n_preds_left: Vec<usize> = insts.iter().map(|i| i.preds.len()).collect();
    let mut proc_ready = vec![Micros::ZERO; n_procs as usize];
    let mut n_placed = 0usize;

    while n_placed < n {
        // Ready instance with the largest bottom level (deterministic tie
        // break on index).
        let next = (0..n)
            .filter(|&i| placed[i].is_none() && n_preds_left[i] == 0)
            .max_by_key(|&i| (expanded.bottom_level(i), std::cmp::Reverse(i)))
            .expect("acyclic DAG always has a ready instance");

        // Earliest start per processor.
        let mut best: Option<(Micros, u32)> = None;
        for p in 0..n_procs {
            let mut est = proc_ready[p as usize];
            for e in &insts[next].preds {
                let pred = placed[e.from].expect("preds placed first");
                let comm = cluster
                    .comm()
                    .transfer(e.bytes, cluster.locality(pred.proc, ProcId(p)));
                est = est.max(pred.end + e.delay + comm);
            }
            if best.is_none_or(|(b, _)| est < b) {
                best = Some((est, p));
            }
        }
        let (start, proc) = best.expect("cluster has processors");
        let end = start + insts[next].duration;
        placed[next] = Some(Placement {
            task: insts[next].task,
            chunk: insts[next].chunk,
            proc: ProcId(proc),
            start,
            end,
        });
        proc_ready[proc as usize] = end;
        n_placed += 1;
        for &s in expanded.succs(next) {
            n_preds_left[s] -= 1;
        }
    }

    let placements: Vec<Placement> = placed.into_iter().map(Option::unwrap).collect();
    let latency = placements
        .iter()
        .map(|p| p.end)
        .max()
        .unwrap_or(Micros::ZERO);
    IterationSchedule {
        placements,
        latency,
        state: *expanded.state(),
        decomp: expanded.decomp().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::check_iteration;
    use std::collections::BTreeMap;
    use taskgraph::{builders, AppState, Decomposition};

    #[test]
    fn list_schedule_is_legal_serial() {
        let g = builders::color_tracker();
        let e = ExpandedGraph::build(&g, &AppState::new(4), &BTreeMap::new());
        let c = ClusterSpec::single_node(4);
        let s = list_schedule(&e, &c);
        check_iteration(&s, &e, &c).unwrap();
        assert!(s.latency >= e.span());
    }

    #[test]
    fn list_schedule_is_legal_with_chunks() {
        let g = builders::color_tracker();
        let t4 = g.task_by_name("Target Detection").unwrap();
        let mut d = BTreeMap::new();
        d.insert(t4, Decomposition::new(1, 8));
        let e = ExpandedGraph::build(&g, &AppState::new(8), &d);
        let c = ClusterSpec::single_node(4);
        let s = list_schedule(&e, &c);
        check_iteration(&s, &e, &c).unwrap();
    }

    #[test]
    fn more_processors_never_hurt() {
        let g = builders::fork_join(6, 500);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        let s1 = list_schedule(&e, &ClusterSpec::single_node(1));
        let s3 = list_schedule(&e, &ClusterSpec::single_node(3));
        let s6 = list_schedule(&e, &ClusterSpec::single_node(6));
        assert!(s3.latency <= s1.latency);
        assert!(s6.latency <= s3.latency);
        // Six branches on one proc ≈ serial.
        assert_eq!(s1.latency, e.work());
    }

    #[test]
    fn task_parallel_branches_overlap() {
        // fork_join(2, 100): with 2 procs latency ≈ 1 + 100 + 1 + epsilon.
        let g = builders::fork_join(2, 100);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        let s = list_schedule(&e, &ClusterSpec::single_node(2));
        assert_eq!(s.latency, e.span());
    }

    #[test]
    fn comm_costs_keep_schedule_on_one_node_when_cheap() {
        // With expensive inter-node links and small work, the list scheduler
        // should not pay a transfer to reach an idle remote processor.
        let g = builders::pipeline(&[10, 10, 10]);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        let c = ClusterSpec::paper_cluster();
        let s = list_schedule(&e, &c);
        check_iteration(&s, &e, &c).unwrap();
        let nodes: std::collections::HashSet<_> =
            s.placements.iter().map(|p| c.node_of(p.proc)).collect();
        assert_eq!(nodes.len(), 1, "pipeline should stay on one node");
    }
}
