//! Node-granular pipelining — the paper's §3.3 cluster strategy:
//!
//! > "The cost of communication between nodes in a cluster may mean that
//! > the minimal latency schedule for an iteration does not use all
//! > processors but is instead restricted to the processors on a single
//! > node. In this case, distinct iterations on distinct nodes can
//! > overlap."
//!
//! [`node_pipelined`] computes the optimal single-iteration schedule over
//! *one node's* processors (so no iteration ever pays inter-node
//! communication), then pipelines iterations across the whole cluster by
//! rotating in whole-node steps.

use cluster::ClusterSpec;
use taskgraph::AppState;
use taskgraph::TaskGraph;

use crate::ii::find_best_ii_rotations;
use crate::optimal::{optimal_schedule, OptimalConfig, OptimalResult};
use crate::schedule::PipelinedSchedule;

/// Compute the node-granular pipelined schedule: optimal iteration on one
/// node, whole-node rotation across the cluster.
#[must_use]
pub fn node_pipelined(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
    cfg: &OptimalConfig,
) -> PipelinedSchedule {
    // One node of the real cluster: same communication model (intra-node
    // costs apply), only this node's processors.
    let node = ClusterSpec::new(1, cluster.procs_per_node(), *cluster.comm());
    let per_node: OptimalResult = optimal_schedule(graph, &node, state, cfg);

    // Rotations in whole-node steps keep each iteration on one node.
    let ppn = cluster.procs_per_node();
    let rotations: Vec<u32> = (0..cluster.n_nodes()).map(|k| k * ppn).collect();
    find_best_ii_rotations(&per_node.best.iteration, cluster.n_procs(), &rotations)
}

/// Whether every iteration of `sched` stays within a single node of
/// `cluster` (placements share one node; rotation moves in whole nodes).
#[must_use]
pub fn is_node_confined(sched: &PipelinedSchedule, cluster: &ClusterSpec) -> bool {
    let nodes: std::collections::HashSet<_> = sched
        .iteration
        .placements
        .iter()
        .map(|p| cluster.node_of(p.proc))
        .collect();
    nodes.len() <= 1 && sched.rotation.is_multiple_of(cluster.procs_per_node())
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::{builders, CommCosts, Micros};

    fn expensive_cluster(scale: u64) -> ClusterSpec {
        let base = CommCosts::default_cluster();
        ClusterSpec::new(
            4,
            4,
            CommCosts {
                inter_latency: base.inter_latency * scale,
                inter_per_kib: base.inter_per_kib * scale,
                ..base
            },
        )
    }

    #[test]
    fn node_pipelined_is_confined_and_collision_free() {
        let g = builders::color_tracker();
        let c = expensive_cluster(1);
        let sched = node_pipelined(&g, &c, &AppState::new(4), &OptimalConfig::default());
        assert!(is_node_confined(&sched, &c));
        assert!(sched.find_collision().is_none());
        assert_eq!(sched.n_procs, 16);
    }

    #[test]
    fn cross_node_pipelining_beats_single_node_throughput() {
        // Same iteration latency as the one-node optimum, but the cluster's
        // other nodes absorb additional iterations → smaller II.
        let g = builders::color_tracker();
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let cluster = expensive_cluster(1);
        let one_node = ClusterSpec::new(1, 4, *cluster.comm());

        let single = optimal_schedule(&g, &one_node, &state, &cfg);
        let multi = node_pipelined(&g, &cluster, &state, &cfg);
        assert_eq!(multi.iteration.latency, single.minimal_latency);
        assert!(
            multi.ii < single.best.ii,
            "cluster II {} must beat one-node II {}",
            multi.ii,
            single.best.ii
        );
    }

    #[test]
    fn node_pipelining_wins_when_communication_is_expensive() {
        // With a very expensive interconnect, the whole-cluster optimal
        // cannot profitably spread an iteration across nodes, so the
        // node-confined schedule matches its latency; pipelining then gives
        // the cluster its throughput.
        let g = builders::color_tracker();
        let state = AppState::new(8);
        // Bound the 16-processor search: locality-dependent communication
        // weakens the bottom-level bound, and the conclusion only needs a
        // good incumbent, not a certificate.
        let cfg = OptimalConfig {
            max_nodes: 150_000,
            ..OptimalConfig::default()
        };
        // At 8 models a chunk is ~900 ms of work, so the interconnect must
        // cost on that order per frame transfer before crossing nodes stops
        // paying: scale the default costs by 500×.
        let c = expensive_cluster(500);
        let whole = optimal_schedule(&g, &c, &state, &cfg);
        let node = node_pipelined(&g, &c, &state, &cfg);
        assert!(
            node.iteration.latency <= whole.minimal_latency + Micros(1),
            "node-confined {} vs whole-cluster {}",
            node.iteration.latency,
            whole.minimal_latency
        );
    }

    #[test]
    fn free_communication_lets_whole_cluster_win_latency() {
        // Sanity inversion: with free inter-node links, the whole-cluster
        // schedule may use all 16 processors and beat one node's latency.
        let g = builders::color_tracker();
        let state = AppState::new(8);
        let cfg = OptimalConfig::default();
        let c = ClusterSpec::new(4, 4, CommCosts::FREE);
        let whole = optimal_schedule(&g, &c, &state, &cfg);
        let node = node_pipelined(&g, &c, &state, &cfg);
        assert!(whole.minimal_latency <= node.iteration.latency);
    }
}
