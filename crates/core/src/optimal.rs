//! The paper's scheduling algorithm (Fig. 6):
//!
//! > Compute the minimal latency `L` for a single iteration.
//! > Compute the set `S` of all single-iteration schedules that exhibit
//! > latency `L`.
//! > Compute the multi-iteration schedule `M`, created from multiple
//! > instances of a schedule from `S`.
//!
//! "Notice that the algorithm is not a heuristic … our applications have a
//! very small number of tasks. Even if we include the various data parallel
//! options for any given task, we still have a manageable number of options.
//! Since the resulting schedule will be operating for months, we can afford
//! to evaluate all legal schedules and choose the best one."
//!
//! The search enumerates, per candidate data decomposition, all *semi-active*
//! single-iteration schedules (each instance starts as early as its
//! processor and dependences allow; deliberately inserted idle time can
//! never reduce latency) via depth-first branch-and-bound:
//!
//! * the incumbent is seeded with the list schedule so pruning bites from
//!   the first branch;
//! * the bound is `start + bottom_level` (communication excluded, hence a
//!   true lower bound);
//! * identical chunks of one task are interchangeable, so only the
//!   lowest-indexed unplaced chunk branches;
//! * processors that are indistinguishable (same node, same ready time) are
//!   branched once;
//! * placements are generated in non-decreasing start order, so each
//!   schedule is visited essentially once;
//! * partial schedules that are *dominated* — same set of placed instances
//!   on the same processors, with every finish time and the start-order
//!   watermark pointwise no earlier than a previously seen partial — are
//!   pruned via a bounded memo table ([`OptimalConfig::dominance_cap`]).
//!
//! The per-decomposition searches are independent, so they fan out across
//! worker threads ([`OptimalConfig::threads`]); the incumbent latency bound
//! is shared through an atomic so a fast decomposition prunes the slow
//! ones. The parallel search returns the same minimal latency `L` as the
//! serial one (the property tests assert this); the tie set `S` may differ
//! in membership order when ties race, which is why results are merged in
//! deterministic decomposition order.
//!
//! The node budget is a backstop, not a tuning knob: if it is exceeded the
//! result is flagged `complete = false` and the affected decomposition falls
//! back to its list schedule.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use cluster::{ClusterSpec, ProcId};
use taskgraph::{AppState, Decomposition, Micros, TaskGraph, TaskId};

use crate::expand::ExpandedGraph;
use crate::ii::find_best_ii;
use crate::listsched::list_schedule;
use crate::schedule::{IterationSchedule, PipelinedSchedule, Placement};

/// Search configuration.
#[derive(Clone, Debug)]
pub struct OptimalConfig {
    /// Cap on the number of minimal-latency schedules retained in `S`.
    pub max_schedules: usize,
    /// Search-node budget per decomposition (backstop against blowup).
    pub max_nodes: u64,
    /// Explore data-parallel decompositions (`false` = serial tasks only,
    /// the "task parallelism only" setting of Fig. 5(a)).
    pub explore_decompositions: bool,
    /// Worker threads for the per-decomposition fan-out. `0` means one per
    /// available CPU; `1` runs the whole search on the calling thread.
    pub threads: usize,
    /// Cap on retained dominance-memo entries per decomposition search
    /// (`0` disables the dominance prune entirely).
    pub dominance_cap: usize,
}

impl Default for OptimalConfig {
    fn default() -> Self {
        OptimalConfig {
            max_schedules: 32,
            max_nodes: 2_000_000,
            explore_decompositions: true,
            threads: 0,
            dominance_cap: 100_000,
        }
    }
}

impl OptimalConfig {
    /// The configured thread count resolved against the host.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// This config with the fan-out disabled (single-threaded search).
    #[must_use]
    pub fn serial(&self) -> Self {
        OptimalConfig {
            threads: 1,
            ..self.clone()
        }
    }
}

/// The outcome of the Fig. 6 algorithm for one state.
#[derive(Clone, Debug)]
pub struct OptimalResult {
    /// The multi-iteration schedule `M`: a minimal-latency iteration from
    /// `S` pipelined at the smallest feasible initiation interval.
    pub best: PipelinedSchedule,
    /// The minimal latency `L`.
    pub minimal_latency: Micros,
    /// How many distinct minimal-latency schedules were collected into `S`
    /// (across all decompositions, capped at `max_schedules`).
    pub candidates: usize,
    /// Total branch-and-bound nodes explored.
    pub nodes_explored: u64,
    /// Decompositions skipped outright because their makespan lower bound
    /// exceeded the shared incumbent.
    pub combos_pruned: usize,
    /// Partial schedules pruned by the dominance memo.
    pub dominance_prunes: u64,
    /// False if any decomposition hit the node budget (its exploration fell
    /// back to the list schedule, so optimality is no longer guaranteed).
    pub complete: bool,
}

/// What one decomposition search produced (sent back to the merge step).
struct ComboOutcome {
    /// Candidate schedules: what the search collected, or the list-schedule
    /// fallback when the search was truncated or collected nothing.
    found: Vec<IterationSchedule>,
    nodes: u64,
    truncated: bool,
    dominance_prunes: u64,
    /// True when the combo was skipped via the shared-incumbent bound.
    pruned: bool,
}

/// Run the Fig. 6 algorithm for `state` on `cluster`.
#[must_use]
pub fn optimal_schedule(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
    cfg: &OptimalConfig,
) -> OptimalResult {
    optimal_schedule_warm(graph, cluster, state, cfg, None)
}

/// [`optimal_schedule`] warm-started from a previous incumbent for the same
/// regime — the re-search entry point of the online adaptation loop.
///
/// The warm schedule's *placements* are not reused (the re-search exists
/// precisely because measured costs drifted away from the model that
/// produced them, so the old start times are stale), but two things carry
/// over:
///
/// * the warm schedule's decomposition is searched **first**, ahead of the
///   lower-bound ordering — under moderate drift the optimal decomposition
///   rarely changes, so the best combo seeds the incumbent immediately;
/// * its list-schedule latency is installed into the shared incumbent
///   *before* the fan-out starts, so every worker's dominated-combo prune
///   (`lb > incumbent`) bites from the very first queue pull instead of
///   only after some combo finishes seeding.
///
/// A `warm` whose decomposition is not among the current combos (e.g. the
/// drifted state clamps a variant away) degrades silently to a cold search.
#[must_use]
pub fn optimal_schedule_warm(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
    cfg: &OptimalConfig,
    warm: Option<&PipelinedSchedule>,
) -> OptimalResult {
    let combos = decomposition_combos(graph, state, cfg.explore_decompositions);

    // Expand every combo and order by its makespan lower bound: good
    // decompositions search first, so the dominated-combo prune below
    // eliminates most of the cartesian product (graphs with several DP
    // tasks have hundreds of combos).
    let mut expansions: Vec<(Micros, ExpandedGraph)> = combos
        .into_iter()
        .map(|decomp| {
            let expanded = ExpandedGraph::build(graph, state, &decomp);
            let lb = expanded
                .span()
                .max(expanded.work().div_ceil(u64::from(cluster.n_procs())));
            (lb, expanded)
        })
        .collect();
    expansions.sort_by_key(|(lb, e)| (*lb, e.len()));

    // The incumbent latency bound, shared across all decomposition
    // searches (and across worker threads): monotonically decreasing, only
    // ever set from the latency of an actual legal schedule, so `lb >
    // incumbent` proves a decomposition cannot contribute to `S`.
    let incumbent = AtomicU64::new(u64::MAX);

    if let Some(w) = warm {
        if let Some(pos) = expansions
            .iter()
            .position(|(_, e)| e.decomp() == &w.iteration.decomp)
        {
            let entry = expansions.remove(pos);
            // Pre-seed the shared bound with a legal schedule of the warm
            // decomposition under the *current* costs.
            let seed = list_schedule(&entry.1, cluster);
            incumbent.fetch_min(seed.latency.0, Ordering::Relaxed);
            expansions.insert(0, entry);
        }
    }
    // Work queue: combo indices in sorted order.
    let next = AtomicUsize::new(0);

    let threads = cfg.effective_threads().clamp(1, expansions.len().max(1));
    let mut outcomes: Vec<(usize, ComboOutcome)> = if threads <= 1 {
        search_worker(&expansions, cluster, cfg, &incumbent, &next)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| search_worker(&expansions, cluster, cfg, &incumbent, &next))
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
    };
    // Merge in decomposition order so the S set is deterministic given the
    // per-combo candidate sets.
    outcomes.sort_by_key(|(i, _)| *i);

    let mut best_latency = Micros(u64::MAX);
    /// Canonical schedule key paired with its decomposition key.
    type ComboKey = (Vec<(u32, u64, u64)>, Vec<(usize, u32, u32)>);
    let mut s_set: Vec<IterationSchedule> = Vec::new();
    let mut keys: HashSet<ComboKey> = HashSet::new();
    let mut nodes_total = 0u64;
    let mut combos_pruned = 0usize;
    let mut dominance_prunes = 0u64;
    let mut complete = true;

    for (_, outcome) in outcomes {
        nodes_total += outcome.nodes;
        dominance_prunes += outcome.dominance_prunes;
        if outcome.pruned {
            combos_pruned += 1;
        }
        if outcome.truncated {
            complete = false;
        }
        for sched in outcome.found {
            if sched.latency < best_latency {
                best_latency = sched.latency;
                s_set.clear();
                keys.clear();
            }
            if sched.latency == best_latency && s_set.len() < cfg.max_schedules {
                let decomp_key: Vec<(usize, u32, u32)> = sched
                    .decomp
                    .iter()
                    .map(|(t, d)| (t.0, d.fp, d.mp))
                    .collect();
                if keys.insert((sched.canonical_key(), decomp_key)) {
                    s_set.push(sched);
                }
            }
        }
    }

    // Step 3: the multi-iteration schedule M — pipeline every member of S
    // and keep the highest throughput (smallest initiation interval).
    let best = s_set
        .iter()
        .map(|iter| find_best_ii(iter, cluster.n_procs()))
        .min_by_key(|p| (p.ii, p.rotation))
        .expect("S is non-empty");

    OptimalResult {
        best,
        minimal_latency: best_latency,
        candidates: s_set.len(),
        nodes_explored: nodes_total,
        combos_pruned,
        dominance_prunes,
        complete,
    }
}

/// One worker: pull decomposition indices off the shared queue until it is
/// drained, searching each and reporting the outcome.
fn search_worker(
    expansions: &[(Micros, ExpandedGraph)],
    cluster: &ClusterSpec,
    cfg: &OptimalConfig,
    incumbent: &AtomicU64,
    next: &AtomicUsize,
) -> Vec<(usize, ComboOutcome)> {
    let mut out = Vec::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some((lb, expanded)) = expansions.get(i) else {
            return out;
        };
        // Dominated combo: even a perfect schedule of this decomposition
        // cannot reach the incumbent (strict `>`: ties kept for the S set).
        if lb.0 > incumbent.load(Ordering::Relaxed) {
            out.push((
                i,
                ComboOutcome {
                    found: Vec::new(),
                    nodes: 0,
                    truncated: false,
                    dominance_prunes: 0,
                    pruned: true,
                },
            ));
            continue;
        }
        // Seed with the list schedule so pruning bites from the first
        // branch. The seed is a real legal schedule, so it may tighten the
        // shared incumbent too.
        let seed = list_schedule(expanded, cluster);
        incumbent.fetch_min(seed.latency.0, Ordering::Relaxed);
        let mut search = Search {
            expanded,
            cluster,
            best: Micros(incumbent.load(Ordering::Relaxed)),
            shared: incumbent,
            collected: Vec::new(),
            keys: HashSet::new(),
            nodes: 0,
            max_nodes: cfg.max_nodes,
            max_schedules: cfg.max_schedules,
            truncated: false,
            dom: HashMap::new(),
            dom_entries: 0,
            dom_cap: if cluster.n_procs() <= MAX_DOM_PROCS && expanded.len() <= 64 {
                cfg.dominance_cap
            } else {
                0
            },
            dom_prunes: 0,
        };
        search.run();

        let mut found = search.collected;
        if found.is_empty() {
            found.push(seed);
        }
        out.push((
            i,
            ComboOutcome {
                found,
                nodes: search.nodes,
                truncated: search.truncated,
                dominance_prunes: search.dom_prunes,
                pruned: false,
            },
        ));
    }
}

/// All decomposition combinations to evaluate: the cartesian product of
/// each DP task's variants in `state` (deduplicated after clamping).
#[must_use]
pub fn decomposition_combos(
    graph: &TaskGraph,
    state: &AppState,
    explore: bool,
) -> Vec<BTreeMap<TaskId, Decomposition>> {
    let mut combos: Vec<BTreeMap<TaskId, Decomposition>> = vec![BTreeMap::new()];
    if !explore {
        return combos;
    }
    for t in graph.task_ids() {
        if let Some(dp) = &graph.task(t).dp {
            let variants = dp.variants(state);
            let mut next = Vec::with_capacity(combos.len() * variants.len());
            for combo in &combos {
                for &v in &variants {
                    let mut c = combo.clone();
                    if !v.is_trivial(state) {
                        c.insert(t, v);
                    }
                    if !next.contains(&c) {
                        next.push(c);
                    }
                }
            }
            combos = next;
        }
    }
    combos
}

/// Processor-id ceiling for the dominance memo's compact encoding.
const MAX_DOM_PROCS: u32 = 64;
/// Cap on memo entries sharing one placed-set key (bounds compare cost).
const DOM_PER_KEY: usize = 16;

/// One dominance-memo entry: the schedule-relevant residue of a partial
/// schedule with a given placed-instance set.
struct DomEntry {
    /// Processor of each placed instance, in instance-index order.
    procs: Box<[u8]>,
    /// `[last_start, end of each placed instance in instance-index order]`.
    times: Box<[u64]>,
}

impl DomEntry {
    /// Whether `self` dominates `other`: identical processor assignment and
    /// every time component no later. Any completion reachable from
    /// `other` is then matched by one reachable from `self` with a latency
    /// at most as large (equality included, so exact revisits prune too).
    fn dominates(&self, other: &DomEntry) -> bool {
        self.procs == other.procs
            && self
                .times
                .iter()
                .zip(other.times.iter())
                .all(|(a, b)| a <= b)
    }
}

struct Search<'a> {
    expanded: &'a ExpandedGraph,
    cluster: &'a ClusterSpec,
    /// Best latency known to this search (synced with [`Search::shared`];
    /// equal-latency schedules are collected).
    best: Micros,
    /// The cross-thread incumbent: latencies of real schedules only.
    shared: &'a AtomicU64,
    collected: Vec<IterationSchedule>,
    keys: HashSet<Vec<(u32, u64, u64)>>,
    nodes: u64,
    max_nodes: u64,
    max_schedules: usize,
    truncated: bool,
    /// Dominance memo: placed-instance bitmask → non-dominated entries.
    dom: HashMap<u64, Vec<DomEntry>>,
    dom_entries: usize,
    /// Entry budget (0 = prune disabled for this search).
    dom_cap: usize,
    dom_prunes: u64,
}

struct SearchState {
    placements: Vec<Option<Placement>>,
    preds_left: Vec<usize>,
    proc_ready: Vec<Micros>,
    placed: usize,
    /// Bitmask of placed instances (valid while the DAG has ≤ 64).
    placed_mask: u64,
    partial_latency: Micros,
    last_start: Micros,
}

impl<'a> Search<'a> {
    fn run(&mut self) {
        let n = self.expanded.len();
        let mut st = SearchState {
            placements: vec![None; n],
            preds_left: self
                .expanded
                .instances()
                .iter()
                .map(|i| i.preds.len())
                .collect(),
            proc_ready: vec![Micros::ZERO; self.cluster.n_procs() as usize],
            placed: 0,
            placed_mask: 0,
            partial_latency: Micros::ZERO,
            last_start: Micros::ZERO,
        };
        self.dfs(&mut st);
    }

    /// Earliest dependence-ready time of instance `i` on processor `p`.
    fn est(&self, st: &SearchState, i: usize, p: ProcId) -> Micros {
        let mut t = st.proc_ready[p.0 as usize];
        for e in &self.expanded.instances()[i].preds {
            let pred = st.placements[e.from].expect("pred placed");
            let comm = self
                .cluster
                .comm()
                .transfer(e.bytes, self.cluster.locality(pred.proc, p));
            t = t.max(pred.end + e.delay + comm);
        }
        t
    }

    /// Dependence-only earliest start (processor-independent lower bound).
    fn est_lb(&self, st: &SearchState, i: usize) -> Micros {
        let mut t = Micros::ZERO;
        for e in &self.expanded.instances()[i].preds {
            let pred = st.placements[e.from].expect("pred placed");
            t = t.max(pred.end + e.delay);
        }
        t
    }

    /// Dominance prune: return true when this partial schedule is dominated
    /// by a memoized one; otherwise memoize it (within budget).
    fn dominated(&mut self, st: &SearchState) -> bool {
        let n_placed = st.placed;
        let mut procs = Vec::with_capacity(n_placed);
        let mut times = Vec::with_capacity(n_placed + 1);
        times.push(st.last_start.0);
        for p in st.placements.iter().flatten() {
            procs.push(p.proc.0 as u8);
            times.push(p.end.0);
        }
        let cand = DomEntry {
            procs: procs.into_boxed_slice(),
            times: times.into_boxed_slice(),
        };
        let entries = self.dom.entry(st.placed_mask).or_default();
        if entries.iter().any(|e| e.dominates(&cand)) {
            return true;
        }
        // Keep the list non-dominated and bounded.
        let before = entries.len();
        entries.retain(|e| !cand.dominates(e));
        self.dom_entries -= before - entries.len();
        if self.dom_entries < self.dom_cap && entries.len() < DOM_PER_KEY {
            entries.push(cand);
            self.dom_entries += 1;
        }
        false
    }

    fn dfs(&mut self, st: &mut SearchState) {
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.truncated = true;
            return;
        }
        // Adopt improvements from other decomposition searches: anything we
        // collected before the improvement can no longer be minimal.
        let global = self.shared.load(Ordering::Relaxed);
        if global < self.best.0 {
            self.best = Micros(global);
            self.collected.clear();
            self.keys.clear();
        }
        let n = self.expanded.len();
        if st.placed == n {
            let latency = st.partial_latency;
            if latency < self.best {
                self.best = latency;
                self.collected.clear();
                self.keys.clear();
                self.shared.fetch_min(latency.0, Ordering::Relaxed);
            }
            if latency == self.best && self.collected.len() < self.max_schedules {
                let sched = IterationSchedule {
                    placements: st.placements.iter().map(|p| p.unwrap()).collect(),
                    latency,
                    state: *self.expanded.state(),
                    decomp: self.expanded.decomp().clone(),
                };
                if self.keys.insert(sched.canonical_key()) {
                    self.collected.push(sched);
                }
            }
            return;
        }

        // Global lower-bound prune over all ready instances.
        let ready: Vec<usize> = (0..n)
            .filter(|&i| st.placements[i].is_none() && st.preds_left[i] == 0)
            .collect();
        for &i in &ready {
            if self.est_lb(st, i) + self.expanded.bottom_level(i) > self.best {
                return;
            }
        }

        // Dominance prune (after the cheap bound prunes).
        if self.dom_cap > 0 && st.placed >= 2 && self.dominated(st) {
            self.dom_prunes += 1;
            return;
        }

        // Chunk symmetry: only the lowest-indexed unplaced chunk of each
        // task may branch.
        let mut seen_chunk_tasks: Vec<TaskId> = Vec::new();
        for &i in &ready {
            let inst = &self.expanded.instances()[i];
            if inst.chunk.is_some() {
                if seen_chunk_tasks.contains(&inst.task) {
                    continue;
                }
                seen_chunk_tasks.push(inst.task);
            }

            // Processor symmetry: one branch per (node, ready-time) class.
            let mut proc_classes: Vec<(u32, Micros)> = Vec::new();
            for p in self.cluster.procs() {
                let class = (self.cluster.node_of(p).0, st.proc_ready[p.0 as usize]);
                if proc_classes.contains(&class) {
                    continue;
                }
                proc_classes.push(class);

                let start = self.est(st, i, p);
                // Sorted-order constraint: each schedule visited once.
                if start < st.last_start {
                    continue;
                }
                let end = start + self.expanded.instances()[i].duration;
                // Branch bound (communication included in start).
                if start + self.expanded.bottom_level(i) > self.best {
                    continue;
                }

                // Place.
                let placement = Placement {
                    task: self.expanded.instances()[i].task,
                    chunk: self.expanded.instances()[i].chunk,
                    proc: p,
                    start,
                    end,
                };
                st.placements[i] = Some(placement);
                let saved_ready = st.proc_ready[p.0 as usize];
                let saved_latency = st.partial_latency;
                let saved_last = st.last_start;
                st.proc_ready[p.0 as usize] = end;
                st.partial_latency = st.partial_latency.max(end);
                st.last_start = start;
                st.placed += 1;
                st.placed_mask |= 1u64.checked_shl(i as u32).unwrap_or(0);
                for &s in self.expanded.succs(i) {
                    st.preds_left[s] -= 1;
                }

                self.dfs(st);

                // Undo.
                for &s in self.expanded.succs(i) {
                    st.preds_left[s] += 1;
                }
                st.placed_mask &= !(1u64.checked_shl(i as u32).unwrap_or(0));
                st.placed -= 1;
                st.last_start = saved_last;
                st.partial_latency = saved_latency;
                st.proc_ready[p.0 as usize] = saved_ready;
                st.placements[i] = None;

                if self.truncated {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::check_iteration;
    use taskgraph::builders;

    #[test]
    fn combos_cover_dp_variants() {
        let g = builders::color_tracker();
        let combos1 = decomposition_combos(&g, &AppState::new(1), true);
        // 1 model: MP clamps away → FP ∈ {1,2,4} → 3 combos.
        assert_eq!(combos1.len(), 3);
        let combos8 = decomposition_combos(&g, &AppState::new(8), true);
        // 8 models: FP {1,2,4} × MP {1,2,4,8} = 12 combos.
        assert_eq!(combos8.len(), 12);
        assert_eq!(decomposition_combos(&g, &AppState::new(8), false).len(), 1);
    }

    #[test]
    fn optimal_matches_span_on_fork_join() {
        // fork_join(3, 100) on 3 procs: optimal latency = span.
        let g = builders::fork_join(3, 100);
        let c = ClusterSpec::single_node(3);
        let r = optimal_schedule(&g, &c, &AppState::new(1), &OptimalConfig::default());
        assert!(r.complete);
        let e = ExpandedGraph::build(&g, &AppState::new(1), &BTreeMap::new());
        assert_eq!(r.minimal_latency, e.span());
        check_iteration(&r.best.iteration, &e, &c).unwrap();
    }

    #[test]
    fn optimal_beats_or_equals_list_schedule() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        for n in [1u32, 2, 4, 8] {
            let state = AppState::new(n);
            let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
            // Compare against the best list schedule over all decompositions.
            let best_list = decomposition_combos(&g, &state, true)
                .into_iter()
                .map(|d| {
                    let e = ExpandedGraph::build(&g, &state, &d);
                    list_schedule(&e, &c).latency
                })
                .min()
                .unwrap();
            assert!(
                r.minimal_latency <= best_list,
                "state {n}: optimal {} vs list {}",
                r.minimal_latency,
                best_list
            );
        }
    }

    #[test]
    fn optimal_schedule_is_legal_and_collision_free() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        let e = ExpandedGraph::build(&g, &state, &r.best.iteration.decomp);
        check_iteration(&r.best.iteration, &e, &c).unwrap();
        assert!(r.best.find_collision().is_none());
        assert!(r.candidates >= 1);
    }

    #[test]
    fn eight_models_prefers_model_decomposition() {
        // The optimal schedule at 8 models on 4 procs should decompose T4
        // (Table 1 / Fig. 5(b) behaviour).
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let r = optimal_schedule(&g, &c, &AppState::new(8), &OptimalConfig::default());
        let t4 = g.task_by_name("Target Detection").unwrap();
        let d = r.best.iteration.decomp.get(&t4).copied();
        assert!(d.is_some(), "T4 must be decomposed at 8 models, got serial");
        // And latency is far below the serial iteration (~7.3 s).
        assert!(r.minimal_latency < Micros::from_secs(3));
    }

    #[test]
    fn task_parallelism_only_still_beats_serial_chain() {
        // Fig. 5(a): with decompositions disabled, T2 ∥ T3 still shortens
        // the iteration relative to a fully serial order.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let cfg = OptimalConfig {
            explore_decompositions: false,
            ..OptimalConfig::default()
        };
        let r = optimal_schedule(&g, &c, &state, &cfg);
        let serial = g.total_work(&state);
        assert!(r.minimal_latency < serial);
        // Equals the critical path: T2∥T3 overlap is the only slack.
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        assert_eq!(r.minimal_latency, e.span());
    }

    #[test]
    fn multi_source_graph_schedules_correctly() {
        // The surveillance graph has two independent timestamp sources and
        // four data-parallel tasks — the decomposition product is in the
        // hundreds, exercising the dominated-combo prune.
        let g = builders::stereo_surveillance();
        let c = ClusterSpec::single_node(4);
        let cfg = OptimalConfig {
            max_nodes: 20_000,
            max_schedules: 4,
            ..OptimalConfig::default()
        };
        for n in [1u32, 3] {
            let state = AppState::new(n);
            let r = optimal_schedule(&g, &c, &state, &cfg);
            let e = ExpandedGraph::build(&g, &state, &r.best.iteration.decomp);
            check_iteration(&r.best.iteration, &e, &c).unwrap();
            assert!(r.best.find_collision().is_none());
            // The two camera arms must overlap: latency well below work/1.
            assert!(r.minimal_latency * 2 < g.total_work(&state) + Micros::from_secs(1));
        }
    }

    #[test]
    fn dominated_combo_prune_preserves_optimum() {
        // Pruning by the work/span lower bound must not change the result:
        // compare against a run with the prune disabled by inflating the
        // budget and searching every combo (small state keeps this fast).
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(3);
        let state = AppState::new(2);
        let pruned = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        // Exhaustive reference: iterate combos manually without pruning.
        let mut best = Micros(u64::MAX);
        for d in decomposition_combos(&g, &state, true) {
            let e = ExpandedGraph::build(&g, &state, &d);
            let ls = list_schedule(&e, &c);
            best = best.min(ls.latency);
        }
        // The enumerator is at least as good as every list schedule, and
        // its own claimed optimum is consistent.
        assert!(pruned.minimal_latency <= best);
        assert!(pruned.complete);
    }

    #[test]
    fn node_budget_falls_back_gracefully() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let cfg = OptimalConfig {
            max_nodes: 10, // absurdly small
            ..OptimalConfig::default()
        };
        let r = optimal_schedule(&g, &c, &AppState::new(8), &cfg);
        assert!(!r.complete);
        // Still returns a legal schedule.
        let e = ExpandedGraph::build(&g, &AppState::new(8), &r.best.iteration.decomp);
        check_iteration(&r.best.iteration, &e, &c).unwrap();
    }

    #[test]
    fn more_processors_never_raise_optimal_latency() {
        let g = builders::color_tracker();
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let l2 = optimal_schedule(&g, &ClusterSpec::single_node(2), &state, &cfg).minimal_latency;
        let l4 = optimal_schedule(&g, &ClusterSpec::single_node(4), &state, &cfg).minimal_latency;
        assert!(l4 <= l2);
    }

    #[test]
    fn parallel_search_matches_serial_latency() {
        // The fan-out must not change the computed optimum, whatever the
        // thread count (workers share the incumbent but merge
        // deterministically).
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        for n in [1u32, 4, 8] {
            let state = AppState::new(n);
            let serial = optimal_schedule(&g, &c, &state, &OptimalConfig::default().serial());
            for threads in [2usize, 3, 8] {
                let cfg = OptimalConfig {
                    threads,
                    ..OptimalConfig::default()
                };
                let par = optimal_schedule(&g, &c, &state, &cfg);
                assert_eq!(
                    par.minimal_latency, serial.minimal_latency,
                    "threads={threads} state={n}"
                );
                assert_eq!(par.best.ii, serial.best.ii, "threads={threads} state={n}");
                let e = ExpandedGraph::build(&g, &state, &par.best.iteration.decomp);
                check_iteration(&par.best.iteration, &e, &c).unwrap();
            }
        }
    }

    #[test]
    fn warm_start_matches_cold_optimum() {
        // Warm-starting from a previous incumbent must never change the
        // result, only the amount of work done to reach it.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let cfg = OptimalConfig::default().serial();
        for n in [1u32, 8] {
            let state = AppState::new(n);
            let cold = optimal_schedule(&g, &c, &state, &cfg);
            let warm = optimal_schedule_warm(&g, &c, &state, &cfg, Some(&cold.best));
            assert_eq!(warm.minimal_latency, cold.minimal_latency, "state {n}");
            assert_eq!(warm.best.ii, cold.best.ii, "state {n}");
            assert!(
                warm.nodes_explored <= cold.nodes_explored,
                "state {n}: warm searched more ({} > {})",
                warm.nodes_explored,
                cold.nodes_explored
            );
            let e = ExpandedGraph::build(&g, &state, &warm.best.iteration.decomp);
            check_iteration(&warm.best.iteration, &e, &c).unwrap();
        }
    }

    #[test]
    fn warm_start_with_foreign_decomp_degrades_to_cold() {
        // A warm schedule from a different state whose decomposition is not
        // among this state's combos must not derail the search.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let cfg = OptimalConfig::default().serial();
        let eight = optimal_schedule(&g, &c, &AppState::new(8), &cfg);
        let one_cold = optimal_schedule(&g, &c, &AppState::new(1), &cfg);
        let one_warm = optimal_schedule_warm(&g, &c, &AppState::new(1), &cfg, Some(&eight.best));
        assert_eq!(one_warm.minimal_latency, one_cold.minimal_latency);
    }

    #[test]
    fn dominance_prune_preserves_optimum() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        for n in [1u32, 8] {
            let state = AppState::new(n);
            let with = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
            let without = optimal_schedule(
                &g,
                &c,
                &state,
                &OptimalConfig {
                    dominance_cap: 0,
                    ..OptimalConfig::default()
                },
            );
            assert_eq!(with.minimal_latency, without.minimal_latency, "state {n}");
            // The memo only ever removes work.
            assert!(with.nodes_explored <= without.nodes_explored, "state {n}");
        }
    }

    #[test]
    fn dominance_prune_reduces_search_nodes() {
        // On the 8-model tracker the prune must actually bite.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        assert!(r.dominance_prunes > 0, "memo never fired");
    }
}
