//! Plain-text persistence for schedules and schedule tables.
//!
//! The paper's premise is that schedules are computed offline and then
//! "operating for months" — so the precomputed [`ScheduleTable`] must
//! outlive the process. The format is a deliberately simple line protocol
//! (no external dependencies), stable across versions of this crate:
//!
//! ```text
//! schedule v1
//! state 4 0
//! procs 4
//! ii 1063000
//! rotation 1
//! latency 1144000
//! decomp 3 1 4
//! place 0 - 0 0 1000
//! place 3 0/4 1 140000 514000
//! end
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cluster::ProcId;
use taskgraph::{AppState, Decomposition, Micros, TaskId};

use crate::schedule::{IterationSchedule, PipelinedSchedule, Placement};
use crate::table::ScheduleTable;

/// A parse failure, with the offending line number (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize one pipelined schedule.
///
/// ```
/// use cds_core::optimal::{optimal_schedule, OptimalConfig};
/// use cds_core::persist::{schedule_from_str, schedule_to_string};
/// use cluster::ClusterSpec;
/// use taskgraph::{builders, AppState};
///
/// let graph = builders::color_tracker();
/// let cluster = ClusterSpec::single_node(2);
/// let sched = optimal_schedule(&graph, &cluster, &AppState::new(1), &OptimalConfig::default()).best;
/// let text = schedule_to_string(&sched);
/// assert_eq!(schedule_from_str(&text).unwrap(), sched);
/// ```
#[must_use]
pub fn schedule_to_string(s: &PipelinedSchedule) -> String {
    let mut out = String::new();
    let it = &s.iteration;
    let _ = writeln!(out, "schedule v1");
    let _ = writeln!(out, "state {} {}", it.state.n_models, it.state.aux);
    let _ = writeln!(out, "procs {}", s.n_procs);
    let _ = writeln!(out, "ii {}", s.ii.0);
    let _ = writeln!(out, "rotation {}", s.rotation);
    let _ = writeln!(out, "latency {}", it.latency.0);
    for (t, d) in &it.decomp {
        let _ = writeln!(out, "decomp {} {} {}", t.0, d.fp, d.mp);
    }
    let _ = writeln!(out, "places {}", it.placements.len());
    for p in &it.placements {
        let chunk = match p.chunk {
            Some((i, n)) => format!("{i}/{n}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "place {} {} {} {} {}",
            p.task.0, chunk, p.proc.0, p.start.0, p.end.0
        );
    }
    let _ = writeln!(out, "end");
    out
}

/// Serialize a whole schedule table (concatenated schedule blocks).
#[must_use]
pub fn table_to_string(table: &ScheduleTable) -> String {
    let mut out = String::new();
    for state in table.states() {
        let sched = table.get(&state).expect("state listed");
        out.push_str(&schedule_to_string(sched));
    }
    out
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.trim();
            if !line.is_empty() && !line.starts_with('#') {
                return Some((i + 1, line));
            }
        }
        None
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_u64(line: usize, s: &str, what: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| err(line, format!("invalid {what}: {s:?}")))
}

fn parse_block(lines: &mut Lines<'_>) -> Result<Option<PipelinedSchedule>, ParseError> {
    let Some((ln, header)) = lines.next_content() else {
        return Ok(None);
    };
    if header != "schedule v1" {
        return Err(err(ln, format!("expected 'schedule v1', got {header:?}")));
    }
    let mut state: Option<AppState> = None;
    let mut n_procs: Option<u32> = None;
    let mut ii: Option<Micros> = None;
    let mut rotation: Option<u32> = None;
    let mut latency: Option<Micros> = None;
    let mut decomp: BTreeMap<TaskId, Decomposition> = BTreeMap::new();
    let mut placements: Vec<Placement> = Vec::new();
    let mut expected_places: Option<usize> = None;

    loop {
        let Some((ln, line)) = lines.next_content() else {
            return Err(err(usize::MAX, "unterminated schedule block"));
        };
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match key {
            "end" => break,
            "state" => {
                if rest.len() != 2 {
                    return Err(err(ln, "state needs two fields"));
                }
                state = Some(AppState::with_aux(
                    parse_u64(ln, rest[0], "n_models")? as u32,
                    parse_u64(ln, rest[1], "aux")? as u32,
                ));
            }
            "procs" => n_procs = Some(parse_u64(ln, rest[0], "procs")? as u32),
            "ii" => ii = Some(Micros(parse_u64(ln, rest[0], "ii")?)),
            "rotation" => rotation = Some(parse_u64(ln, rest[0], "rotation")? as u32),
            "latency" => latency = Some(Micros(parse_u64(ln, rest[0], "latency")?)),
            "places" => expected_places = Some(parse_u64(ln, rest[0], "places")? as usize),
            "decomp" => {
                if rest.len() != 3 {
                    return Err(err(ln, "decomp needs three fields"));
                }
                decomp.insert(
                    TaskId(parse_u64(ln, rest[0], "task")? as usize),
                    Decomposition::new(
                        parse_u64(ln, rest[1], "fp")? as u32,
                        parse_u64(ln, rest[2], "mp")? as u32,
                    ),
                );
            }
            "place" => {
                if rest.len() != 5 {
                    return Err(err(ln, "place needs five fields"));
                }
                let chunk = if rest[1] == "-" {
                    None
                } else {
                    let (i, n) = rest[1]
                        .split_once('/')
                        .ok_or_else(|| err(ln, "chunk must be i/n or -"))?;
                    Some((
                        parse_u64(ln, i, "chunk index")? as u32,
                        parse_u64(ln, n, "chunk count")? as u32,
                    ))
                };
                let start = Micros(parse_u64(ln, rest[3], "start")?);
                let end = Micros(parse_u64(ln, rest[4], "end")?);
                if end < start {
                    return Err(err(ln, "placement ends before it starts"));
                }
                placements.push(Placement {
                    task: TaskId(parse_u64(ln, rest[0], "task")? as usize),
                    chunk,
                    proc: ProcId(parse_u64(ln, rest[2], "proc")? as u32),
                    start,
                    end,
                });
            }
            other => return Err(err(ln, format!("unknown key {other:?}"))),
        }
    }

    let state = state.ok_or_else(|| err(0, "missing state"))?;
    let n_procs = n_procs.ok_or_else(|| err(0, "missing procs"))?;
    if let Some(expected) = expected_places {
        if expected != placements.len() {
            return Err(err(
                0,
                format!("expected {expected} placements, found {}", placements.len()),
            ));
        }
    }
    let iteration = IterationSchedule {
        placements,
        latency: latency.ok_or_else(|| err(0, "missing latency"))?,
        state,
        decomp,
    };
    if iteration.latency != iteration.computed_latency() {
        return Err(err(0, "latency does not match placements"));
    }
    let sched = PipelinedSchedule {
        iteration,
        ii: ii.ok_or_else(|| err(0, "missing ii"))?,
        rotation: rotation.ok_or_else(|| err(0, "missing rotation"))?,
        n_procs,
    };
    if sched.find_collision().is_some() {
        return Err(err(0, "schedule collides with its own pipeline copies"));
    }
    Ok(Some(sched))
}

/// Parse one schedule.
pub fn schedule_from_str(s: &str) -> Result<PipelinedSchedule, ParseError> {
    let mut lines = Lines {
        iter: s.lines().enumerate(),
    };
    parse_block(&mut lines)?.ok_or_else(|| err(0, "empty input"))
}

/// Parse a whole table (zero or more schedule blocks).
pub fn table_from_str(s: &str) -> Result<ScheduleTable, ParseError> {
    let mut lines = Lines {
        iter: s.lines().enumerate(),
    };
    let mut entries = Vec::new();
    while let Some(sched) = parse_block(&mut lines)? {
        entries.push((sched.iteration.state, sched));
    }
    Ok(ScheduleTable::from_entries(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_schedule, OptimalConfig};
    use crate::table::ScheduleTable;
    use cluster::ClusterSpec;
    use taskgraph::builders;

    fn sample() -> PipelinedSchedule {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        optimal_schedule(&g, &c, &AppState::new(4), &OptimalConfig::default()).best
    }

    #[test]
    fn schedule_roundtrips() {
        let s = sample();
        let text = schedule_to_string(&s);
        let back = schedule_from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn table_roundtrips() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2, 4].iter().map(|&n| AppState::new(n)).collect();
        let table = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());
        let text = table_to_string(&table);
        let back = table_from_str(&text).unwrap();
        assert_eq!(back.len(), table.len());
        for s in table.states() {
            assert_eq!(table.get(&s), back.get(&s));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = sample();
        let mut text = String::from("# persisted by the offline scheduler\n\n");
        text.push_str(&schedule_to_string(&s));
        assert_eq!(schedule_from_str(&text).unwrap(), s);
    }

    #[test]
    fn corrupted_latency_is_rejected() {
        let s = sample();
        let text = schedule_to_string(&s).replace(
            &format!("latency {}", s.iteration.latency.0),
            "latency 1",
        );
        let e = schedule_from_str(&text).unwrap_err();
        assert!(e.message.contains("latency"), "{e}");
    }

    #[test]
    fn colliding_schedule_is_rejected() {
        let s = sample();
        // Halving the II breaks the pipeline feasibility.
        let text =
            schedule_to_string(&s).replace(&format!("ii {}", s.ii.0), &format!("ii {}", s.ii.0 / 4));
        let e = schedule_from_str(&text).unwrap_err();
        assert!(e.message.contains("collides"), "{e}");
    }

    #[test]
    fn malformed_lines_report_position() {
        for (broken, needle) in [
            ("schedule v2", "expected"),
            ("schedule v1\nstate x 0\nend", "n_models"),
            ("schedule v1\nwat 1\nend", "unknown key"),
            ("schedule v1\nplace 0 ? 0 0 1\nend", "chunk"),
            ("schedule v1\nplace 0 - 0 5 1\nend", "ends before"),
            ("schedule v1\nstate 1 0", "unterminated"),
        ] {
            let e = schedule_from_str(broken).unwrap_err();
            assert!(
                e.message.contains(needle),
                "input {broken:?} gave {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn empty_table_parses() {
        let t = table_from_str("").unwrap();
        assert!(t.is_empty());
    }
}
