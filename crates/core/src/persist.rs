//! Plain-text persistence for schedules and schedule tables.
//!
//! The paper's premise is that schedules are computed offline and then
//! "operating for months" — so the precomputed [`ScheduleTable`] must
//! outlive the process. The format is a deliberately simple line protocol
//! (no external dependencies), stable across versions of this crate:
//!
//! ```text
//! schedule v1
//! state 4 0
//! procs 4
//! ii 1063000
//! rotation 1
//! latency 1144000
//! decomp 3 1 4
//! place 0 - 0 0 1000
//! place 3 0/4 1 140000 514000
//! end
//! ```
//!
//! On top of the line protocol sits [`ScheduleCache`]: a directory of
//! per-regime schedule files keyed by a content hash of the inputs that
//! determine the search result (task graph, cluster, application state and
//! the result-affecting search options). Table construction consults the
//! cache first and only runs the branch-and-bound search on misses; entries
//! that fail validation — wrong key, parse error, or a schedule that is no
//! longer legal for the current graph — are deleted and re-searched, never
//! silently served.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cluster::{ClusterSpec, ProcId};
use taskgraph::{AppState, Decomposition, Micros, TaskGraph, TaskId};

use crate::expand::ExpandedGraph;
use crate::legality::check_iteration;
use crate::optimal::OptimalConfig;
use crate::schedule::{IterationSchedule, PipelinedSchedule, Placement};
use crate::table::ScheduleTable;

/// A parse failure, with the offending line number (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize one pipelined schedule.
///
/// ```
/// use cds_core::optimal::{optimal_schedule, OptimalConfig};
/// use cds_core::persist::{schedule_from_str, schedule_to_string};
/// use cluster::ClusterSpec;
/// use taskgraph::{builders, AppState};
///
/// let graph = builders::color_tracker();
/// let cluster = ClusterSpec::single_node(2);
/// let sched = optimal_schedule(&graph, &cluster, &AppState::new(1), &OptimalConfig::default()).best;
/// let text = schedule_to_string(&sched);
/// assert_eq!(schedule_from_str(&text).unwrap(), sched);
/// ```
#[must_use]
pub fn schedule_to_string(s: &PipelinedSchedule) -> String {
    let mut out = String::new();
    let it = &s.iteration;
    let _ = writeln!(out, "schedule v1");
    let _ = writeln!(out, "state {} {}", it.state.n_models, it.state.aux);
    let _ = writeln!(out, "procs {}", s.n_procs);
    let _ = writeln!(out, "ii {}", s.ii.0);
    let _ = writeln!(out, "rotation {}", s.rotation);
    let _ = writeln!(out, "latency {}", it.latency.0);
    for (t, d) in &it.decomp {
        let _ = writeln!(out, "decomp {} {} {}", t.0, d.fp, d.mp);
    }
    let _ = writeln!(out, "places {}", it.placements.len());
    for p in &it.placements {
        let chunk = match p.chunk {
            Some((i, n)) => format!("{i}/{n}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "place {} {} {} {} {}",
            p.task.0, chunk, p.proc.0, p.start.0, p.end.0
        );
    }
    let _ = writeln!(out, "end");
    out
}

/// Serialize a whole schedule table (concatenated schedule blocks).
#[must_use]
pub fn table_to_string(table: &ScheduleTable) -> String {
    let mut out = String::new();
    for state in table.states() {
        let sched = table.get(&state).expect("state listed");
        out.push_str(&schedule_to_string(sched));
    }
    out
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, raw) in self.iter.by_ref() {
            let line = raw.trim();
            if !line.is_empty() && !line.starts_with('#') {
                return Some((i + 1, line));
            }
        }
        None
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_u64(line: usize, s: &str, what: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| err(line, format!("invalid {what}: {s:?}")))
}

fn parse_block(lines: &mut Lines<'_>) -> Result<Option<PipelinedSchedule>, ParseError> {
    let Some((ln, header)) = lines.next_content() else {
        return Ok(None);
    };
    if header != "schedule v1" {
        return Err(err(ln, format!("expected 'schedule v1', got {header:?}")));
    }
    let mut state: Option<AppState> = None;
    let mut n_procs: Option<u32> = None;
    let mut ii: Option<Micros> = None;
    let mut rotation: Option<u32> = None;
    let mut latency: Option<Micros> = None;
    let mut decomp: BTreeMap<TaskId, Decomposition> = BTreeMap::new();
    let mut placements: Vec<Placement> = Vec::new();
    let mut expected_places: Option<usize> = None;

    loop {
        let Some((ln, line)) = lines.next_content() else {
            return Err(err(usize::MAX, "unterminated schedule block"));
        };
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        match key {
            "end" => break,
            "state" => {
                if rest.len() != 2 {
                    return Err(err(ln, "state needs two fields"));
                }
                state = Some(AppState::with_aux(
                    parse_u64(ln, rest[0], "n_models")? as u32,
                    parse_u64(ln, rest[1], "aux")? as u32,
                ));
            }
            "procs" => n_procs = Some(parse_u64(ln, rest[0], "procs")? as u32),
            "ii" => ii = Some(Micros(parse_u64(ln, rest[0], "ii")?)),
            "rotation" => rotation = Some(parse_u64(ln, rest[0], "rotation")? as u32),
            "latency" => latency = Some(Micros(parse_u64(ln, rest[0], "latency")?)),
            "places" => expected_places = Some(parse_u64(ln, rest[0], "places")? as usize),
            "decomp" => {
                if rest.len() != 3 {
                    return Err(err(ln, "decomp needs three fields"));
                }
                decomp.insert(
                    TaskId(parse_u64(ln, rest[0], "task")? as usize),
                    Decomposition::new(
                        parse_u64(ln, rest[1], "fp")? as u32,
                        parse_u64(ln, rest[2], "mp")? as u32,
                    ),
                );
            }
            "place" => {
                if rest.len() != 5 {
                    return Err(err(ln, "place needs five fields"));
                }
                let chunk = if rest[1] == "-" {
                    None
                } else {
                    let (i, n) = rest[1]
                        .split_once('/')
                        .ok_or_else(|| err(ln, "chunk must be i/n or -"))?;
                    Some((
                        parse_u64(ln, i, "chunk index")? as u32,
                        parse_u64(ln, n, "chunk count")? as u32,
                    ))
                };
                let start = Micros(parse_u64(ln, rest[3], "start")?);
                let end = Micros(parse_u64(ln, rest[4], "end")?);
                if end < start {
                    return Err(err(ln, "placement ends before it starts"));
                }
                placements.push(Placement {
                    task: TaskId(parse_u64(ln, rest[0], "task")? as usize),
                    chunk,
                    proc: ProcId(parse_u64(ln, rest[2], "proc")? as u32),
                    start,
                    end,
                });
            }
            other => return Err(err(ln, format!("unknown key {other:?}"))),
        }
    }

    let state = state.ok_or_else(|| err(0, "missing state"))?;
    let n_procs = n_procs.ok_or_else(|| err(0, "missing procs"))?;
    if let Some(expected) = expected_places {
        if expected != placements.len() {
            return Err(err(
                0,
                format!("expected {expected} placements, found {}", placements.len()),
            ));
        }
    }
    let iteration = IterationSchedule {
        placements,
        latency: latency.ok_or_else(|| err(0, "missing latency"))?,
        state,
        decomp,
    };
    if iteration.latency != iteration.computed_latency() {
        return Err(err(0, "latency does not match placements"));
    }
    let sched = PipelinedSchedule {
        iteration,
        ii: ii.ok_or_else(|| err(0, "missing ii"))?,
        rotation: rotation.ok_or_else(|| err(0, "missing rotation"))?,
        n_procs,
    };
    if sched.find_collision().is_some() {
        return Err(err(0, "schedule collides with its own pipeline copies"));
    }
    Ok(Some(sched))
}

/// Parse one schedule.
pub fn schedule_from_str(s: &str) -> Result<PipelinedSchedule, ParseError> {
    let mut lines = Lines {
        iter: s.lines().enumerate(),
    };
    parse_block(&mut lines)?.ok_or_else(|| err(0, "empty input"))
}

/// Parse a whole table (zero or more schedule blocks).
pub fn table_from_str(s: &str) -> Result<ScheduleTable, ParseError> {
    let mut lines = Lines {
        iter: s.lines().enumerate(),
    };
    let mut entries = Vec::new();
    while let Some(sched) = parse_block(&mut lines)? {
        entries.push((sched.iteration.state, sched));
    }
    Ok(ScheduleTable::from_entries(entries))
}

/// 64-bit FNV-1a over `bytes`.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for one regime's schedule: a content hash of everything
/// that determines the search result.
///
/// The hash covers the task graph, the cluster (both via their `Debug`
/// form, which spells out every cost, edge and locality), the application
/// state, and the result-affecting members of [`OptimalConfig`]
/// (`max_schedules`, `max_nodes`, `explore_decompositions`). The
/// search-strategy knobs — `threads` and `dominance_cap` — are deliberately
/// excluded: they change how the optimum is found, not what it is (the
/// property tests pin this equivalence down).
#[must_use]
pub fn schedule_cache_key(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
    cfg: &OptimalConfig,
) -> u64 {
    let fingerprint = format!(
        "cds-cache v1|graph={graph:?}|cluster={cluster:?}|state={state:?}|cfg={},{},{}",
        cfg.max_schedules, cfg.max_nodes, cfg.explore_decompositions
    );
    fnv1a64(fingerprint.as_bytes())
}

/// Why a cache lookup did not return a schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheMiss {
    /// No entry for this key.
    Absent,
    /// An entry existed but failed validation and was deleted.
    Invalidated,
}

/// A directory of persisted per-regime schedules, keyed by
/// [`schedule_cache_key`].
///
/// Each entry is one file, `sched-<key>.txt`, holding the key in a comment
/// line followed by a standard schedule block. Loading re-validates the
/// entry against the *current* graph and cluster (embedded key, parse-level
/// invariants, and a full legality re-check of every placement); anything
/// stale or corrupted is deleted so the caller re-searches.
#[derive(Clone, Debug)]
pub struct ScheduleCache {
    dir: PathBuf,
}

impl ScheduleCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ScheduleCache { dir })
    }

    /// The directory backing this cache.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("sched-{key:016x}.txt"))
    }

    /// Number of entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| {
                        e.file_name()
                            .to_str()
                            .is_some_and(|n| n.starts_with("sched-") && n.ends_with(".txt"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the schedule for `key`, validating it against the current
    /// `graph`/`cluster`/`state`. Invalid entries are deleted and reported
    /// as [`CacheMiss::Invalidated`] so the caller re-searches.
    pub fn load(
        &self,
        key: u64,
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        state: &AppState,
    ) -> Result<PipelinedSchedule, CacheMiss> {
        let path = self.path_for(key);
        let Ok(text) = fs::read_to_string(&path) else {
            return Err(CacheMiss::Absent);
        };
        match self.validate(key, &text, graph, cluster, state) {
            Some(sched) => Ok(sched),
            None => {
                // Stale or corrupted: delete so it is never served again.
                let _ = fs::remove_file(&path);
                Err(CacheMiss::Invalidated)
            }
        }
    }

    fn validate(
        &self,
        key: u64,
        text: &str,
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        state: &AppState,
    ) -> Option<PipelinedSchedule> {
        // The embedded key guards against renamed or mixed-up files.
        let expected = format!("# cds-cache key={key:016x}");
        if text.lines().next().map(str::trim) != Some(expected.as_str()) {
            return None;
        }
        // Parse-level invariants (latency consistency, pipeline collisions).
        let sched = schedule_from_str(text).ok()?;
        // The entry must answer the question that was asked…
        if sched.iteration.state != *state || sched.n_procs != cluster.n_procs() {
            return None;
        }
        // …and every placement must still be legal for the *current* graph
        // and cluster: durations, dependences and communication delays are
        // re-derived from scratch, so a graph edit that survives the hash
        // (it cannot, but defense in depth is cheap) or a hand-edited file
        // is caught here.
        let expanded = ExpandedGraph::build(graph, state, &sched.iteration.decomp);
        check_iteration(&sched.iteration, &expanded, cluster).ok()?;
        Some(sched)
    }

    /// Persist `sched` under `key`.
    pub fn store(&self, key: u64, sched: &PipelinedSchedule) -> io::Result<()> {
        let mut text = format!("# cds-cache key={key:016x}\n");
        text.push_str(&schedule_to_string(sched));
        // Write-then-rename so a crash never leaves a torn entry.
        let tmp = self.dir.join(format!("sched-{key:016x}.tmp"));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.path_for(key))
    }

    /// Remove every entry (used by `--cache-clear` style flows and tests).
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("sched-"))
            {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_schedule, OptimalConfig};
    use crate::table::ScheduleTable;
    use cluster::ClusterSpec;
    use taskgraph::builders;

    fn sample() -> PipelinedSchedule {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        optimal_schedule(&g, &c, &AppState::new(4), &OptimalConfig::default()).best
    }

    #[test]
    fn schedule_roundtrips() {
        let s = sample();
        let text = schedule_to_string(&s);
        let back = schedule_from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn table_roundtrips() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2, 4].iter().map(|&n| AppState::new(n)).collect();
        let table = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());
        let text = table_to_string(&table);
        let back = table_from_str(&text).unwrap();
        assert_eq!(back.len(), table.len());
        for s in table.states() {
            assert_eq!(table.get(&s), back.get(&s));
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = sample();
        let mut text = String::from("# persisted by the offline scheduler\n\n");
        text.push_str(&schedule_to_string(&s));
        assert_eq!(schedule_from_str(&text).unwrap(), s);
    }

    #[test]
    fn corrupted_latency_is_rejected() {
        let s = sample();
        let text = schedule_to_string(&s)
            .replace(&format!("latency {}", s.iteration.latency.0), "latency 1");
        let e = schedule_from_str(&text).unwrap_err();
        assert!(e.message.contains("latency"), "{e}");
    }

    #[test]
    fn colliding_schedule_is_rejected() {
        let s = sample();
        // Halving the II breaks the pipeline feasibility.
        let text = schedule_to_string(&s)
            .replace(&format!("ii {}", s.ii.0), &format!("ii {}", s.ii.0 / 4));
        let e = schedule_from_str(&text).unwrap_err();
        assert!(e.message.contains("collides"), "{e}");
    }

    #[test]
    fn malformed_lines_report_position() {
        for (broken, needle) in [
            ("schedule v2", "expected"),
            ("schedule v1\nstate x 0\nend", "n_models"),
            ("schedule v1\nwat 1\nend", "unknown key"),
            ("schedule v1\nplace 0 ? 0 0 1\nend", "chunk"),
            ("schedule v1\nplace 0 - 0 5 1\nend", "ends before"),
            ("schedule v1\nstate 1 0", "unterminated"),
        ] {
            let e = schedule_from_str(broken).unwrap_err();
            assert!(
                e.message.contains(needle),
                "input {broken:?} gave {e}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn empty_table_parses() {
        let t = table_from_str("").unwrap();
        assert!(t.is_empty());
    }

    fn temp_cache(tag: &str) -> ScheduleCache {
        let dir = std::env::temp_dir().join(format!("cds-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScheduleCache::open(dir).unwrap()
    }

    #[test]
    fn cache_roundtrips_and_counts() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let cache = temp_cache("roundtrip");
        let key = schedule_cache_key(&g, &c, &state, &cfg);
        assert_eq!(cache.load(key, &g, &c, &state), Err(CacheMiss::Absent));

        let sched = sample();
        cache.store(key, &sched).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load(key, &g, &c, &state), Ok(sched));

        cache.clear().unwrap();
        assert!(cache.is_empty());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_key_tracks_inputs() {
        let g = builders::color_tracker();
        let c4 = ClusterSpec::single_node(4);
        let c2 = ClusterSpec::single_node(2);
        let cfg = OptimalConfig::default();
        let k = schedule_cache_key(&g, &c4, &AppState::new(4), &cfg);
        // Different state, cluster, or result-affecting config → new key.
        assert_ne!(k, schedule_cache_key(&g, &c4, &AppState::new(5), &cfg));
        assert_ne!(k, schedule_cache_key(&g, &c2, &AppState::new(4), &cfg));
        let cfg2 = OptimalConfig {
            max_nodes: 7,
            ..OptimalConfig::default()
        };
        assert_ne!(k, schedule_cache_key(&g, &c4, &AppState::new(4), &cfg2));
        // Search-strategy knobs do not change the key.
        let cfg3 = OptimalConfig {
            threads: 7,
            dominance_cap: 0,
            ..OptimalConfig::default()
        };
        assert_eq!(k, schedule_cache_key(&g, &c4, &AppState::new(4), &cfg3));
    }

    #[test]
    fn corrupted_cache_entry_is_deleted_not_served() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let cache = temp_cache("corrupt");
        let key = schedule_cache_key(&g, &c, &state, &cfg);
        cache.store(key, &sample()).unwrap();

        // Corrupt the stored latency in place.
        let path = cache.dir().join(format!("sched-{key:016x}.txt"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("latency", "latency 1 #")).unwrap();

        assert_eq!(cache.load(key, &g, &c, &state), Err(CacheMiss::Invalidated));
        // The bad entry is gone: a second load is a plain miss.
        assert_eq!(cache.load(key, &g, &c, &state), Err(CacheMiss::Absent));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn stale_cache_entry_for_other_inputs_is_rejected() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let cache = temp_cache("stale");
        let key = schedule_cache_key(&g, &c, &state, &cfg);

        // A schedule for a *different* state stored under this key (file
        // renamed, hash collision, bug upstream — whatever the cause, it
        // must be rejected by the state check).
        let other = optimal_schedule(&g, &c, &AppState::new(2), &OptimalConfig::default()).best;
        cache.store(key, &other).unwrap();
        assert_eq!(cache.load(key, &g, &c, &state), Err(CacheMiss::Invalidated));

        // A schedule for a different cluster size likewise.
        let c2 = ClusterSpec::single_node(2);
        let narrow = optimal_schedule(&g, &c2, &state, &OptimalConfig::default()).best;
        cache.store(key, &narrow).unwrap();
        assert_eq!(cache.load(key, &g, &c, &state), Err(CacheMiss::Invalidated));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn renamed_cache_file_fails_key_check() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let cfg = OptimalConfig::default();
        let cache = temp_cache("renamed");
        let key = schedule_cache_key(&g, &c, &state, &cfg);
        cache.store(key, &sample()).unwrap();

        // Move the entry to a different key's filename.
        let other_key = key ^ 1;
        std::fs::rename(
            cache.dir().join(format!("sched-{key:016x}.txt")),
            cache.dir().join(format!("sched-{other_key:016x}.txt")),
        )
        .unwrap();
        assert_eq!(
            cache.load(other_key, &g, &c, &state),
            Err(CacheMiss::Invalidated)
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }
}
