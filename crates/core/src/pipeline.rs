//! Naive software pipelining — the paper's first transformation (Fig. 4(b)):
//! "Consider the work for a given time-stamp, through all the tasks, as an
//! iteration … each virtual processor processes one time-stamp through all
//! its tasks and then begins on the next time-stamp."
//!
//! The whole iteration runs serially on one processor; successive iterations
//! rotate across processors. "This schedule has no idle time, maintains a
//! uniform rate of frame processing, and no work is performed on any
//! time-stamp that is not processed fully … Although this schedule achieves
//! high throughput, it does not achieve minimal latency."

use cluster::{ClusterSpec, ProcId};
use std::collections::BTreeMap;
use taskgraph::{AppState, Micros, TaskGraph};

use crate::expand::ExpandedGraph;
use crate::schedule::{IterationSchedule, PipelinedSchedule, Placement};

/// Build the naive pipeline schedule: every task of one iteration stacked
/// serially (in topological order) on processor 0, repeated with rotation 1
/// at `II = ceil(latency / P)` — full utilization, maximal throughput,
/// serial-iteration latency.
#[must_use]
pub fn naive_pipeline(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
) -> PipelinedSchedule {
    let expanded = ExpandedGraph::build(graph, state, &BTreeMap::new());
    let order = expanded.topo_order();
    let mut placements = vec![
        Placement {
            task: taskgraph::TaskId(0),
            chunk: None,
            proc: ProcId(0),
            start: Micros::ZERO,
            end: Micros::ZERO,
        };
        expanded.len()
    ];
    let mut t = Micros::ZERO;
    for &i in &order {
        let inst = &expanded.instances()[i];
        // Serial stacking still owes dependence delays and (intra-node)
        // communication to earlier instances.
        let mut start = t;
        for e in &inst.preds {
            let comm = cluster
                .comm()
                .transfer(e.bytes, taskgraph::Locality::IntraNode);
            start = start.max(placements[e.from].end + e.delay + comm);
        }
        placements[i] = Placement {
            task: inst.task,
            chunk: inst.chunk,
            proc: ProcId(0),
            start,
            end: start + inst.duration,
        };
        t = start + inst.duration;
    }
    let latency = t;
    let iteration = IterationSchedule {
        placements,
        latency,
        state: *state,
        decomp: BTreeMap::new(),
    };
    let p = cluster.n_procs();
    let ii = Micros(latency.0.div_ceil(u64::from(p))).max(Micros(1));
    let sched = PipelinedSchedule {
        iteration,
        ii,
        rotation: 1 % p,
        n_procs: p,
    };
    debug_assert!(sched.find_collision().is_none());
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::check_iteration;
    use taskgraph::builders;

    #[test]
    fn pipeline_latency_is_serial_work() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(8);
        let p = naive_pipeline(&g, &c, &state);
        assert_eq!(p.iteration.latency, g.total_work(&state));
        assert_eq!(p.rotation, 1);
        assert!(p.find_collision().is_none());
    }

    #[test]
    fn pipeline_iteration_is_legal() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(2);
        let p = naive_pipeline(&g, &c, &state);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        check_iteration(&p.iteration, &e, &c).unwrap();
    }

    #[test]
    fn pipeline_throughput_scales_with_processors() {
        let g = builders::color_tracker();
        let state = AppState::new(4);
        let p1 = naive_pipeline(&g, &ClusterSpec::single_node(1), &state);
        let p4 = naive_pipeline(&g, &ClusterSpec::single_node(4), &state);
        assert!(p4.throughput_hz() > 3.9 * p1.throughput_hz());
        // "This schedule has no idle time": II × P ≈ latency.
        assert!(p4.ii * 4 >= p4.iteration.latency);
        assert!(p4.ii * 4 < p4.iteration.latency + Micros(4));
    }

    #[test]
    fn single_processor_pipeline_degenerates_to_serial() {
        let g = builders::pipeline(&[10, 20, 30]);
        let p = naive_pipeline(&g, &ClusterSpec::single_node(1), &AppState::new(1));
        assert_eq!(p.ii, p.iteration.latency);
        assert_eq!(p.rotation, 0);
        assert!(p.find_collision().is_none());
    }
}
