//! Kernel-tier pricing: treat each kernel implementation tier (scalar /
//! word / SIMD — `taskgraph::KernelTier`) as a priced alternative the
//! per-regime search can select, the CPU-variant extension of the paper's
//! Table 1 regime-dependent decompositions.
//!
//! A [`taskgraph::TierPricing`] carries measured per-tier cost factors
//! (from `vision::calibrate::measure_tier_pricing` or any other source).
//! [`optimal_schedule_priced`] runs the Fig. 6 branch-and-bound once per
//! tier against the tier-rescaled graph and keeps the fastest;
//! [`precompute_priced`] does that for a whole set of regimes, producing a
//! [`PricedTable`] that records which tier won each regime so the runtime
//! can install the matching compute backend alongside the schedule.
//!
//! The schedule cache composes transparently: cache keys content-hash the
//! graph's cost rows, so each tier's search gets its own cache entry.

use cluster::ClusterSpec;
use taskgraph::{AppState, KernelTier, Micros, TaskGraph, TierPricing};

use crate::optimal::{optimal_schedule, OptimalConfig, OptimalResult};
use crate::table::ScheduleTable;

/// The outcome of a tier-priced search for one state.
#[derive(Clone, Debug)]
pub struct PricedResult {
    /// The winning tier.
    pub tier: KernelTier,
    /// The winning tier's full search result.
    pub result: OptimalResult,
    /// Every priced tier's minimal latency, in pricing-row order.
    pub per_tier: Vec<(KernelTier, Micros)>,
}

/// Run the per-regime search once per priced tier (each tier's measured
/// factors applied to the graph's cost rows) and keep the fastest. Ties
/// break toward the earliest pricing row, so listing tiers oracle-first
/// makes the choice deterministic.
///
/// # Panics
///
/// Panics when `pricing` has no rows — there would be nothing to choose.
#[must_use]
pub fn optimal_schedule_priced(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    state: &AppState,
    cfg: &OptimalConfig,
    pricing: &TierPricing,
) -> PricedResult {
    assert!(
        !pricing.is_empty(),
        "pricing must contain at least one tier"
    );
    let mut best: Option<(KernelTier, OptimalResult)> = None;
    let mut per_tier = Vec::new();
    for tier in pricing.tiers() {
        let scaled = pricing.scaled(graph, tier);
        let r = optimal_schedule(&scaled, cluster, state, cfg);
        per_tier.push((tier, r.minimal_latency));
        let wins = match &best {
            None => true,
            Some((_, b)) => r.minimal_latency < b.minimal_latency,
        };
        if wins {
            best = Some((tier, r));
        }
    }
    // INVARIANT: pricing is non-empty (asserted above), so at least one
    // iteration ran and `best` was set.
    let (tier, result) = best.unwrap();
    PricedResult {
        tier,
        result,
        per_tier,
    }
}

/// One regime's priced outcome: the state, the winning tier, and every
/// tier's minimal latency.
pub type RegimeChoice = (AppState, KernelTier, Vec<(KernelTier, Micros)>);

/// A schedule table whose entries carry the kernel tier that won each
/// regime's priced search.
#[derive(Clone, Debug)]
pub struct PricedTable {
    /// The winning schedules, one per regime (ordinary [`ScheduleTable`]
    /// lookups apply — `get`, `get_nearest`, …).
    pub table: ScheduleTable,
    choices: Vec<RegimeChoice>,
}

impl PricedTable {
    /// The tier that won `state`'s search, if the state was precomputed.
    #[must_use]
    pub fn tier_for(&self, state: &AppState) -> Option<KernelTier> {
        self.choices
            .iter()
            .find(|(s, _, _)| s == state)
            .map(|&(_, t, _)| t)
    }

    /// Every regime's per-tier latencies `(state, winner, [(tier, L*)…])`.
    #[must_use]
    pub fn choices(&self) -> &[RegimeChoice] {
        &self.choices
    }
}

/// [`ScheduleTable::precompute`] with the kernel tier as an extra priced
/// axis: each regime stores its fastest tier's schedule and records the
/// winning tier for the runtime to install alongside it.
#[must_use]
pub fn precompute_priced(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    states: &[AppState],
    cfg: &OptimalConfig,
    pricing: &TierPricing,
) -> PricedTable {
    let mut entries = Vec::with_capacity(states.len());
    let mut choices = Vec::with_capacity(states.len());
    for state in states {
        let priced = optimal_schedule_priced(graph, cluster, state, cfg, pricing);
        entries.push((*state, priced.result.best));
        choices.push((*state, priced.tier, priced.per_tier));
    }
    PricedTable {
        table: ScheduleTable::from_entries(entries),
        choices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn pricing_for(g: &TaskGraph, scalar: u32, simd: u32) -> TierPricing {
        let t2 = g.task_by_name("Histogram").unwrap();
        let t3 = g.task_by_name("Change Detection").unwrap();
        let mut p = TierPricing::new();
        p.set_row(KernelTier::Scalar, vec![(t2, scalar), (t3, scalar)]);
        p.set_row(KernelTier::Word, vec![(t2, 1000), (t3, 1000)]);
        p.set_row(KernelTier::Simd, vec![(t2, simd), (t3, simd)]);
        p
    }

    #[test]
    fn priced_search_selects_the_cheap_tier() {
        let g = builders::color_tracker();
        let cluster = ClusterSpec::single_node(2);
        let cfg = OptimalConfig::default().serial();
        let pricing = pricing_for(&g, 2500, 400);
        let r = optimal_schedule_priced(&g, &cluster, &AppState::new(2), &cfg, &pricing);
        assert_eq!(r.tier, KernelTier::Simd);
        assert_eq!(r.per_tier.len(), 3);
        // The winner's latency is the minimum across tiers.
        let min = r.per_tier.iter().map(|&(_, l)| l).min().unwrap();
        assert_eq!(r.result.minimal_latency, min);
        // The scalar tier can never beat the baseline here.
        let scalar = r
            .per_tier
            .iter()
            .find(|(t, _)| *t == KernelTier::Scalar)
            .unwrap();
        assert!(scalar.1 >= min);
    }

    #[test]
    fn tie_breaks_toward_the_first_priced_row() {
        let g = builders::color_tracker();
        let cluster = ClusterSpec::single_node(2);
        let cfg = OptimalConfig::default().serial();
        // All tiers identical → the first row (scalar) must win.
        let pricing = pricing_for(&g, 1000, 1000);
        let r = optimal_schedule_priced(&g, &cluster, &AppState::new(2), &cfg, &pricing);
        assert_eq!(r.tier, KernelTier::Scalar);
    }

    #[test]
    fn priced_table_records_the_winner_per_regime() {
        let g = builders::color_tracker();
        let cluster = ClusterSpec::single_node(2);
        let cfg = OptimalConfig::default().serial();
        let pricing = pricing_for(&g, 2000, 500);
        let states: Vec<AppState> = (1..=3).map(AppState::new).collect();
        let priced = precompute_priced(&g, &cluster, &states, &cfg, &pricing);
        assert_eq!(priced.table.len(), 3);
        for s in &states {
            assert_eq!(priced.tier_for(s), Some(KernelTier::Simd));
            assert!(priced.table.get(s).is_some());
        }
        assert_eq!(priced.tier_for(&AppState::new(9)), None);
        assert_eq!(priced.choices().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_pricing_rejected() {
        let g = builders::color_tracker();
        let cluster = ClusterSpec::single_node(2);
        let _ = optimal_schedule_priced(
            &g,
            &cluster,
            &AppState::new(1),
            &OptimalConfig::default().serial(),
            &TierPricing::new(),
        );
    }
}
