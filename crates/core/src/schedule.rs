//! Schedule representations: the single-iteration placement and the
//! software-pipelined multi-iteration schedule built from it.

use std::collections::BTreeMap;

use cluster::ProcId;
use taskgraph::{AppState, Decomposition, Micros, TaskId};

/// One placed instance: a task (or one chunk of it) assigned to a processor
/// with explicit start/end offsets *within the iteration*.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// `(index, count)` when the instance is a data-parallel chunk.
    pub chunk: Option<(u32, u32)>,
    /// Assigned processor.
    pub proc: ProcId,
    /// Start offset from the iteration's origin.
    pub start: Micros,
    /// End offset.
    pub end: Micros,
}

impl Placement {
    /// The placement's duration.
    #[must_use]
    pub fn duration(&self) -> Micros {
        self.end - self.start
    }
}

/// A complete single-iteration schedule: every instance of the expanded DAG
/// placed, ordered as in [`crate::expand::ExpandedGraph::instances`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IterationSchedule {
    /// Placements, indexed by instance.
    pub placements: Vec<Placement>,
    /// Iteration latency: the maximum placement end.
    pub latency: Micros,
    /// The state the schedule was computed for.
    pub state: AppState,
    /// The data decomposition in force.
    pub decomp: BTreeMap<TaskId, Decomposition>,
}

impl IterationSchedule {
    /// Recompute `latency` from the placements (used after construction).
    #[must_use]
    pub fn computed_latency(&self) -> Micros {
        self.placements
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(Micros::ZERO)
    }

    /// Processors actually used.
    #[must_use]
    pub fn procs_used(&self) -> Vec<ProcId> {
        let mut v: Vec<ProcId> = self.placements.iter().map(|p| p.proc).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Total busy time across processors.
    #[must_use]
    pub fn busy_time(&self) -> Micros {
        self.placements.iter().map(Placement::duration).sum()
    }

    /// Per-stage predicted costs, grouped by task: the numbers a live run's
    /// measured stage times are checked against by the conformance layer
    /// (`obs::conformance`). For a data-parallel task the *busy* cost sums
    /// every chunk's duration while the *wall* cost spans first chunk start
    /// to last chunk end — wall is what an observer timing the stage sees.
    /// Returned in ascending `TaskId` order.
    #[must_use]
    pub fn stage_predictions(&self) -> Vec<StagePrediction> {
        let mut by_task: BTreeMap<TaskId, StagePrediction> = BTreeMap::new();
        for p in &self.placements {
            let e = by_task.entry(p.task).or_insert(StagePrediction {
                task: p.task,
                busy: Micros::ZERO,
                wall: Micros::ZERO,
                first_start: p.start,
                last_end: p.end,
                chunks: 0,
            });
            e.busy += p.duration();
            e.first_start = e.first_start.min(p.start);
            e.last_end = e.last_end.max(p.end);
            e.chunks += 1;
        }
        by_task
            .into_values()
            .map(|mut e| {
                e.wall = e.last_end - e.first_start;
                e
            })
            .collect()
    }

    /// A canonical key identifying the schedule up to processor renaming:
    /// placements listed in instance order with processors relabelled by
    /// first appearance. Two schedules with equal keys are the same schedule
    /// on a cluster of identical processors.
    #[must_use]
    pub fn canonical_key(&self) -> Vec<(u32, u64, u64)> {
        let mut relabel: Vec<Option<u32>> = vec![
            None;
            1 + self
                .placements
                .iter()
                .map(|p| p.proc.0 as usize)
                .max()
                .unwrap_or(0)
        ];
        let mut next = 0u32;
        let mut key = Vec::with_capacity(self.placements.len());
        for p in &self.placements {
            let slot = &mut relabel[p.proc.0 as usize];
            let label = match slot {
                Some(l) => *l,
                None => {
                    *slot = Some(next);
                    next += 1;
                    next - 1
                }
            };
            key.push((label, p.start.0, p.end.0));
        }
        key
    }
}

/// One task's predicted cost within an iteration schedule, aggregated over
/// its data-parallel chunks. See [`IterationSchedule::stage_predictions`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StagePrediction {
    /// The task.
    pub task: TaskId,
    /// Summed duration of every placement of the task.
    pub busy: Micros,
    /// Last placement end minus first placement start — the stage's
    /// scheduled wall time, the quantity a live measurement compares to.
    pub wall: Micros,
    /// Earliest placement start (offset within the iteration).
    pub first_start: Micros,
    /// Latest placement end.
    pub last_end: Micros,
    /// Number of placements (1 for a non-decomposed task).
    pub chunks: u32,
}

/// A software-pipelined schedule: the single-iteration pattern repeated
/// every `ii` microseconds, with processors rotated by `rotation` per
/// iteration — the wrap-around of the paper's Fig. 5(a), where "the pattern
/// shifts over one processor for each successive time-stamp".
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelinedSchedule {
    /// The repeated single-iteration pattern.
    pub iteration: IterationSchedule,
    /// Initiation interval: time between consecutive iteration origins.
    pub ii: Micros,
    /// Processor rotation applied per iteration.
    pub rotation: u32,
    /// Total processors in the target cluster.
    pub n_procs: u32,
}

impl PipelinedSchedule {
    /// The processor on which placement `p` of iteration `iter` runs.
    #[must_use]
    pub fn proc_of(&self, p: &Placement, iter: u64) -> ProcId {
        ProcId(
            ((u64::from(p.proc.0) + iter * u64::from(self.rotation)) % u64::from(self.n_procs))
                as u32,
        )
    }

    /// Steady-state throughput in iterations per second.
    #[must_use]
    pub fn throughput_hz(&self) -> f64 {
        if self.ii == Micros::ZERO {
            return 0.0;
        }
        1.0 / self.ii.as_secs_f64()
    }

    /// Iteration latency.
    #[must_use]
    pub fn latency(&self) -> Micros {
        self.iteration.latency
    }

    /// Check that shifted/rotated copies of the iteration never collide on a
    /// processor. Returns the first colliding (iteration-distance, placement
    /// pair) if any.
    #[must_use]
    pub fn find_collision(&self) -> Option<(u64, Placement, Placement)> {
        if self.ii == Micros::ZERO {
            // Degenerate; only valid for empty schedules.
            return None;
        }
        let horizon = self.iteration.latency.0.div_ceil(self.ii.0);
        for d in 1..=horizon {
            for a in &self.iteration.placements {
                for b in &self.iteration.placements {
                    let b_proc = self.proc_of(b, d);
                    if a.proc != b_proc {
                        continue;
                    }
                    let b_start = b.start + self.ii * d;
                    let b_end = b.end + self.ii * d;
                    if b_start < a.end && a.start < b_end {
                        return Some((d, *a, *b));
                    }
                }
            }
        }
        None
    }

    /// Live items implied per channel: how many iterations overlap at any
    /// instant — the paper's "a fixed schedule determines the number of
    /// items in each channel".
    #[must_use]
    pub fn overlapping_iterations(&self) -> u64 {
        if self.ii == Micros::ZERO {
            return 1;
        }
        self.iteration.latency.0.div_ceil(self.ii.0).max(1)
    }

    /// Steady-state processor utilization: busy time per iteration divided
    /// by `II × P`. The complement is the paper's "wasted space" — the
    /// minimal-latency schedule "fails to achieve maximum throughput since
    /// the schedule contains some wasted space".
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.ii == Micros::ZERO || self.n_procs == 0 {
            return 0.0;
        }
        self.iteration.busy_time().0 as f64 / (self.ii.0 as f64 * f64::from(self.n_procs))
    }

    /// A human-readable description of the schedule: header plus one line
    /// per placement in start order, with task names resolved through
    /// `graph`. Used by the `cds inspect` tool and debugging sessions.
    #[must_use]
    pub fn describe(&self, graph: &taskgraph::TaskGraph) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "schedule for {}: latency {}, II {} ({:.2} iter/s), rotation {}, {} procs, utilization {:.0}%",
            self.iteration.state,
            self.iteration.latency,
            self.ii,
            self.throughput_hz(),
            self.rotation,
            self.n_procs,
            self.utilization() * 100.0
        );
        if !self.iteration.decomp.is_empty() {
            let d: Vec<String> = self
                .iteration
                .decomp
                .iter()
                .map(|(t, d)| format!("{}: {d}", graph.task(*t).name))
                .collect();
            let _ = writeln!(out, "decomposition: {}", d.join(", "));
        }
        let mut order: Vec<&Placement> = self.iteration.placements.iter().collect();
        order.sort_by_key(|p| (p.start, p.proc));
        for p in order {
            let chunk = match p.chunk {
                Some((i, n)) => format!(" [chunk {}/{}]", i + 1, n),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "  {:>10} .. {:>10}  P{}  {}{}",
                p.start.to_string(),
                p.end.to_string(),
                p.proc.0,
                graph.task(p.task).name,
                chunk
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(task: usize, proc: u32, start: u64, end: u64) -> Placement {
        Placement {
            task: TaskId(task),
            chunk: None,
            proc: ProcId(proc),
            start: Micros(start),
            end: Micros(end),
        }
    }

    fn iteration(placements: Vec<Placement>) -> IterationSchedule {
        let latency = placements.iter().map(|p| p.end).max().unwrap();
        IterationSchedule {
            placements,
            latency,
            state: AppState::new(1),
            decomp: BTreeMap::new(),
        }
    }

    #[test]
    fn latency_and_busy_accessors() {
        let it = iteration(vec![place(0, 0, 0, 10), place(1, 1, 10, 40)]);
        assert_eq!(it.computed_latency(), Micros(40));
        assert_eq!(it.busy_time(), Micros(40));
        assert_eq!(it.procs_used(), vec![ProcId(0), ProcId(1)]);
    }

    #[test]
    fn canonical_key_ignores_processor_names() {
        let a = iteration(vec![place(0, 0, 0, 10), place(1, 1, 10, 40)]);
        let b = iteration(vec![place(0, 3, 0, 10), place(1, 0, 10, 40)]);
        assert_eq!(a.canonical_key(), b.canonical_key());
        let c = iteration(vec![place(0, 0, 0, 10), place(1, 0, 10, 40)]);
        assert_ne!(a.canonical_key(), c.canonical_key());
    }

    #[test]
    fn stage_predictions_aggregate_chunks() {
        let it = iteration(vec![
            place(0, 0, 0, 10),
            // Task 1 as two overlapping chunks on different processors.
            Placement {
                task: TaskId(1),
                chunk: Some((0, 2)),
                proc: ProcId(1),
                start: Micros(10),
                end: Micros(30),
            },
            Placement {
                task: TaskId(1),
                chunk: Some((1, 2)),
                proc: ProcId(2),
                start: Micros(12),
                end: Micros(35),
            },
        ]);
        let preds = it.stage_predictions();
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].task, TaskId(0));
        assert_eq!(preds[0].busy, Micros(10));
        assert_eq!(preds[0].wall, Micros(10));
        assert_eq!(preds[0].chunks, 1);
        let t1 = preds[1];
        assert_eq!(t1.task, TaskId(1));
        assert_eq!(t1.busy, Micros(43), "20 + 23 summed");
        assert_eq!(t1.wall, Micros(25), "10..35 spanned");
        assert_eq!(t1.chunks, 2);
        // A real optimal schedule predicts every task of the graph.
        use crate::optimal::{optimal_schedule, OptimalConfig};
        use cluster::ClusterSpec;
        let g = taskgraph::builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let r = optimal_schedule(&g, &c, &AppState::new(2), &OptimalConfig::default());
        let preds = r.best.iteration.stage_predictions();
        assert_eq!(preds.len(), g.n_tasks());
        assert!(preds.iter().all(|p| p.wall <= r.best.iteration.latency));
        assert!(preds.iter().all(|p| p.wall >= Micros(1)));
    }

    #[test]
    fn rotation_wraps_processors() {
        let sched = PipelinedSchedule {
            iteration: iteration(vec![place(0, 2, 0, 10)]),
            ii: Micros(10),
            rotation: 1,
            n_procs: 4,
        };
        let p = sched.iteration.placements[0];
        assert_eq!(sched.proc_of(&p, 0), ProcId(2));
        assert_eq!(sched.proc_of(&p, 1), ProcId(3));
        assert_eq!(sched.proc_of(&p, 2), ProcId(0));
        assert_eq!(sched.proc_of(&p, 6), ProcId(0));
    }

    #[test]
    fn collision_detected_when_ii_too_small() {
        // One 30-long placement on one processor, no rotation: ii=10 collides.
        let bad = PipelinedSchedule {
            iteration: iteration(vec![place(0, 0, 0, 30)]),
            ii: Micros(10),
            rotation: 0,
            n_procs: 1,
        };
        assert!(bad.find_collision().is_some());
        let good = PipelinedSchedule {
            iteration: iteration(vec![place(0, 0, 0, 30)]),
            ii: Micros(30),
            rotation: 0,
            n_procs: 1,
        };
        assert!(good.find_collision().is_none());
    }

    #[test]
    fn utilization_and_description() {
        use crate::optimal::{optimal_schedule, OptimalConfig};
        use cluster::ClusterSpec;
        let g = taskgraph::builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let r = optimal_schedule(&g, &c, &AppState::new(4), &OptimalConfig::default());
        let u = r.best.utilization();
        assert!(u > 0.5 && u <= 1.0, "utilization {u}");
        let text = r.best.describe(&g);
        assert!(text.contains("latency"));
        assert!(text.contains("Target Detection"));
        assert!(text.contains("chunk"), "DP chunks listed:\n{text}");
        // One line per placement plus header(s).
        let lines = text.lines().count();
        assert!(lines > r.best.iteration.placements.len());
    }

    #[test]
    fn full_pipeline_utilization_is_one() {
        // The naive pipeline "has no idle time": II × P == latency exactly
        // when P divides the latency.
        let iter = iteration(vec![place(0, 0, 0, 90)]);
        let sched = PipelinedSchedule {
            iteration: iter,
            ii: Micros(30),
            rotation: 1,
            n_procs: 3,
        };
        assert!((sched.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_resolves_collision() {
        // 30-long placement, 3 procs, rotation 1: ii=10 tiles perfectly.
        let sched = PipelinedSchedule {
            iteration: iteration(vec![place(0, 0, 0, 30)]),
            ii: Micros(10),
            rotation: 1,
            n_procs: 3,
        };
        assert!(sched.find_collision().is_none());
        assert_eq!(sched.overlapping_iterations(), 3);
        assert!((sched.throughput_hz() - 1e5).abs() < 1.0);
    }
}
