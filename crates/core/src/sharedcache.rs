//! Shared, pressure-evicted cross-tenant schedule cache.
//!
//! The disk cache ([`ScheduleCache`](crate::persist::ScheduleCache)) makes a
//! *restart* cheap; this module makes a *fleet* cheap. When hundreds of
//! tracker tenants run the same application in the same regime, every one of
//! them computes the same [`schedule_cache_key`](crate::persist::schedule_cache_key)
//! — so the branch-and-bound search should run **once**, with every other
//! tenant blocking briefly and then sharing the result by `Arc`.
//!
//! Two layers:
//!
//! - [`GcMap`] — a bounded-weight map with pluggable eviction: values report
//!   their own [`weight`](TrackableValue::weight) and whether they are
//!   [`locked`](TrackableValue::is_locked) (still referenced by a tenant),
//!   and a [`CollectionStrategy`] ranks the unlocked entries by collection
//!   pressure. When the total weight overruns the bound, the
//!   highest-pressure unlocked entries are evicted until the map fits.
//!   Locked entries are never evicted, whatever the pressure.
//! - [`SharedScheduleCache`] — the schedule-specific wrapper: a process-wide
//!   `key → Arc<PipelinedSchedule>` map with **single-flight** misses. The
//!   first tenant to miss a key runs the search; every tenant that arrives
//!   while the search is in flight waits on a condvar and is handed the same
//!   `Arc`. A counter records exactly how many times the compute closure ran,
//!   so tests can assert "a thousand tenants, one search" literally.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::schedule::PipelinedSchedule;

/// A value a [`GcMap`] can manage: it knows its own eviction cost.
pub trait TrackableValue {
    /// An entry still in use by some holder must never be evicted.
    fn is_locked(&self) -> bool;
    /// This entry's contribution to the map's bounded total weight.
    fn weight(&self) -> usize;
}

/// Ranks entries for eviction. Implementations are per-entry bookkeeping
/// cells: the map calls [`notify_used`](CollectionStrategy::notify_used) on
/// every access with a monotone tick, and reads back a
/// [`collection_pressure`](CollectionStrategy::collection_pressure) when it
/// must shed weight — the *highest*-pressure unlocked entries go first.
pub trait CollectionStrategy: Default {
    /// Comparable eviction rank; greater means evicted sooner.
    type Pressure: Copy + Ord;
    /// Current eviction rank of this entry.
    fn collection_pressure(&self) -> Self::Pressure;
    /// Record an access at monotone time `tick`.
    fn notify_used(&mut self, tick: u64);
}

/// Least-recently-used [`CollectionStrategy`]: pressure is the age of the
/// last access, so the staler an entry the sooner it is evicted.
#[derive(Clone, Copy, Debug, Default)]
pub struct LruStrategy {
    last_used: u64,
}

impl CollectionStrategy for LruStrategy {
    type Pressure = std::cmp::Reverse<u64>;

    fn collection_pressure(&self) -> Self::Pressure {
        // Reverse: an *older* last_used must compare *greater* (more
        // pressure), so max_by_key picks the least recently used entry.
        std::cmp::Reverse(self.last_used)
    }

    fn notify_used(&mut self, tick: u64) {
        self.last_used = tick;
    }
}

/// A bounded-weight map with pressure-driven garbage collection.
///
/// Not itself thread-safe — callers wrap it in a lock (see
/// [`SharedScheduleCache`]). The bound is on total
/// [`weight`](TrackableValue::weight), not entry count, and is enforced on
/// every insert: while the total overruns and an unlocked entry exists, the
/// unlocked entry with the highest collection pressure is evicted. Locked
/// entries may therefore hold the map above its bound — by design, since
/// evicting a schedule a tenant is actively running would be a correctness
/// bug, not a memory win.
#[derive(Debug)]
pub struct GcMap<K, V, S> {
    data: HashMap<K, (V, S)>,
    max_weight: usize,
    tick: u64,
    evictions: u64,
}

impl<K: Clone + Eq + Hash, V: TrackableValue, S: CollectionStrategy> GcMap<K, V, S> {
    /// An empty map that will hold at most `max_weight` total weight of
    /// unlocked entries.
    #[must_use]
    pub fn new(max_weight: usize) -> Self {
        GcMap {
            data: HashMap::new(),
            max_weight,
            tick: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its usage tick on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, strategy) = self.data.get_mut(key)?;
        strategy.notify_used(tick);
        Some(value)
    }

    /// Insert (or replace) `key`, then shed weight back under the bound.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        let mut strategy = S::default();
        strategy.notify_used(self.tick);
        self.data.insert(key, (value, strategy));
        self.perform_gc();
    }

    /// Evict highest-pressure unlocked entries until the total weight fits
    /// the bound (or only locked entries remain).
    pub fn perform_gc(&mut self) {
        while self.total_weight() > self.max_weight {
            let victim = self
                .data
                .iter()
                .filter(|(_, (v, _))| !v.is_locked())
                .max_by_key(|(_, (_, s))| s.collection_pressure())
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.data.remove(&k);
                    self.evictions += 1;
                }
                None => break, // everything left is locked
            }
        }
    }

    /// Sum of all entries' weights (locked included).
    #[must_use]
    pub fn total_weight(&self) -> usize {
        self.data.values().map(|(v, _)| v.weight()).sum()
    }

    /// Whether any entry could currently be evicted.
    #[must_use]
    pub fn has_unlocked(&self) -> bool {
        self.data.values().any(|(v, _)| !v.is_locked())
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured weight bound.
    #[must_use]
    pub fn max_weight(&self) -> usize {
        self.max_weight
    }

    /// Cumulative count of pressure evictions.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// A cached schedule. Locked exactly while some tenant still holds the
/// `Arc` handed out by [`SharedScheduleCache::get_or_search`] — the map's
/// own reference is the baseline strong count of 1.
#[derive(Debug)]
struct CachedEntry {
    sched: Arc<PipelinedSchedule>,
}

impl TrackableValue for CachedEntry {
    fn is_locked(&self) -> bool {
        Arc::strong_count(&self.sched) > 1
    }

    fn weight(&self) -> usize {
        // Placement count is the schedule's true size driver (everything
        // else is O(1)); floor at 1 so empty schedules still cost.
        self.sched.iteration.placements.len().max(1)
    }
}

struct Inner {
    map: GcMap<u64, CachedEntry, LruStrategy>,
    /// Keys with a search currently in flight (single-flight gate).
    pending: HashSet<u64>,
}

/// Process-wide, thread-safe schedule cache shared by every tenant of a
/// fleet: bounded weight, LRU pressure eviction, locked-while-in-use
/// entries, and single-flight misses.
///
/// ```
/// use std::sync::Arc;
/// use cds_core::optimal::{optimal_schedule, OptimalConfig};
/// use cds_core::sharedcache::SharedScheduleCache;
/// use cluster::ClusterSpec;
/// use taskgraph::{builders, AppState};
///
/// let g = builders::color_tracker();
/// let c = ClusterSpec::single_node(2);
/// let cache = SharedScheduleCache::new(256);
/// let search = || optimal_schedule(&g, &c, &AppState::new(1), &OptimalConfig::default()).best;
/// let a = cache.get_or_search(42, search);
/// let b = cache.get_or_search(42, search); // served from memory
/// assert!(Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.searches(), 1);
/// assert_eq!(cache.hits(), 1);
/// ```
pub struct SharedScheduleCache {
    inner: Mutex<Inner>,
    /// Signalled when an in-flight search completes (or aborts).
    ready: Condvar,
    hits: AtomicU64,
    searches: AtomicU64,
}

impl std::fmt::Debug for SharedScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedScheduleCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("searches", &self.searches())
            .finish()
    }
}

/// Clears the pending mark if the compute closure unwinds, so waiting
/// tenants retry the search instead of blocking forever.
struct PendingGuard<'a> {
    cache: &'a SharedScheduleCache,
    key: u64,
    armed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.inner.lock().pending.remove(&self.key);
            self.cache.ready.notify_all();
        }
    }
}

impl SharedScheduleCache {
    /// An empty cache bounded at `max_weight` total schedule weight
    /// (roughly: total placements across cached schedules).
    #[must_use]
    pub fn new(max_weight: usize) -> Self {
        SharedScheduleCache {
            inner: Mutex::new(Inner {
                map: GcMap::new(max_weight),
                pending: HashSet::new(),
            }),
            ready: Condvar::new(),
            hits: AtomicU64::new(0),
            searches: AtomicU64::new(0),
        }
    }

    /// Return the schedule for `key`, computing it with `search` on a miss.
    ///
    /// Misses are single-flight: concurrent callers for the same key block
    /// until the one running search finishes, then share its result. The
    /// returned `Arc` pins the entry against eviction for as long as the
    /// caller holds it.
    pub fn get_or_search<F>(&self, key: u64, search: F) -> Arc<PipelinedSchedule>
    where
        F: FnOnce() -> PipelinedSchedule,
    {
        let mut g = self.inner.lock();
        loop {
            if let Some(entry) = g.map.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.sched);
            }
            if g.pending.insert(key) {
                break; // we won the flight: run the search ourselves
            }
            // Someone else is searching this key — wait for their result.
            self.ready.wait(&mut g);
        }
        drop(g);

        let mut guard = PendingGuard {
            cache: self,
            key,
            armed: true,
        };
        self.searches.fetch_add(1, Ordering::Relaxed);
        let sched = Arc::new(search());
        let mut g = self.inner.lock();
        g.pending.remove(&key);
        g.map.insert(
            key,
            CachedEntry {
                sched: Arc::clone(&sched),
            },
        );
        drop(g);
        guard.armed = false;
        self.ready.notify_all();
        sched
    }

    /// Hit-only probe: the cached schedule for `key`, if resident. Never
    /// waits on an in-flight search and never computes.
    pub fn get(&self, key: u64) -> Option<Arc<PipelinedSchedule>> {
        let mut g = self.inner.lock();
        let entry = g.map.get(&key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(Arc::clone(&entry.sched))
    }

    /// Install a schedule computed elsewhere (e.g. a drift re-fit published
    /// for neighbours), waking any tenants waiting on this key.
    pub fn insert(&self, key: u64, sched: Arc<PipelinedSchedule>) {
        let mut g = self.inner.lock();
        g.pending.remove(&key);
        g.map.insert(key, CachedEntry { sched });
        drop(g);
        self.ready.notify_all();
    }

    /// Number of times the compute closure ran — i.e. true cache misses
    /// that reached the search (or disk) path.
    #[must_use]
    pub fn searches(&self) -> u64 {
        self.searches.load(Ordering::Relaxed)
    }

    /// Number of lookups served from memory.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative pressure evictions.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.inner.lock().map.evictions()
    }

    /// Resident entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Current total weight (locked entries included).
    #[must_use]
    pub fn total_weight(&self) -> usize {
        self.inner.lock().map.total_weight()
    }

    /// The configured weight bound.
    #[must_use]
    pub fn max_weight(&self) -> usize {
        self.inner.lock().map.max_weight()
    }

    /// Sweep entries whose external handles are gone. A tenant's departure
    /// drops its `Arc<PipelinedSchedule>` clones, which *unlocks* the
    /// entries; this sweep then lets the weight bound actually reclaim
    /// them. A no-op while the cache is within budget.
    pub fn release_unused(&self) {
        self.inner.lock().map.perform_gc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::{optimal_schedule, OptimalConfig};
    use cluster::ClusterSpec;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;
    use taskgraph::{builders, AppState};

    fn sample() -> PipelinedSchedule {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        optimal_schedule(&g, &c, &AppState::new(1), &OptimalConfig::default()).best
    }

    /// Test value: weight is explicit, lock state is the pin Arc.
    struct TestVal {
        pin: Arc<()>,
        weight: usize,
    }

    impl TrackableValue for TestVal {
        fn is_locked(&self) -> bool {
            Arc::strong_count(&self.pin) > 1
        }
        fn weight(&self) -> usize {
            self.weight
        }
    }

    #[test]
    fn gcmap_evicts_lru_first() {
        let mut m: GcMap<&str, TestVal, LruStrategy> = GcMap::new(10);
        let mk = |w| TestVal {
            pin: Arc::new(()),
            weight: w,
        };
        m.insert("a", mk(4));
        m.insert("b", mk(4));
        assert!(m.get(&"a").is_some()); // refresh a: b is now LRU
        m.insert("c", mk(4)); // overruns: 12 > 10
        assert_eq!(m.total_weight(), 8);
        assert!(m.get(&"b").is_none(), "stalest entry evicted");
        assert!(m.get(&"a").is_some());
        assert!(m.get(&"c").is_some());
        assert_eq!(m.evictions(), 1);
    }

    #[test]
    fn gcmap_never_evicts_locked_entries() {
        let mut m: GcMap<u32, TestVal, LruStrategy> = GcMap::new(6);
        let pinned = Arc::new(());
        m.insert(
            0,
            TestVal {
                pin: Arc::clone(&pinned),
                weight: 4,
            },
        );
        for k in 1..10u32 {
            m.insert(
                k,
                TestVal {
                    pin: Arc::new(()),
                    weight: 4,
                },
            );
        }
        // The pinned entry survives every pressure pass, even though it is
        // by far the least recently used.
        assert!(m.get(&0).is_some(), "locked entry must survive churn");
        assert!(m.total_weight() <= 6 + 4, "only the lock exceeds the bound");
        drop(pinned);
        m.insert(
            10,
            TestVal {
                pin: Arc::new(()),
                weight: 4,
            },
        );
        assert!(m.total_weight() <= 6, "unlocked weight obeys the bound");
    }

    #[test]
    fn thousand_tenants_in_one_regime_pay_one_search() {
        let cache = SharedScheduleCache::new(1024);
        let schedule = sample();
        let calls = AtomicUsize::new(0);
        let key = 0xF1EE7;
        let n_tenants = 1000;
        let n_threads = 16;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let cache = &cache;
                let calls = &calls;
                let schedule = &schedule;
                s.spawn(move || {
                    let share = n_tenants / n_threads + usize::from(t < n_tenants % n_threads);
                    for _ in 0..share {
                        let got = cache.get_or_search(key, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            // Slow search: let other tenants pile up on the
                            // single-flight gate while it runs.
                            std::thread::sleep(std::time::Duration::from_millis(25));
                            schedule.clone()
                        });
                        assert_eq!(&*got, schedule);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one search ran");
        assert_eq!(cache.searches(), 1);
        assert_eq!(cache.hits(), (n_tenants - 1) as u64);
    }

    #[test]
    fn returned_arc_pins_entry_against_eviction() {
        let cache = SharedScheduleCache::new(1); // too small for any schedule
        let schedule = sample();
        assert!(schedule.iteration.placements.len() > 1);
        let held = cache.get_or_search(7, || schedule.clone());
        // Over budget but locked: stays resident.
        assert_eq!(cache.len(), 1);
        assert!(cache.total_weight() > cache.max_weight());
        drop(held);
        // Next pressure pass reclaims it.
        let _other = cache.get_or_search(8, || schedule.clone());
        assert!(
            cache.get(7).is_none(),
            "unpinned entry evicted under pressure"
        );
    }

    #[test]
    fn release_unused_sweeps_after_the_last_handle_drops() {
        // The departure path: while a tenant holds its schedule Arc the
        // entry is locked; once the tenant departs and drops it, an
        // explicit sweep (not just the next insert) reclaims the weight.
        let cache = SharedScheduleCache::new(1); // too small for any schedule
        let schedule = sample();
        let held = cache.get_or_search(7, || schedule.clone());
        cache.release_unused();
        assert_eq!(cache.len(), 1, "a pinned entry survives the sweep");
        drop(held);
        cache.release_unused();
        assert!(cache.is_empty(), "the departed tenant's entry was swept");
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn distinct_keys_churn_within_bound() {
        let schedule = sample();
        let w = schedule.iteration.placements.len();
        let bound = w * 3;
        let cache = SharedScheduleCache::new(bound);
        for k in 0..50u64 {
            let got = cache.get_or_search(k, || schedule.clone());
            drop(got);
            assert!(
                cache.total_weight() <= bound,
                "weight {} over bound {bound} at key {k}",
                cache.total_weight()
            );
        }
        assert_eq!(cache.searches(), 50);
        assert!(cache.evictions() >= 47);
    }

    #[derive(Clone, Debug)]
    enum ChurnOp {
        /// Insert (or re-search) key with the given weight, pinning it.
        Touch(u8, usize),
        /// Drop the oldest held pin.
        Unpin,
        /// Refresh a key's recency if present.
        Get(u8),
    }

    fn churn_op() -> impl Strategy<Value = ChurnOp> {
        prop_oneof![
            (0u8..32, 1usize..8).prop_map(|(k, w)| ChurnOp::Touch(k, w)),
            Just(ChurnOp::Unpin),
            (0u8..32).prop_map(ChurnOp::Get),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The bounded-weight invariant under random tenant churn: after
        /// any operation sequence, either the total weight fits the bound
        /// or every resident entry is locked by a live tenant.
        #[test]
        fn weight_stays_bounded_under_random_churn(
            ops in proptest::collection::vec(churn_op(), 1..80),
            bound in 4usize..24,
        ) {
            let mut m: GcMap<u8, TestVal, LruStrategy> = GcMap::new(bound);
            let mut pins: Vec<Arc<()>> = Vec::new();
            for op in ops {
                match op {
                    ChurnOp::Touch(k, w) => {
                        let pin = Arc::new(());
                        pins.push(Arc::clone(&pin));
                        m.insert(k, TestVal { pin, weight: w });
                    }
                    ChurnOp::Unpin => {
                        if !pins.is_empty() {
                            pins.remove(0);
                        }
                        m.perform_gc();
                    }
                    ChurnOp::Get(k) => {
                        let _ = m.get(&k);
                    }
                }
                prop_assert!(
                    m.total_weight() <= bound || !m.has_unlocked(),
                    "weight {} > bound {bound} with evictable entries",
                    m.total_weight()
                );
            }
        }
    }
}
