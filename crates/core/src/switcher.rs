//! Run-time regime switching (§3.4): execute a stream of frames whose true
//! state follows a [`StateTrack`], looking up the active schedule in a
//! [`ScheduleTable`] as state changes are detected, and measure what the
//! paper claims — that the application "operates in the optimal or
//! near-optimal region in the face of a dynamically changing environment",
//! because "we overcome any inefficiency at the point of a change in
//! schedule over the relatively long use of the new schedule".
//!
//! ## Execution model
//!
//! Frame `f` is issued at `origin(f) = max(arrival(f), origin(f-1) +
//! II(f-1))`. Its iteration is the active schedule *replayed* under the true
//! state ([`crate::evaluate::replay_iteration`]): placements and
//! decomposition stay as precomputed, durations reflect reality — running a
//! 2-model schedule on 8 models is structurally possible and simply slow,
//! which is exactly the mismatch penalty regime switching removes. Detection
//! is causal: the state of frame `f` becomes observable only when `f`
//! completes (the tracker's peak detector reports how many people it
//! found), then passes through the debounced [`RegimeDetector`].

use std::collections::{HashMap, VecDeque};

use cluster::{ClusterSpec, FrameClock, FrameRecord, Metrics, StateTrack};
use taskgraph::{AppState, Micros, TaskGraph};

use crate::detector::RegimeDetector;
use crate::evaluate::{digitize_offset, replay_iteration};
use crate::expand::ExpandedGraph;
use crate::ii::find_best_ii;
use crate::table::ScheduleTable;

/// How the runtime moves from the old schedule to the new one.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransitionPolicy {
    /// Switch at the next iteration boundary; in-flight iterations finish
    /// under the old pattern while new ones start under the new pattern.
    CutOver,
    /// Drain: hold new issues until every in-flight iteration completes,
    /// then start cleanly. Simpler reasoning, one pipeline-depth bubble.
    Drain,
}

/// Which scheduling strategy the run uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleStrategy {
    /// One fixed schedule — the table entry nearest to the given state —
    /// used for the whole run (the static straw man).
    Static(AppState),
    /// The paper's proposal: detect regime changes (debounced over
    /// `confirm_after` frames) and switch via table lookup.
    RegimeTable {
        /// Consecutive frames a new state must persist before switching.
        confirm_after: usize,
        /// Transition policy at a switch.
        policy: TransitionPolicy,
    },
    /// Upper bound: the true state is known instantly, no detection lag.
    Oracle,
}

/// One confirmed schedule switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SwitchEvent {
    /// The first frame issued under the new schedule.
    pub frame: u64,
    /// When the switch took effect.
    pub at: Micros,
    /// Previous regime.
    pub from: AppState,
    /// New regime.
    pub to: AppState,
}

/// Configuration of a regime-switching run.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Frame clock.
    pub clock: FrameClock,
    /// Strategy under test.
    pub strategy: ScheduleStrategy,
    /// Completed frames excluded from metrics.
    pub warmup_frames: usize,
}

/// The outcome of a regime-switching run.
#[derive(Clone, Debug)]
pub struct SwitchOutcome {
    /// Per-frame lifecycle records.
    pub frames: Vec<FrameRecord>,
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// Confirmed switches, in order.
    pub switches: Vec<SwitchEvent>,
    /// Frames executed under a schedule whose design state differed from
    /// the true state (the mismatch exposure).
    pub mismatch_frames: u64,
}

/// Simulate a frame stream with dynamic state `track` under `cfg`.
#[must_use]
pub fn simulate_regime_switched(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    table: &ScheduleTable,
    track: &StateTrack,
    cfg: &SwitchConfig,
) -> SwitchOutcome {
    assert!(!table.is_empty(), "schedule table must be non-empty");
    let n_procs = cluster.n_procs();

    // Replay cache: (design state, true state) → (latency, ii, digitize offset).
    type StateKey = (u32, u32);
    type ReplayStats = (Micros, Micros, Micros);
    let mut cache: HashMap<(StateKey, StateKey), ReplayStats> = HashMap::new();
    let mut replay = |design: AppState, true_state: AppState| -> (Micros, Micros, Micros) {
        let k = (
            (design.n_models, design.aux),
            (true_state.n_models, true_state.aux),
        );
        if let Some(&v) = cache.get(&k) {
            return v;
        }
        let sched = table
            .get(&design)
            .unwrap_or_else(|| table.get_nearest(&design));
        let expanded = ExpandedGraph::build_with_costs(
            graph,
            &sched.iteration.state,
            &true_state,
            &sched.iteration.decomp,
        );
        let iter = replay_iteration(&sched.iteration, &expanded, cluster);
        let pipelined = find_best_ii(&iter, n_procs);
        let v = (iter.latency, pipelined.ii, digitize_offset(&iter, graph));
        cache.insert(k, v);
        v
    };

    let initial_true = track.state_at(0);
    let mut believed = match cfg.strategy {
        ScheduleStrategy::Static(s) => s,
        _ => initial_true,
    };
    let mut detector = match cfg.strategy {
        ScheduleStrategy::RegimeTable { confirm_after, .. } => {
            Some(RegimeDetector::new(initial_true, confirm_after))
        }
        _ => None,
    };

    let mut frames = Vec::with_capacity(cfg.clock.n_frames as usize);
    let mut switches = Vec::new();
    let mut mismatch_frames = 0u64;
    // Completions not yet observed by the detector: (time, observed state).
    let mut pending: VecDeque<(Micros, AppState)> = VecDeque::new();
    let mut last_completion = Micros::ZERO;
    let mut origin = Micros::ZERO;
    let mut prev_ii = Micros::ZERO;

    for f in 0..cfg.clock.n_frames {
        let true_state = track.state_at(f);
        origin = if f == 0 {
            cfg.clock.arrival(0)
        } else {
            cfg.clock.arrival(f).max(origin + prev_ii)
        };

        match cfg.strategy {
            ScheduleStrategy::Oracle => {
                if believed != true_state {
                    switches.push(SwitchEvent {
                        frame: f,
                        at: origin,
                        from: believed,
                        to: true_state,
                    });
                    believed = true_state;
                }
            }
            ScheduleStrategy::RegimeTable { policy, .. } => {
                let det = detector.as_mut().expect("detector exists");
                // Feed every completion observable by this issue time; a
                // confirmed switch under Drain pushes the issue time out,
                // which can make further completions observable.
                while let Some(&(ct, obs)) = pending.front() {
                    if ct > origin {
                        break;
                    }
                    pending.pop_front();
                    if let Some(new_state) = det.observe(obs) {
                        if policy == TransitionPolicy::Drain {
                            origin = origin.max(last_completion);
                        }
                        switches.push(SwitchEvent {
                            frame: f,
                            at: origin,
                            from: believed,
                            to: new_state,
                        });
                        believed = new_state;
                    }
                }
            }
            ScheduleStrategy::Static(_) => {}
        }

        let (latency, ii, dig_off) = replay(believed, true_state);
        let completion = origin + latency;
        frames.push(FrameRecord {
            frame: f,
            digitized_at: origin + dig_off,
            completed_at: Some(completion),
        });
        pending.push_back((completion, true_state));
        last_completion = last_completion.max(completion);
        if believed != true_state {
            mismatch_frames += 1;
        }
        prev_ii = ii;
    }

    let metrics = Metrics::from_records(&frames, cfg.warmup_frames);
    SwitchOutcome {
        frames,
        metrics,
        switches,
        mismatch_frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalConfig;
    use taskgraph::builders;

    fn setup() -> (TaskGraph, ClusterSpec, ScheduleTable, StateTrack) {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 4, 8].iter().map(|&n| AppState::new(n)).collect();
        let table = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());
        // 1 person → 8 people → 4 people, changes every 40 frames.
        let track = StateTrack::from_changes(vec![
            (0, AppState::new(1)),
            (40, AppState::new(8)),
            (80, AppState::new(4)),
        ]);
        (g, c, table, track)
    }

    fn run(
        g: &TaskGraph,
        c: &ClusterSpec,
        t: &ScheduleTable,
        track: &StateTrack,
        strategy: ScheduleStrategy,
    ) -> SwitchOutcome {
        let cfg = SwitchConfig {
            clock: FrameClock::new(Micros::from_millis(500), 120),
            strategy,
            warmup_frames: 2,
        };
        simulate_regime_switched(g, c, t, track, &cfg)
    }

    #[test]
    fn oracle_never_mismatches() {
        let (g, c, t, track) = setup();
        let out = run(&g, &c, &t, &track, ScheduleStrategy::Oracle);
        assert_eq!(out.mismatch_frames, 0);
        assert_eq!(out.switches.len(), 2);
    }

    #[test]
    fn regime_table_switches_and_beats_static() {
        let (g, c, t, track) = setup();
        let switched = run(
            &g,
            &c,
            &t,
            &track,
            ScheduleStrategy::RegimeTable {
                confirm_after: 2,
                policy: TransitionPolicy::CutOver,
            },
        );
        let static_small = run(
            &g,
            &c,
            &t,
            &track,
            ScheduleStrategy::Static(AppState::new(1)),
        );
        assert_eq!(switched.switches.len(), 2, "both changes detected once");
        // Mismatch exposure is limited to the detection window.
        assert!(
            switched.mismatch_frames < 20,
            "got {}",
            switched.mismatch_frames
        );
        assert!(static_small.mismatch_frames >= 80);
        // Regime switching wins on mean latency: the 1-model schedule is
        // catastrophic at 8 models.
        assert!(switched.metrics.mean_latency < static_small.metrics.mean_latency);
    }

    #[test]
    fn regime_table_is_close_to_oracle() {
        let (g, c, t, track) = setup();
        let oracle = run(&g, &c, &t, &track, ScheduleStrategy::Oracle);
        let switched = run(
            &g,
            &c,
            &t,
            &track,
            ScheduleStrategy::RegimeTable {
                confirm_after: 2,
                policy: TransitionPolicy::CutOver,
            },
        );
        let o = oracle.metrics.mean_latency.as_secs_f64();
        let s = switched.metrics.mean_latency.as_secs_f64();
        assert!(s < o * 1.35, "switched {s} vs oracle {o}");
    }

    #[test]
    fn drain_produces_larger_gap_but_same_steady_state() {
        let (g, c, t, track) = setup();
        let cut = run(
            &g,
            &c,
            &t,
            &track,
            ScheduleStrategy::RegimeTable {
                confirm_after: 2,
                policy: TransitionPolicy::CutOver,
            },
        );
        let drain = run(
            &g,
            &c,
            &t,
            &track,
            ScheduleStrategy::RegimeTable {
                confirm_after: 2,
                policy: TransitionPolicy::Drain,
            },
        );
        assert_eq!(cut.switches.len(), drain.switches.len());
        // Drain stalls issues, so its run finishes no earlier.
        let last = |o: &SwitchOutcome| o.frames.last().unwrap().completed_at.unwrap();
        assert!(last(&drain) >= last(&cut));
    }

    #[test]
    fn static_on_true_state_matches_oracle_when_constant() {
        let (g, c, t, _) = setup();
        let constant = StateTrack::constant(AppState::new(4));
        let st = run(
            &g,
            &c,
            &t,
            &constant,
            ScheduleStrategy::Static(AppState::new(4)),
        );
        let or = run(&g, &c, &t, &constant, ScheduleStrategy::Oracle);
        assert_eq!(st.metrics.mean_latency, or.metrics.mean_latency);
        assert_eq!(st.mismatch_frames, 0);
        assert!(st.switches.is_empty());
    }
}
