//! The schedule table: "We pre-compute the optimal schedule for each of the
//! states. The actions required on a state change are: perform a table
//! look-up to determine the new schedule for the new state; perform a
//! transition to the new schedule." (§3.4)
//!
//! "The fact that there are a small number of states means that
//! pre-computing an optimized schedule for each state is reasonable."

use std::collections::BTreeMap;

use cluster::ClusterSpec;
use taskgraph::{AppState, TaskGraph};

use crate::optimal::{optimal_schedule, OptimalConfig};
use crate::persist::{schedule_cache_key, CacheMiss, ScheduleCache};
use crate::schedule::PipelinedSchedule;

/// How each entry of a cache-assisted table build was obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TableBuildStats {
    /// Entries served from the persistent cache without searching.
    pub cache_hits: usize,
    /// Entries searched because the cache had nothing for their key.
    pub cache_misses: usize,
    /// Entries searched because a cache entry existed but failed
    /// validation (and was deleted).
    pub cache_invalidated: usize,
    /// Total branch-and-bound nodes explored by the searches that ran.
    pub nodes_explored: u64,
}

impl TableBuildStats {
    /// Number of states that required a branch-and-bound search.
    #[must_use]
    pub fn searched(&self) -> usize {
        self.cache_misses + self.cache_invalidated
    }
}

fn key(s: &AppState) -> (u32, u32) {
    (s.n_models, s.aux)
}

/// A precomputed state → schedule map.
///
/// ```
/// use cds_core::optimal::OptimalConfig;
/// use cds_core::table::ScheduleTable;
/// use cluster::ClusterSpec;
/// use taskgraph::{builders, AppState};
///
/// let graph = builders::color_tracker();
/// let cluster = ClusterSpec::single_node(4);
/// let states = [AppState::new(1), AppState::new(4)];
/// let table = ScheduleTable::precompute(&graph, &cluster, &states, &OptimalConfig::default());
/// // A small state change alters the strategy dramatically:
/// let s1 = table.get(&AppState::new(1)).unwrap();
/// let s4 = table.get(&AppState::new(4)).unwrap();
/// assert_ne!(s1.iteration.decomp, s4.iteration.decomp);
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleTable {
    entries: BTreeMap<(u32, u32), (AppState, PipelinedSchedule)>,
}

impl ScheduleTable {
    /// Precompute optimal schedules for every state in `states`. This is
    /// the offline phase; it may take seconds per state — amortized over
    /// "months" of operation, per the paper.
    #[must_use]
    pub fn precompute(
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        states: &[AppState],
        cfg: &OptimalConfig,
    ) -> Self {
        Self::precompute_with_cache(graph, cluster, states, cfg, None).0
    }

    /// [`ScheduleTable::precompute`], consulting a persistent
    /// [`ScheduleCache`] first: states whose key is cached (and validates)
    /// skip the search entirely; misses are searched and the result stored
    /// back, so the next build of the same table is pure I/O.
    #[must_use]
    pub fn precompute_with_cache(
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        states: &[AppState],
        cfg: &OptimalConfig,
        cache: Option<&ScheduleCache>,
    ) -> (Self, TableBuildStats) {
        let mut entries = BTreeMap::new();
        let mut stats = TableBuildStats::default();
        for s in states {
            if let Some(cache) = cache {
                let k = schedule_cache_key(graph, cluster, s, cfg);
                match cache.load(k, graph, cluster, s) {
                    Ok(sched) => {
                        stats.cache_hits += 1;
                        entries.insert(key(s), (*s, sched));
                        continue;
                    }
                    Err(CacheMiss::Absent) => stats.cache_misses += 1,
                    Err(CacheMiss::Invalidated) => stats.cache_invalidated += 1,
                }
                let result = optimal_schedule(graph, cluster, s, cfg);
                stats.nodes_explored += result.nodes_explored;
                // Persist best-effort: a read-only cache dir degrades to a
                // plain cold build rather than failing the table.
                let _ = cache.store(k, &result.best);
                entries.insert(key(s), (*s, result.best));
            } else {
                stats.cache_misses += 1;
                let result = optimal_schedule(graph, cluster, s, cfg);
                stats.nodes_explored += result.nodes_explored;
                entries.insert(key(s), (*s, result.best));
            }
        }
        (ScheduleTable { entries }, stats)
    }

    /// [`ScheduleTable::precompute`], going through the process-wide
    /// [`SharedScheduleCache`](crate::sharedcache::SharedScheduleCache)
    /// first, then the optional persistent disk cache, then the search.
    ///
    /// This is the fleet build path: when N tenants of the same application
    /// build their tables against the same cluster, the first one to reach
    /// each `(state, key)` runs the search (single-flight) and every other
    /// tenant shares the in-memory result — N tables, one search per state.
    /// Search results are written through to `disk` (best-effort) so the
    /// *next process* is warm too.
    #[must_use]
    pub fn precompute_shared(
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        states: &[AppState],
        cfg: &OptimalConfig,
        shared: &crate::sharedcache::SharedScheduleCache,
        disk: Option<&ScheduleCache>,
    ) -> (Self, TableBuildStats) {
        let mut entries = BTreeMap::new();
        let mut stats = TableBuildStats::default();
        for s in states {
            let k = schedule_cache_key(graph, cluster, s, cfg);
            let mut missed = None;
            let mut nodes = 0;
            let sched = shared.get_or_search(k, || {
                if let Some(disk) = disk {
                    match disk.load(k, graph, cluster, s) {
                        Ok(sched) => return sched,
                        Err(CacheMiss::Absent) => missed = Some(CacheMiss::Absent),
                        Err(CacheMiss::Invalidated) => missed = Some(CacheMiss::Invalidated),
                    }
                } else {
                    missed = Some(CacheMiss::Absent);
                }
                let result = optimal_schedule(graph, cluster, s, cfg);
                nodes = result.nodes_explored;
                if let Some(disk) = disk {
                    // Best-effort write-through, as in precompute_with_cache.
                    let _ = disk.store(k, &result.best);
                }
                result.best
            });
            match missed {
                // Served from memory or from a validated disk entry.
                None => stats.cache_hits += 1,
                Some(CacheMiss::Absent) => stats.cache_misses += 1,
                Some(CacheMiss::Invalidated) => stats.cache_invalidated += 1,
            }
            stats.nodes_explored += nodes;
            entries.insert(key(s), (*s, (*sched).clone()));
        }
        (ScheduleTable { entries }, stats)
    }

    /// Build from explicit entries (e.g. hand-tuned or heuristic schedules;
    /// "this approach to constrained dynamism is totally orthogonal to the
    /// approach to determining a good schedule for a single state").
    #[must_use]
    pub fn from_entries(entries: Vec<(AppState, PipelinedSchedule)>) -> Self {
        ScheduleTable {
            entries: entries
                .into_iter()
                .map(|(s, p)| (key(&s), (s, p)))
                .collect(),
        }
    }

    /// Insert (or replace) the schedule for one state — the online
    /// synthesis path of the adaptation loop: a regime the offline build
    /// never anticipated is searched in the background and grafted into the
    /// live table, so the clamp fallback stops being terminal. Returns the
    /// schedule previously covering the state, if any.
    pub fn insert(
        &mut self,
        state: AppState,
        sched: PipelinedSchedule,
    ) -> Option<PipelinedSchedule> {
        self.entries
            .insert(key(&state), (state, sched))
            .map(|(_, p)| p)
    }

    /// Exact lookup.
    #[must_use]
    pub fn get(&self, state: &AppState) -> Option<&PipelinedSchedule> {
        self.entries.get(&key(state)).map(|(_, p)| p)
    }

    /// Nearest lookup by model count (same `aux`): the fallback when an
    /// unanticipated state appears — the "interpolating between known good
    /// strategies in known states" approach the paper contrasts with.
    #[must_use]
    pub fn get_nearest(&self, state: &AppState) -> &PipelinedSchedule {
        assert!(!self.entries.is_empty(), "empty schedule table");
        self.entries
            .values()
            .filter(|(s, _)| s.aux == state.aux)
            .min_by_key(|(s, _)| s.n_models.abs_diff(state.n_models))
            .map(|(_, p)| p)
            .unwrap_or_else(|| {
                self.entries
                    .values()
                    .min_by_key(|(s, _)| s.n_models.abs_diff(state.n_models))
                    .map(|(_, p)| p)
                    .expect("non-empty table")
            })
    }

    /// The states covered by the table.
    #[must_use]
    pub fn states(&self) -> Vec<AppState> {
        self.entries.values().map(|(s, _)| *s).collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn small_table() -> (TaskGraph, ScheduleTable) {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2, 4].iter().map(|&n| AppState::new(n)).collect();
        let t = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());
        (g, t)
    }

    #[test]
    fn precompute_covers_all_states() {
        let (_, t) = small_table();
        assert_eq!(t.len(), 3);
        assert!(t.get(&AppState::new(2)).is_some());
        assert!(t.get(&AppState::new(3)).is_none());
        assert_eq!(t.states().len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn schedules_differ_across_states() {
        // The whole point of regime switching: "a seemingly small state
        // change could alter scheduling strategy dramatically".
        let (_, t) = small_table();
        let s1 = t.get(&AppState::new(1)).unwrap();
        let s4 = t.get(&AppState::new(4)).unwrap();
        assert_ne!(s1.iteration.latency, s4.iteration.latency);
        assert_ne!(
            s1.iteration.decomp, s4.iteration.decomp,
            "optimal decomposition should change with the model count"
        );
    }

    #[test]
    fn nearest_lookup_picks_closest_model_count() {
        let (_, t) = small_table();
        let near3 = t.get_nearest(&AppState::new(3));
        // 3 is nearer to 2 or 4 than to 1; both are one away — min_by_key
        // takes the first (2).
        let at2 = t.get(&AppState::new(2)).unwrap();
        assert_eq!(near3.iteration.latency, at2.iteration.latency);
        let near100 = t.get_nearest(&AppState::new(100));
        let at4 = t.get(&AppState::new(4)).unwrap();
        assert_eq!(near100.iteration.latency, at4.iteration.latency);
    }

    #[test]
    fn insert_grafts_unanticipated_state() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let (_, mut t) = small_table();
        assert!(t.get(&AppState::new(3)).is_none());
        let r = optimal_schedule(&g, &c, &AppState::new(3), &OptimalConfig::default());
        assert!(t.insert(AppState::new(3), r.best.clone()).is_none());
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(&AppState::new(3)), Some(&r.best));
        // Replacing returns the displaced schedule.
        let old = t.insert(AppState::new(3), r.best.clone());
        assert_eq!(old.as_ref(), Some(&r.best));
    }

    #[test]
    #[should_panic(expected = "empty schedule table")]
    fn nearest_on_empty_table_panics() {
        let t = ScheduleTable::from_entries(vec![]);
        let _ = t.get_nearest(&AppState::new(1));
    }

    #[test]
    fn warm_cache_build_skips_search_and_matches_cold() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2, 4].iter().map(|&n| AppState::new(n)).collect();
        let cfg = OptimalConfig::default();
        let dir = std::env::temp_dir().join(format!("cds-table-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ScheduleCache::open(&dir).unwrap();

        let (cold, cold_stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        assert_eq!(cold_stats.cache_hits, 0);
        assert_eq!(cold_stats.searched(), states.len());
        assert!(cold_stats.nodes_explored > 0);

        let (warm, warm_stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        assert_eq!(warm_stats.cache_hits, states.len());
        assert_eq!(warm_stats.searched(), 0);
        assert_eq!(warm_stats.nodes_explored, 0, "warm build must not search");

        // The warm table is byte-identical to the cold one.
        assert_eq!(warm.len(), cold.len());
        for s in cold.states() {
            assert_eq!(warm.get(&s), cold.get(&s), "state {s:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_cache_build_searches_once_across_tenant_builds() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2].iter().map(|&n| AppState::new(n)).collect();
        let cfg = OptimalConfig::default();
        let shared = crate::sharedcache::SharedScheduleCache::new(4096);

        let (first, cold) = ScheduleTable::precompute_shared(&g, &c, &states, &cfg, &shared, None);
        assert_eq!(cold.searched(), states.len());
        assert!(cold.nodes_explored > 0);

        // A second "tenant" building the same table touches no search at
        // all — every state is handed the resident schedule.
        let (second, warm) = ScheduleTable::precompute_shared(&g, &c, &states, &cfg, &shared, None);
        assert_eq!(warm.cache_hits, states.len());
        assert_eq!(warm.nodes_explored, 0, "warm tenant build must not search");
        assert_eq!(shared.searches(), states.len() as u64);
        for s in first.states() {
            assert_eq!(first.get(&s), second.get(&s), "state {s:?}");
        }

        // And it matches the classic uncached build bit-for-bit.
        let direct = ScheduleTable::precompute(&g, &c, &states, &cfg);
        for s in direct.states() {
            assert_eq!(direct.get(&s), first.get(&s), "state {s:?}");
        }
    }

    #[test]
    fn invalidated_cache_entry_is_researched() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states = [AppState::new(2)];
        let cfg = OptimalConfig::default();
        let dir = std::env::temp_dir().join(format!("cds-table-inval-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ScheduleCache::open(&dir).unwrap();

        let (cold, _) = ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));

        // Corrupt the single entry on disk.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().ends_with(".txt"))
            .unwrap()
            .path();
        let text = std::fs::read_to_string(&entry).unwrap();
        std::fs::write(&entry, text.replace("\nii ", "\nii x")).unwrap();

        let (rebuilt, stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        assert_eq!(stats.cache_invalidated, 1);
        assert_eq!(stats.cache_hits, 0);
        // The corrupted entry was re-searched, and the result is right.
        assert_eq!(
            rebuilt.get(&states[0]).unwrap(),
            cold.get(&states[0]).unwrap()
        );
        // And the cache was repaired: next build hits.
        let (_, again) = ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        assert_eq!(again.cache_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
