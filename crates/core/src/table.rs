//! The schedule table: "We pre-compute the optimal schedule for each of the
//! states. The actions required on a state change are: perform a table
//! look-up to determine the new schedule for the new state; perform a
//! transition to the new schedule." (§3.4)
//!
//! "The fact that there are a small number of states means that
//! pre-computing an optimized schedule for each state is reasonable."

use std::collections::BTreeMap;

use cluster::ClusterSpec;
use taskgraph::{AppState, TaskGraph};

use crate::optimal::{optimal_schedule, OptimalConfig};
use crate::schedule::PipelinedSchedule;

fn key(s: &AppState) -> (u32, u32) {
    (s.n_models, s.aux)
}

/// A precomputed state → schedule map.
///
/// ```
/// use cds_core::optimal::OptimalConfig;
/// use cds_core::table::ScheduleTable;
/// use cluster::ClusterSpec;
/// use taskgraph::{builders, AppState};
///
/// let graph = builders::color_tracker();
/// let cluster = ClusterSpec::single_node(4);
/// let states = [AppState::new(1), AppState::new(4)];
/// let table = ScheduleTable::precompute(&graph, &cluster, &states, &OptimalConfig::default());
/// // A small state change alters the strategy dramatically:
/// let s1 = table.get(&AppState::new(1)).unwrap();
/// let s4 = table.get(&AppState::new(4)).unwrap();
/// assert_ne!(s1.iteration.decomp, s4.iteration.decomp);
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleTable {
    entries: BTreeMap<(u32, u32), (AppState, PipelinedSchedule)>,
}

impl ScheduleTable {
    /// Precompute optimal schedules for every state in `states`. This is
    /// the offline phase; it may take seconds per state — amortized over
    /// "months" of operation, per the paper.
    #[must_use]
    pub fn precompute(
        graph: &TaskGraph,
        cluster: &ClusterSpec,
        states: &[AppState],
        cfg: &OptimalConfig,
    ) -> Self {
        let mut entries = BTreeMap::new();
        for s in states {
            let result = optimal_schedule(graph, cluster, s, cfg);
            entries.insert(key(s), (*s, result.best));
        }
        ScheduleTable { entries }
    }

    /// Build from explicit entries (e.g. hand-tuned or heuristic schedules;
    /// "this approach to constrained dynamism is totally orthogonal to the
    /// approach to determining a good schedule for a single state").
    #[must_use]
    pub fn from_entries(entries: Vec<(AppState, PipelinedSchedule)>) -> Self {
        ScheduleTable {
            entries: entries.into_iter().map(|(s, p)| (key(&s), (s, p))).collect(),
        }
    }

    /// Exact lookup.
    #[must_use]
    pub fn get(&self, state: &AppState) -> Option<&PipelinedSchedule> {
        self.entries.get(&key(state)).map(|(_, p)| p)
    }

    /// Nearest lookup by model count (same `aux`): the fallback when an
    /// unanticipated state appears — the "interpolating between known good
    /// strategies in known states" approach the paper contrasts with.
    #[must_use]
    pub fn get_nearest(&self, state: &AppState) -> &PipelinedSchedule {
        assert!(!self.entries.is_empty(), "empty schedule table");
        self.entries
            .values()
            .filter(|(s, _)| s.aux == state.aux)
            .min_by_key(|(s, _)| s.n_models.abs_diff(state.n_models))
            .map(|(_, p)| p)
            .unwrap_or_else(|| {
                self.entries
                    .values()
                    .min_by_key(|(s, _)| s.n_models.abs_diff(state.n_models))
                    .map(|(_, p)| p)
                    .expect("non-empty table")
            })
    }

    /// The states covered by the table.
    #[must_use]
    pub fn states(&self) -> Vec<AppState> {
        self.entries.values().map(|(s, _)| *s).collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::builders;

    fn small_table() -> (TaskGraph, ScheduleTable) {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2, 4].iter().map(|&n| AppState::new(n)).collect();
        let t = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());
        (g, t)
    }

    #[test]
    fn precompute_covers_all_states() {
        let (_, t) = small_table();
        assert_eq!(t.len(), 3);
        assert!(t.get(&AppState::new(2)).is_some());
        assert!(t.get(&AppState::new(3)).is_none());
        assert_eq!(t.states().len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn schedules_differ_across_states() {
        // The whole point of regime switching: "a seemingly small state
        // change could alter scheduling strategy dramatically".
        let (_, t) = small_table();
        let s1 = t.get(&AppState::new(1)).unwrap();
        let s4 = t.get(&AppState::new(4)).unwrap();
        assert_ne!(s1.iteration.latency, s4.iteration.latency);
        assert_ne!(
            s1.iteration.decomp, s4.iteration.decomp,
            "optimal decomposition should change with the model count"
        );
    }

    #[test]
    fn nearest_lookup_picks_closest_model_count() {
        let (_, t) = small_table();
        let near3 = t.get_nearest(&AppState::new(3));
        // 3 is nearer to 2 or 4 than to 1; both are one away — min_by_key
        // takes the first (2).
        let at2 = t.get(&AppState::new(2)).unwrap();
        assert_eq!(near3.iteration.latency, at2.iteration.latency);
        let near100 = t.get_nearest(&AppState::new(100));
        let at4 = t.get(&AppState::new(4)).unwrap();
        assert_eq!(near100.iteration.latency, at4.iteration.latency);
    }

    #[test]
    #[should_panic(expected = "empty schedule table")]
    fn nearest_on_empty_table_panics() {
        let t = ScheduleTable::from_entries(vec![]);
        let _ = t.get_nearest(&AppState::new(1));
    }
}
