//! Hand-tuning methodology (§3.1): sweep the digitizer period under the
//! online scheduler and record the latency/throughput trade-off — the
//! tuning curve of Fig. 3. "The tuning curve was obtained by plotting the
//! measured latency and throughput as the digitizer period varied from 33 ms
//! to 5 seconds."

use cluster::sweep::{sweep, SweepConfig, SweepStats};
use cluster::{ClusterSpec, FrameClock, Metrics, OnlineConfig, TraceMode};
use taskgraph::{Micros, TaskGraph};

/// One point of the tuning curve.
#[derive(Clone, Debug)]
pub struct TuningPoint {
    /// The digitizer period used.
    pub period: Micros,
    /// Metrics of the run at that period.
    pub metrics: Metrics,
}

/// Run the online scheduler at each period in `periods`, holding everything
/// else in `template` fixed.
///
/// Points come back in `periods` order regardless of worker scheduling;
/// traces are not recorded (metrics are mode-invariant), so this is the
/// cheapest way to regenerate Fig. 3.
#[must_use]
pub fn tuning_curve(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    template: &OnlineConfig,
    periods: &[Micros],
) -> Vec<TuningPoint> {
    tuning_curve_stats(graph, cluster, template, periods, SweepConfig::new()).0
}

/// [`tuning_curve`] with explicit sweep control, also returning the sweep's
/// wall-clock stats (for the bench bins' runs/sec reporting).
#[must_use]
pub fn tuning_curve_stats(
    graph: &TaskGraph,
    cluster: &ClusterSpec,
    template: &OnlineConfig,
    periods: &[Micros],
    sweep_cfg: SweepConfig,
) -> (Vec<TuningPoint>, SweepStats) {
    let inputs: Vec<(Micros, OnlineConfig)> = periods
        .iter()
        .map(|&period| {
            let mut cfg = template.clone();
            cfg.clock = FrameClock::new(period, template.clock.n_frames);
            cfg.trace_mode = TraceMode::Off;
            (period, cfg)
        })
        .collect();
    let out = sweep(sweep_cfg, inputs, |arena, _i, (period, cfg)| {
        let summary = arena.simulate(graph, cluster, &cfg);
        TuningPoint {
            period,
            metrics: summary.metrics,
        }
    });
    (out.results, out.stats)
}

/// The paper's sweep: 33 ms to 5 s "in steps of approximately one second".
#[must_use]
pub fn paper_periods() -> Vec<Micros> {
    let mut v = vec![Micros::from_millis(33)];
    for s in 1..=5u64 {
        v.push(Micros::from_secs(s));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskgraph::{builders, AppState, Decomposition};

    #[test]
    fn paper_periods_span_33ms_to_5s() {
        let p = paper_periods();
        assert_eq!(p.first().copied(), Some(Micros::from_millis(33)));
        assert_eq!(p.last().copied(), Some(Micros::from_secs(5)));
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn curve_trades_latency_for_throughput() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let t4 = g.task_by_name("Target Detection").unwrap();
        let mut template = OnlineConfig::new(
            FrameClock::new(Micros::from_millis(33), 24),
            AppState::new(8),
        );
        template.decomposition.insert(t4, Decomposition::new(1, 8));
        let points = tuning_curve(
            &g,
            &c,
            &template,
            &[Micros::from_millis(33), Micros::from_secs(5)],
        );
        assert_eq!(points.len(), 2);
        let fast = &points[0].metrics;
        let slow = &points[1].metrics;
        // Saturated: higher latency AND higher throughput (upper-right of
        // Fig. 3); unloaded: lower latency, lower throughput (lower-left).
        assert!(fast.mean_latency > slow.mean_latency);
        assert!(fast.throughput_hz > slow.throughput_hz);
    }
}
