//! Property tests for the scheduling core: the enumerator is compared
//! against an independent unpruned brute force on small random graphs, and
//! structural invariants are fuzzed.

use std::collections::BTreeMap;

use cds_core::evaluate::replay_iteration;
use cds_core::expand::ExpandedGraph;
use cds_core::ii::find_best_ii;
use cds_core::legality::check_iteration;
use cds_core::listsched::list_schedule;
use cds_core::optimal::{optimal_schedule, OptimalConfig};
use cds_core::schedule::{IterationSchedule, Placement};
use cluster::{ClusterSpec, ProcId};
use proptest::prelude::*;
use taskgraph::{AppState, CostModel, Micros, SizeModel, TaskGraph, TaskGraphBuilder, TaskId};

/// Small random layered DAG (≤ 6 tasks) for brute-force comparison.
fn small_dag(costs: Vec<u64>, extra_edges: u64) -> TaskGraph {
    let n = costs.len();
    let mut b = TaskGraphBuilder::new();
    let ids: Vec<TaskId> = costs
        .iter()
        .enumerate()
        .map(|(i, &c)| b.task(format!("t{i}"), CostModel::Const(Micros(c % 200 + 1))))
        .collect();
    // Spine: t0 → t1 → … keeps the graph connected with one source.
    for w in ids.windows(2) {
        let c = b.channel(format!("s{}", w[1].0), SizeModel::Const(8));
        b.produces(w[0], c);
        b.consumes(w[1], c);
    }
    // Extra forward edges from a bitmask.
    let mut bits = extra_edges;
    for i in 0..n {
        for j in (i + 2)..n {
            bits = bits.rotate_left(11).wrapping_mul(0x9E3779B97F4A7C15);
            if bits & 3 == 0 {
                let c = b.channel(format!("x{i}_{j}"), SizeModel::Const(8));
                b.produces(ids[i], c);
                b.consumes(ids[j], c);
            }
        }
    }
    b.build()
}

/// Independent unpruned brute force over semi-active schedules.
fn brute_force_latency(e: &ExpandedGraph, n_procs: u32) -> Micros {
    fn rec(
        e: &ExpandedGraph,
        n_procs: u32,
        placed: &mut Vec<Option<(u32, Micros, Micros)>>, // (proc, start, end)
        preds_left: &mut Vec<usize>,
        proc_ready: &mut Vec<Micros>,
        done: usize,
        best: &mut Micros,
    ) {
        let n = e.len();
        if done == n {
            let latency = placed
                .iter()
                .map(|p| p.unwrap().2)
                .max()
                .unwrap_or(Micros::ZERO);
            if latency < *best {
                *best = latency;
            }
            return;
        }
        for i in 0..n {
            if placed[i].is_some() || preds_left[i] != 0 {
                continue;
            }
            for p in 0..n_procs {
                let mut start = proc_ready[p as usize];
                for pe in &e.instances()[i].preds {
                    let (_, _, pend) = placed[pe.from].unwrap();
                    start = start.max(pend + pe.delay);
                }
                let end = start + e.instances()[i].duration;
                placed[i] = Some((p, start, end));
                let saved = proc_ready[p as usize];
                proc_ready[p as usize] = end;
                for &s in e.succs(i) {
                    preds_left[s] -= 1;
                }
                rec(e, n_procs, placed, preds_left, proc_ready, done + 1, best);
                for &s in e.succs(i) {
                    preds_left[s] += 1;
                }
                proc_ready[p as usize] = saved;
                placed[i] = None;
            }
        }
    }
    let mut placed = vec![None; e.len()];
    let mut preds_left: Vec<usize> = e.instances().iter().map(|i| i.preds.len()).collect();
    let mut proc_ready = vec![Micros::ZERO; n_procs as usize];
    let mut best = Micros(u64::MAX);
    rec(
        e,
        n_procs,
        &mut placed,
        &mut preds_left,
        &mut proc_ready,
        0,
        &mut best,
    );
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The branch-and-bound enumerator finds exactly the brute-force optimal
    /// latency on small graphs.
    #[test]
    fn optimal_matches_brute_force(
        costs in proptest::collection::vec(1u64..200, 2..6),
        edges in any::<u64>(),
        procs in 1u32..4,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let brute = brute_force_latency(&e, procs);
        let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        prop_assert!(r.complete);
        prop_assert_eq!(r.minimal_latency, brute,
            "enumerator {:?} vs brute force {:?}", r.minimal_latency, brute);
    }

    /// Optimal latency never exceeds the list schedule, and both are legal.
    #[test]
    fn optimal_bounded_by_list_schedule(
        costs in proptest::collection::vec(1u64..500, 2..7),
        edges in any::<u64>(),
        procs in 1u32..5,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let ls = list_schedule(&e, &c);
        check_iteration(&ls, &e, &c).unwrap();
        let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        check_iteration(&r.best.iteration, &e, &c).unwrap();
        prop_assert!(r.minimal_latency <= ls.latency);
        prop_assert!(r.minimal_latency >= e.span());
    }

    /// find_best_ii always returns a collision-free pipeline with II between
    /// the work bound and the latency.
    #[test]
    fn ii_is_feasible_and_bounded(
        costs in proptest::collection::vec(1u64..300, 2..7),
        edges in any::<u64>(),
        procs in 1u32..5,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let iter = list_schedule(&e, &c);
        let p = find_best_ii(&iter, procs);
        prop_assert!(p.find_collision().is_none());
        prop_assert!(p.ii <= iter.latency);
        let lb = Micros(iter.busy_time().0.div_ceil(u64::from(procs)));
        prop_assert!(p.ii >= lb.min(iter.latency));
    }

    /// The II search is minimal within its rotation family: no smaller II
    /// is feasible for ANY rotation (checked by exhaustive scan over all
    /// (II, rotation) pairs below the found II).
    #[test]
    fn ii_is_minimal_over_all_rotations(
        costs in proptest::collection::vec(1u64..40, 2..6),
        edges in any::<u64>(),
        procs in 1u32..4,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let iter = list_schedule(&e, &c);
        let found = find_best_ii(&iter, procs);
        // Exhaustive: every II strictly below the found one must collide
        // for every rotation. (Costs are small, so the scan is cheap.)
        for ii in 1..found.ii.0 {
            for rotation in 0..procs {
                let cand = cds_core::schedule::PipelinedSchedule {
                    iteration: iter.clone(),
                    ii: Micros(ii),
                    rotation,
                    n_procs: procs,
                };
                prop_assert!(
                    cand.find_collision().is_some(),
                    "II {} rotation {} feasible below found II {}",
                    ii, rotation, found.ii
                );
            }
        }
    }

    /// Replaying a semi-active schedule under its own state reproduces it
    /// exactly.
    #[test]
    fn replay_is_identity_on_same_state(
        costs in proptest::collection::vec(1u64..300, 2..7),
        edges in any::<u64>(),
        procs in 1u32..4,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let iter = list_schedule(&e, &c);
        let replayed = replay_iteration(&iter, &e, &c);
        prop_assert_eq!(&iter.placements, &replayed.placements);
    }

    /// Legality checker accepts exactly what the simulator-style forward
    /// pass constructs, and rejects a perturbed copy.
    #[test]
    fn perturbed_schedules_are_rejected(
        costs in proptest::collection::vec(2u64..300, 3..7),
        edges in any::<u64>(),
        which in 0usize..100,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(2);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let sched = list_schedule(&e, &c);
        check_iteration(&sched, &e, &c).unwrap();
        // Pull one non-source placement earlier than its dependences allow.
        let idx = which % sched.placements.len();
        if !e.instances()[idx].preds.is_empty() {
            let mut bad = sched.clone();
            let dur = bad.placements[idx].duration();
            bad.placements[idx] = Placement {
                start: Micros::ZERO,
                end: dur,
                proc: ProcId(1 - bad.placements[idx].proc.0.min(1)),
                ..bad.placements[idx]
            };
            bad.latency = bad.computed_latency();
            prop_assert!(check_iteration(&bad, &e, &c).is_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any legal pipelined schedule survives a serialization roundtrip
    /// bit-for-bit.
    #[test]
    fn persist_roundtrips_random_schedules(
        costs in proptest::collection::vec(1u64..400, 2..7),
        edges in any::<u64>(),
        procs in 1u32..5,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let iter = list_schedule(&e, &c);
        let sched = find_best_ii(&iter, procs);
        let text = cds_core::persist::schedule_to_string(&sched);
        let back = cds_core::persist::schedule_from_str(&text).unwrap();
        prop_assert_eq!(sched, back);
    }

    /// The parser rejects any single-line deletion from a valid blob (no
    /// silent partial loads), except removable no-op lines.
    #[test]
    fn persist_detects_truncation(
        costs in proptest::collection::vec(1u64..400, 3..6),
        edges in any::<u64>(),
        drop_line in 0usize..32,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(2);
        let state = AppState::new(1);
        let e = ExpandedGraph::build(&g, &state, &BTreeMap::new());
        let sched = find_best_ii(&list_schedule(&e, &c), 2);
        let text = cds_core::persist::schedule_to_string(&sched);
        let lines: Vec<&str> = text.lines().collect();
        let idx = drop_line % lines.len();
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != idx)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        // Either an error, or (for removable no-op lines such as the
        // optional `places` count) a clean parse; dropping a `place ` line
        // must never parse cleanly.
        if cds_core::persist::schedule_from_str(&mutated).is_ok() {
            prop_assert!(!lines[idx].starts_with("place "),
                "dropped placement line went unnoticed");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The regime-switching simulation conserves frames and keeps issue
    /// times monotone under arbitrary (small) state tracks, for every
    /// strategy and policy.
    #[test]
    fn switcher_conserves_frames(
        changes in proptest::collection::vec((1u64..100, 0u32..5), 0..6),
        strategy_pick in 0usize..4,
        period_ms in 50u64..1000,
    ) {
        use cds_core::switcher::{
            simulate_regime_switched, ScheduleStrategy, SwitchConfig, TransitionPolicy,
        };
        use cds_core::table::ScheduleTable;
        use cluster::{FrameClock, StateTrack};

        // Build a valid track: frame 0 plus strictly increasing changes.
        let mut points = vec![(0u64, AppState::new(1))];
        let mut frame = 0u64;
        for &(gap, n) in &changes {
            frame += gap;
            points.push((frame, AppState::new(n)));
        }
        let track = StateTrack::from_changes(points);

        let g = taskgraph::builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let states: Vec<AppState> = (0..5).map(AppState::new).collect();
        let table = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default());

        let strategy = match strategy_pick {
            0 => ScheduleStrategy::Static(AppState::new(2)),
            1 => ScheduleStrategy::Oracle,
            2 => ScheduleStrategy::RegimeTable {
                confirm_after: 2,
                policy: TransitionPolicy::CutOver,
            },
            _ => ScheduleStrategy::RegimeTable {
                confirm_after: 1,
                policy: TransitionPolicy::Drain,
            },
        };
        let n_frames = 40;
        let out = simulate_regime_switched(
            &g,
            &c,
            &table,
            &track,
            &SwitchConfig {
                clock: FrameClock::new(Micros::from_millis(period_ms), n_frames),
                strategy,
                warmup_frames: 0,
            },
        );
        prop_assert_eq!(out.frames.len() as u64, n_frames);
        prop_assert!(out.frames.iter().all(|f| f.completed_at.is_some()));
        // Issue (digitize) times strictly increase.
        for w in out.frames.windows(2) {
            prop_assert!(w[0].digitized_at < w[1].digitized_at);
        }
        // Metrics cover every frame.
        prop_assert_eq!(out.metrics.frames_completed, n_frames);
        prop_assert_eq!(out.metrics.frames_dropped, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel fan-out returns the same minimal latency L* (and the
    /// same best initiation interval) as the sequential search on random
    /// small graphs — the shared atomic incumbent and the dominance memo
    /// are pure prunes, never result changes.
    #[test]
    fn parallel_search_matches_serial(
        costs in proptest::collection::vec(1u64..300, 2..7),
        edges in any::<u64>(),
        procs in 1u32..5,
        threads in 2usize..5,
    ) {
        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let state = AppState::new(1);
        let serial = optimal_schedule(&g, &c, &state, &OptimalConfig::default().serial());
        let cfg = OptimalConfig { threads, ..OptimalConfig::default() };
        let par = optimal_schedule(&g, &c, &state, &cfg);
        prop_assert_eq!(par.minimal_latency, serial.minimal_latency);
        prop_assert_eq!(par.best.ii, serial.best.ii);
        // And with the dominance memo off, still the same optimum.
        let nodom = OptimalConfig { threads, dominance_cap: 0, ..OptimalConfig::default() };
        let r = optimal_schedule(&g, &c, &state, &nodom);
        prop_assert_eq!(r.minimal_latency, serial.minimal_latency);
        let e = ExpandedGraph::build(&g, &state, &par.best.iteration.decomp);
        check_iteration(&par.best.iteration, &e, &c).unwrap();
    }

    /// Persisting a table through the schedule cache and rebuilding from it
    /// reproduces the table exactly, entry for entry, without searching.
    #[test]
    fn cache_roundtrip_reproduces_table(
        costs in proptest::collection::vec(1u64..300, 2..6),
        edges in any::<u64>(),
        procs in 1u32..4,
        tag in any::<u64>(),
    ) {
        use cds_core::persist::ScheduleCache;
        use cds_core::table::ScheduleTable;

        let g = small_dag(costs, edges);
        let c = ClusterSpec::single_node(procs);
        let states = [AppState::new(1)];
        let cfg = OptimalConfig::default();
        let dir = std::env::temp_dir().join(
            format!("cds-prop-cache-{}-{tag:x}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ScheduleCache::open(&dir).unwrap();

        let (cold, cold_stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        prop_assert_eq!(cold_stats.cache_hits, 0);
        let (warm, warm_stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        prop_assert_eq!(warm_stats.cache_hits, states.len());
        prop_assert_eq!(warm_stats.nodes_explored, 0);
        prop_assert_eq!(warm.len(), cold.len());
        for s in cold.states() {
            prop_assert_eq!(warm.get(&s), cold.get(&s));
        }

        // Any corruption of the stored entry is detected and re-searched,
        // never served: flip one digit of the latency line.
        for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
            let p = entry.path();
            let text = std::fs::read_to_string(&p).unwrap();
            std::fs::write(&p, text.replace("\nlatency ", "\nlatency 9")).unwrap();
        }
        let (fixed, fixed_stats) =
            ScheduleTable::precompute_with_cache(&g, &c, &states, &cfg, Some(&cache));
        prop_assert_eq!(fixed_stats.cache_hits, 0);
        prop_assert_eq!(
            fixed_stats.cache_invalidated + fixed_stats.cache_misses, states.len());
        for s in cold.states() {
            prop_assert_eq!(fixed.get(&s), cold.get(&s));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Non-proptest regression: the enumerator collects multiple distinct
/// minimal schedules when ties exist.
#[test]
fn tie_schedules_are_collected() {
    // Two equal independent branches on two procs: at least 1 canonical
    // minimal schedule, and the best II uses both procs.
    let g = taskgraph::builders::fork_join(2, 100);
    let c = ClusterSpec::single_node(2);
    let r = optimal_schedule(&g, &c, &AppState::new(1), &OptimalConfig::default());
    assert!(r.candidates >= 1);
    assert_eq!(r.minimal_latency, Micros(102));
}

/// The canonical key treats processor permutations as equal even through
/// the IterationSchedule API.
#[test]
fn canonical_key_permutation_invariance() {
    let mk = |procs: [u32; 2]| {
        let placements = vec![
            Placement {
                task: TaskId(0),
                chunk: None,
                proc: ProcId(procs[0]),
                start: Micros(0),
                end: Micros(10),
            },
            Placement {
                task: TaskId(1),
                chunk: None,
                proc: ProcId(procs[1]),
                start: Micros(0),
                end: Micros(10),
            },
        ];
        IterationSchedule {
            placements,
            latency: Micros(10),
            state: AppState::new(1),
            decomp: BTreeMap::new(),
        }
    };
    assert_eq!(mk([0, 1]).canonical_key(), mk([1, 0]).canonical_key());
}
