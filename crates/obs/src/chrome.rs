//! `chrome://tracing` JSON export, shared between live runs and the
//! simulator so both render in one timeline (open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! The emitter is hand-rolled (no serde in the tree) and the companion
//! [`validate`] function is a minimal JSON parser used by `obsreport` and
//! CI to prove the artifact is well-formed with monotone timestamps.

use crate::span::{SpanDump, SpanKind};

/// One trace event in Chrome's JSON array format.
struct Event {
    name: String,
    cat: &'static str,
    /// `'X'` complete (duration), `'i'` instant, `'M'` metadata.
    ph: char,
    pid: u32,
    tid: u32,
    ts_us: f64,
    dur_us: f64,
    /// Extra `args` entries as pre-rendered JSON key/value pairs.
    args: Vec<(&'static str, String)>,
}

/// Builder for a Chrome trace file. Push events from any source (a live
/// [`SpanDump`], the simulator's `ExecutionTrace`), then render with
/// [`ChromeTrace::to_json`].
#[derive(Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
    meta: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of non-metadata events pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process lane (e.g. "live" vs "simulated").
    pub fn set_process_name(&mut self, pid: u32, name: &str) {
        self.meta.push(Event {
            name: "process_name".to_string(),
            cat: "__metadata",
            ph: 'M',
            pid,
            tid: 0,
            ts_us: 0.0,
            dur_us: 0.0,
            args: vec![("name", json_string(name))],
        });
    }

    /// Name a thread lane within a process.
    pub fn set_thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.meta.push(Event {
            name: "thread_name".to_string(),
            cat: "__metadata",
            ph: 'M',
            pid,
            tid,
            ts_us: 0.0,
            dur_us: 0.0,
            args: vec![("name", json_string(name))],
        });
    }

    /// Push a complete (`ph: "X"`) event. Times are microseconds.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        frame: Option<u64>,
    ) {
        let mut args = Vec::new();
        if let Some(f) = frame {
            args.push(("frame", f.to_string()));
        }
        self.events.push(Event {
            name: name.to_string(),
            cat,
            ph: 'X',
            pid,
            tid,
            ts_us,
            dur_us,
            args,
        });
    }

    /// Push an instant (`ph: "i"`) event.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        frame: Option<u64>,
    ) {
        let mut args = Vec::new();
        if let Some(f) = frame {
            args.push(("frame", f.to_string()));
        }
        self.events.push(Event {
            name: name.to_string(),
            cat,
            ph: 'i',
            pid,
            tid,
            ts_us,
            dur_us: 0.0,
            args,
        });
    }

    /// Convert a drained live-run [`SpanDump`] into events under process
    /// `pid`, one Chrome thread lane per recording thread.
    pub fn push_dump(&mut self, dump: &SpanDump, pid: u32, process_name: &str) {
        self.set_process_name(pid, process_name);
        for (tid, name) in &dump.threads {
            self.set_thread_name(pid, u32::from(*tid), name);
        }
        for s in &dump.spans {
            let stage = dump.stage_name(s.stage);
            let tid = u32::from(s.tid);
            let ts = s.start_ns as f64 / 1_000.0;
            let dur = s.dur_ns as f64 / 1_000.0;
            match s.kind {
                SpanKind::Compute => {
                    let name = match s.chunk {
                        Some((i, n)) => format!("{stage} [{}/{n}]", i + 1),
                        None => stage.to_string(),
                    };
                    self.complete(&name, "stage", pid, tid, ts, dur, Some(s.frame));
                }
                SpanKind::PoolChunk => {
                    let name = match s.chunk {
                        Some((i, n)) => format!("{stage} chunk {}/{n}", i + 1),
                        None => format!("{stage} chunk"),
                    };
                    self.complete(&name, "pool", pid, tid, ts, dur, Some(s.frame));
                }
                SpanKind::Get => {
                    self.complete(
                        &format!("get \u{2192} {stage}"),
                        "stm",
                        pid,
                        tid,
                        ts,
                        dur,
                        Some(s.frame),
                    );
                }
                SpanKind::Put => {
                    self.complete(
                        &format!("put \u{2190} {stage}"),
                        "stm",
                        pid,
                        tid,
                        ts,
                        dur,
                        Some(s.frame),
                    );
                }
                SpanKind::Join => {
                    self.complete(
                        &format!("join {stage}"),
                        "pool",
                        pid,
                        tid,
                        ts,
                        dur,
                        Some(s.frame),
                    );
                }
                SpanKind::Digitize => {
                    self.instant("digitize", "frame", pid, tid, ts, Some(s.frame))
                }
                SpanKind::Commit => self.instant("commit", "frame", pid, tid, ts, Some(s.frame)),
                SpanKind::Skip => {
                    self.instant(
                        &format!("skip @ {stage}"),
                        "frame",
                        pid,
                        tid,
                        ts,
                        Some(s.frame),
                    );
                }
                SpanKind::Switch => {
                    self.instant("regime switch", "regime", pid, tid, ts, Some(s.frame))
                }
                SpanKind::Decomp => {
                    let name = match s.chunk {
                        Some((fp, mp)) => format!("decomp FP={fp} MP={mp}"),
                        None => "decomp".to_string(),
                    };
                    self.instant(&name, "regime", pid, tid, ts, Some(s.frame));
                }
                SpanKind::Resched => {
                    let name = match s.chunk {
                        Some((fp, mp)) => format!("resched swap FP={fp} MP={mp}"),
                        None => "resched launch".to_string(),
                    };
                    self.instant(&name, "regime", pid, tid, ts, Some(s.frame));
                }
            }
        }
    }

    /// Render the trace as a Chrome JSON event array: metadata first, then
    /// all events sorted by timestamp (so `"ts"` values are monotone
    /// non-decreasing, which CI asserts).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[a]
                .ts_us
                .partial_cmp(&self.events[b].ts_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut out = String::with_capacity(64 + 128 * (self.meta.len() + self.events.len()));
        out.push_str("[\n");
        let mut first = true;
        for ev in self
            .meta
            .iter()
            .chain(order.iter().map(|&i| &self.events[i]))
        {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            render_event(&mut out, ev);
        }
        out.push_str("\n]\n");
        out
    }
}

fn render_event(out: &mut String, ev: &Event) {
    out.push_str("  {\"name\":");
    out.push_str(&json_string(&ev.name));
    out.push_str(",\"cat\":");
    out.push_str(&json_string(ev.cat));
    out.push_str(",\"ph\":\"");
    out.push(ev.ph);
    out.push('"');
    if ev.ph != 'M' {
        out.push_str(&format!(",\"ts\":{:.3}", ev.ts_us));
    }
    if ev.ph == 'X' {
        out.push_str(&format!(",\"dur\":{:.3}", ev.dur_us));
    }
    if ev.ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(&format!(",\"pid\":{},\"tid\":{}", ev.pid, ev.tid));
    if !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(k));
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
    }
    out.push('}');
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate a rendered trace: the text must be a well-formed JSON array and
/// every `"ts"` value must be monotone non-decreasing in document order.
/// Returns the number of events on success, or a description of the first
/// problem found.
pub fn validate(json: &str) -> Result<usize, String> {
    let mut p = Parser {
        bytes: json.as_bytes(),
        pos: 0,
        last_ts: f64::NEG_INFINITY,
    };
    p.skip_ws();
    if p.peek() != Some(b'[') {
        return Err("top level is not a JSON array".to_string());
    }
    let n = p.array(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(n)
}

/// Minimal recursive-descent JSON reader for [`validate`]. Tracks the last
/// `"ts"` number seen to enforce monotonicity.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    last_ts: f64,
}

const MAX_DEPTH: usize = 32;

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'[') => {
                self.array(depth)?;
                Ok(())
            }
            Some(b'{') => self.object(depth),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.number()?;
                Ok(())
            }
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    /// Parse an array, returning its element count.
    fn array(&mut self, depth: usize) -> Result<usize, String> {
        self.eat(b'[')?;
        self.skip_ws();
        let mut n = 0;
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        loop {
            self.value(depth + 1)?;
            n += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(n);
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.eat(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            if key == "ts" && matches!(self.peek(), Some(c) if c == b'-' || c.is_ascii_digit()) {
                let ts = self.number()?;
                if ts < self.last_ts {
                    return Err(format!(
                        "timestamps not monotone: {ts} after {} (byte {})",
                        self.last_ts, self.pos
                    ));
                }
                self.last_ts = ts;
            } else {
                self.value(depth + 1)?;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched; we only
                    // need key comparison for ASCII "ts".
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..self.pos]));
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Span, TraceMode};

    #[test]
    fn empty_trace_is_valid_json() {
        let t = ChromeTrace::new();
        assert!(t.is_empty());
        assert_eq!(validate(&t.to_json()), Ok(0));
    }

    #[test]
    fn events_render_sorted_and_valid() {
        let mut t = ChromeTrace::new();
        t.set_process_name(0, "live");
        t.set_thread_name(0, 1, "digitizer \"main\"");
        t.complete("stage B", "stage", 0, 1, 50.0, 10.0, Some(2));
        t.complete("stage A", "stage", 0, 1, 5.0, 10.0, Some(1));
        t.instant("commit", "frame", 0, 1, 70.0, Some(2));
        let json = t.to_json();
        // 2 metadata + 3 events.
        assert_eq!(validate(&json), Ok(5));
        let a = json.find("stage A").unwrap_or(usize::MAX);
        let b = json.find("stage B").unwrap_or(usize::MAX);
        assert!(a < b, "events must be emitted in ts order");
    }

    #[test]
    fn dump_round_trips_through_export() {
        let r = Recorder::new(
            TraceMode::Full,
            vec!["Digitizer".into(), "Histogram".into()],
        );
        r.record(Span {
            kind: crate::span::SpanKind::Compute,
            stage: 1,
            frame: 7,
            chunk: Some((0, 2)),
            start_ns: 1_000,
            dur_ns: 500,
            tid: 0,
        });
        r.instant(crate::span::SpanKind::Commit, 1, 7, None);
        let mut t = ChromeTrace::new();
        t.push_dump(&r.drain(), 0, "live");
        assert_eq!(t.len(), 2);
        let json = t.to_json();
        assert!(validate(&json).is_ok(), "{json}");
        assert!(json.contains("Histogram [1/2]"));
    }

    #[test]
    fn validator_rejects_malformed_and_non_monotone() {
        assert!(validate("{}").is_err());
        assert!(validate("[{\"ts\":1}").is_err());
        assert!(validate("[{\"ts\":2},{\"ts\":1}]").is_err());
        assert!(validate("[{\"ts\":1},{\"ts\":1},{\"ts\":3}]").is_ok());
        assert!(validate("[1,2,3] trailing").is_err());
    }
}
