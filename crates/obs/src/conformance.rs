//! Schedule-conformance checking: join *measured* per-frame behaviour
//! against the *predicted* behaviour of the precomputed schedule table.
//!
//! The paper's central claim is that a table of per-regime schedules,
//! computed offline from a cost model, stays valid online. This module
//! tests that claim on a live run, flagging three failure classes:
//!
//! 1. **Cost drift** — a stage whose measured wall time deviates from its
//!    predicted cost beyond tolerance, *after* a global calibration factor
//!    maps abstract cost-model micros onto wall nanoseconds (the model is
//!    unitless; only relative deviations are meaningful).
//! 2. **Regime misclassification** — frames whose recorded `(FP, MP)`
//!    decomposition differs from the table's choice for the regime their
//!    observed target count assigns them to.
//! 3. **Channel-occupancy violations** — `ChannelStats::peak_live`
//!    exceeding the channel's capacity (hard failure) or the schedule's
//!    overlapping-iteration bound (the "fixed schedule bounds occupancy"
//!    claim; a warning).

use crate::frames::{FrameLife, FrameOutcome};
use crate::hist::LogHist;

/// The predictions of one regime's precomputed schedule, extracted from
/// the `ScheduleTable` (see `cds-core`'s `stage_predictions`).
#[derive(Clone, Debug)]
pub struct RegimeSpec {
    /// The regime's state (target count) as stored in the table.
    pub regime: u32,
    /// Predicted end-to-end latency L* in cost-model micros.
    pub predicted_latency_us: u64,
    /// Predicted initiation interval in cost-model micros.
    pub ii_us: u64,
    /// Schedule occupancy bound: max concurrently-live iterations.
    pub occupancy_bound: u32,
    /// The `(FP, MP)` decomposition this regime's schedule uses.
    pub decomp: (u16, u16),
    /// Per-stage predicted wall cost: `(stage index, micros)`.
    pub stage_costs_us: Vec<(u8, u64)>,
}

/// One channel's observed occupancy next to its bounds.
#[derive(Clone, Debug)]
pub struct ChannelCheck {
    /// Channel name (e.g. "Motion Mask").
    pub name: String,
    /// Configured capacity (items).
    pub capacity: u32,
    /// `ChannelStats::peak_live` at the end of the run.
    pub peak_live: u32,
    /// The schedule's occupancy bound for this channel (overlapping
    /// iterations of the active regime, typically).
    pub schedule_bound: u32,
}

/// Per-stage conformance within one regime.
#[derive(Clone, Debug)]
pub struct StageRow {
    /// Stage index.
    pub stage: u8,
    /// Predicted wall cost in cost-model micros.
    pub predicted_us: u64,
    /// Mean measured wall time in nanoseconds.
    pub measured_wall_ns_mean: f64,
    /// `measured / (predicted × calibration)`; 1.0 = perfectly on-model.
    pub ratio: f64,
    /// Whether `ratio` deviates from 1.0 beyond the tolerance, in either
    /// direction (see [`ratio_drifts`]).
    pub drift: bool,
}

/// The symmetric drift predicate: `ratio` drifts when it exceeds
/// `1 + tolerance` (slow-down) **or** falls below `1 / (1 + tolerance)`
/// (speed-up). The multiplicative symmetry makes an N× speed-up exactly as
/// visible as an N× slow-down at any tolerance — the old additive rule
/// `|ratio − 1| > tolerance` could never flag a speed-up once
/// `tolerance ≥ 1`, leaving faster-than-modeled stages invisible to the
/// adaptation loop.
#[must_use]
pub fn ratio_drifts(ratio: f64, tolerance: f64) -> bool {
    ratio > 1.0 + tolerance || ratio < 1.0 / (1.0 + tolerance)
}

/// Conformance summary for one regime.
#[derive(Clone, Debug)]
pub struct RegimeRow {
    /// The regime's state (target count).
    pub regime: u32,
    /// Frames assigned to this regime (0 = regime never observed).
    pub frames: u64,
    /// Of those, frames that committed.
    pub committed: u64,
    /// Predicted latency L* in cost-model micros.
    pub predicted_latency_us: u64,
    /// Mean measured end-to-end latency in nanoseconds.
    pub measured_latency_ns_mean: f64,
    /// Frames whose recorded decomposition differs from the table's.
    pub misclassified: u64,
    /// Per-stage rows (only stages with both a prediction and data).
    pub stages: Vec<StageRow>,
}

/// Channel-occupancy verdict.
#[derive(Clone, Debug)]
pub struct ChannelRow {
    /// Channel name.
    pub name: String,
    /// Configured capacity.
    pub capacity: u32,
    /// Observed peak occupancy.
    pub peak_live: u32,
    /// Schedule bound.
    pub schedule_bound: u32,
    /// Peak exceeded capacity (hard violation).
    pub over_capacity: bool,
    /// Peak exceeded the schedule's bound (model warning).
    pub over_bound: bool,
}

/// The full conformance report; render with `Display` or inspect fields.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Global calibration factor: wall nanoseconds per cost-model micro,
    /// the median over all (regime, stage) measured/predicted ratios.
    /// 0.0 when no stage had both data and a prediction.
    pub calibration_ns_per_us: f64,
    /// Per-regime rows, in table order.
    pub regimes: Vec<RegimeRow>,
    /// Per-channel occupancy rows.
    pub channels: Vec<ChannelRow>,
    /// Human-readable flags, one per detected violation. Empty = conformant.
    pub flags: Vec<String>,
    /// Stage index → display name, for rendering.
    pub stage_names: Vec<String>,
}

impl ConformanceReport {
    /// Whether the run conformed to the schedule (no flags raised).
    #[must_use]
    pub fn conformant(&self) -> bool {
        self.flags.is_empty()
    }
}

/// Assign a frame's observed target count to a regime exactly the way the
/// live `RegimeController` does: the largest spec at or below the count,
/// clamping to the smallest spec when the count undershoots every regime.
fn assign_regime(count: u32, regimes: &[RegimeSpec]) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut smallest: Option<usize> = None;
    for (i, spec) in regimes.iter().enumerate() {
        if smallest.is_none_or(|s: usize| spec.regime < regimes[s].regime) {
            smallest = Some(i);
        }
        if spec.regime <= count && best.is_none_or(|b: usize| spec.regime > regimes[b].regime) {
            best = Some(i);
        }
    }
    best.or(smallest)
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[v.len() / 2]
}

/// Median-calibrate a set of live per-stage cost measurements against
/// their schedule predictions — the same math as [`check`]'s cost-drift
/// pass, exposed for the online adaptation loop, which samples stage wall
/// times continuously instead of reconstructing frames after the run.
///
/// `samples` holds `(stage index, predicted cost-model µs, measured mean
/// wall ns)`; entries with a zero prediction or no data are skipped.
/// Returns the calibration (wall ns per cost-model µs, the median of the
/// measured/predicted ratios) and one [`StageRow`] per usable sample, with
/// `drift` set where the calibrated ratio deviates from 1.0 beyond
/// `tolerance` in either direction ([`ratio_drifts`] — slow-downs *and*
/// speed-ups). With fewer than two usable samples the median is degenerate
/// and every ratio is 1.0 by construction — callers should feed the whole
/// stage vector, not one stage at a time.
#[must_use]
pub fn calibrate_stages(samples: &[(u8, u64, f64)], tolerance: f64) -> (f64, Vec<StageRow>) {
    let usable: Vec<&(u8, u64, f64)> = samples
        .iter()
        .filter(|(_, p, m)| *p > 0 && *m > 0.0)
        .collect();
    let calibration = median(usable.iter().map(|(_, p, m)| m / *p as f64).collect());
    let rows = usable
        .into_iter()
        .map(|&(stage, predicted_us, mean)| {
            let ratio = if calibration > 0.0 {
                mean / (predicted_us as f64 * calibration)
            } else {
                0.0
            };
            StageRow {
                stage,
                predicted_us,
                measured_wall_ns_mean: mean,
                ratio,
                drift: calibration > 0.0 && ratio_drifts(ratio, tolerance),
            }
        })
        .collect();
    (calibration, rows)
}

/// Run the conformance check.
///
/// * `frames` — reconstructed lifecycles (see [`crate::frames::reconstruct`]).
/// * `frame_count` — the observed target count for a frame timestamp,
///   which determines its regime (mirror of what the sink fed the
///   controller; typically derived from the scene or the location log).
/// * `regimes` — the table's predictions, one per precomputed state.
/// * `channels` — end-of-run channel occupancy snapshots.
/// * `tolerance` — allowed relative deviation of a stage's calibrated
///   cost ratio from 1.0 before it is flagged as drift, applied
///   symmetrically (0.5 flags ratios above 1.5 or below 1/1.5 ≈ 0.67;
///   see [`ratio_drifts`]).
#[must_use]
pub fn check(
    frames: &[FrameLife],
    frame_count: &dyn Fn(u64) -> u32,
    regimes: &[RegimeSpec],
    channels: &[ChannelCheck],
    tolerance: f64,
    stage_names: &[String],
) -> ConformanceReport {
    let mut flags = Vec::new();

    // Bucket frames by assigned regime.
    let mut buckets: Vec<Vec<&FrameLife>> = vec![Vec::new(); regimes.len()];
    for f in frames {
        if let Some(i) = assign_regime(frame_count(f.frame), regimes) {
            buckets[i].push(f);
        }
    }

    // First pass: per-(regime, stage) measured means, to calibrate the
    // unitless cost model against wall time.
    let mut ratios = Vec::new();
    let mut stage_means: Vec<Vec<(u8, u64, f64)>> = Vec::with_capacity(regimes.len());
    for (spec, bucket) in regimes.iter().zip(&buckets) {
        let mut rows = Vec::new();
        for &(stage, predicted_us) in &spec.stage_costs_us {
            let samples: Vec<u64> = bucket
                .iter()
                .filter(|f| f.outcome == FrameOutcome::Committed)
                .filter_map(|f| f.stage_wall_ns.get(stage as usize).copied())
                .filter(|&w| w > 0)
                .collect();
            if samples.is_empty() || predicted_us == 0 {
                continue;
            }
            let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
            rows.push((stage, predicted_us, mean));
            ratios.push(mean / predicted_us as f64);
        }
        stage_means.push(rows);
    }
    let calibration = median(ratios);

    // Second pass: build rows and raise flags.
    let mut regime_rows = Vec::with_capacity(regimes.len());
    for ((spec, bucket), rows) in regimes.iter().zip(&buckets).zip(stage_means) {
        let latency = LogHist::new();
        let mut committed = 0u64;
        let mut misclassified = 0u64;
        for f in bucket {
            if f.outcome == FrameOutcome::Committed {
                committed += 1;
            }
            if let Some(l) = f.latency_ns() {
                latency.record(l);
            }
            if let Some(d) = f.decomp {
                if d != spec.decomp {
                    misclassified += 1;
                }
            }
        }
        if misclassified > 0 {
            flags.push(format!(
                "regime {}: {misclassified} frame(s) ran decomposition other than FP={} MP={} (misclassification or switch lag)",
                spec.regime, spec.decomp.0, spec.decomp.1
            ));
        }
        let mut stage_rows = Vec::with_capacity(rows.len());
        for (stage, predicted_us, mean) in rows {
            let ratio = if calibration > 0.0 {
                mean / (predicted_us as f64 * calibration)
            } else {
                0.0
            };
            let drift = calibration > 0.0 && ratio_drifts(ratio, tolerance);
            if drift {
                let name = stage_names
                    .get(stage as usize)
                    .map_or("stage?", String::as_str);
                flags.push(format!(
                    "regime {}: stage {name} cost drift — measured {:.0} ns vs calibrated prediction {:.0} ns (ratio {ratio:.2})",
                    spec.regime,
                    mean,
                    predicted_us as f64 * calibration
                ));
            }
            stage_rows.push(StageRow {
                stage,
                predicted_us,
                measured_wall_ns_mean: mean,
                ratio,
                drift,
            });
        }
        regime_rows.push(RegimeRow {
            regime: spec.regime,
            frames: bucket.len() as u64,
            committed,
            predicted_latency_us: spec.predicted_latency_us,
            measured_latency_ns_mean: latency.mean(),
            misclassified,
            stages: stage_rows,
        });
    }

    let mut channel_rows = Vec::with_capacity(channels.len());
    for c in channels {
        let over_capacity = c.peak_live > c.capacity;
        let over_bound = c.peak_live > c.schedule_bound;
        if over_capacity {
            flags.push(format!(
                "channel {}: peak occupancy {} exceeded capacity {}",
                c.name, c.peak_live, c.capacity
            ));
        } else if over_bound {
            flags.push(format!(
                "channel {}: peak occupancy {} exceeded schedule bound {} (capacity {})",
                c.name, c.peak_live, c.schedule_bound, c.capacity
            ));
        }
        channel_rows.push(ChannelRow {
            name: c.name.clone(),
            capacity: c.capacity,
            peak_live: c.peak_live,
            schedule_bound: c.schedule_bound,
            over_capacity,
            over_bound,
        });
    }

    ConformanceReport {
        calibration_ns_per_us: calibration,
        regimes: regime_rows,
        channels: channel_rows,
        flags,
        stage_names: stage_names.to_vec(),
    }
}

impl std::fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "schedule conformance")?;
        writeln!(
            f,
            "  calibration: {:.1} ns of wall time per cost-model unit",
            self.calibration_ns_per_us
        )?;
        writeln!(
            f,
            "  {:>7} {:>7} {:>9} {:>14} {:>14} {:>8}",
            "regime", "frames", "committed", "predicted L*", "measured", "misclass"
        )?;
        for r in &self.regimes {
            let measured = if r.measured_latency_ns_mean > 0.0 {
                format!("{:.2} ms", r.measured_latency_ns_mean / 1e6)
            } else {
                "-".to_string()
            };
            writeln!(
                f,
                "  {:>7} {:>7} {:>9} {:>11} us {:>14} {:>8}",
                r.regime, r.frames, r.committed, r.predicted_latency_us, measured, r.misclassified
            )?;
            for s in &r.stages {
                let name = self
                    .stage_names
                    .get(s.stage as usize)
                    .map_or("stage?", String::as_str);
                writeln!(
                    f,
                    "      {:<18} predicted {:>6} us, measured {:>10.0} ns, ratio {:>5.2}{}",
                    name,
                    s.predicted_us,
                    s.measured_wall_ns_mean,
                    s.ratio,
                    if s.drift { "  DRIFT" } else { "" }
                )?;
            }
        }
        if !self.channels.is_empty() {
            writeln!(
                f,
                "  {:<20} {:>8} {:>10} {:>6}",
                "channel", "capacity", "peak-live", "bound"
            )?;
            for c in &self.channels {
                writeln!(
                    f,
                    "  {:<20} {:>8} {:>10} {:>6}{}",
                    c.name,
                    c.capacity,
                    c.peak_live,
                    c.schedule_bound,
                    if c.over_capacity {
                        "  VIOLATION"
                    } else if c.over_bound {
                        "  OVER-BOUND"
                    } else {
                        ""
                    }
                )?;
            }
        }
        if self.flags.is_empty() {
            write!(f, "  conformant: yes")
        } else {
            writeln!(f, "  flags:")?;
            for (i, flag) in self.flags.iter().enumerate() {
                if i > 0 {
                    writeln!(f)?;
                }
                write!(f, "    - {flag}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn life(
        frame: u64,
        latency: u64,
        stage_wall: &[(usize, u64)],
        decomp: Option<(u16, u16)>,
    ) -> FrameLife {
        let mut wall = vec![0u64; 6];
        for &(s, w) in stage_wall {
            wall[s] = w;
        }
        FrameLife {
            frame,
            digitize_ns: Some(frame * 1_000_000),
            commit_ns: Some(frame * 1_000_000 + latency),
            outcome: FrameOutcome::Committed,
            stage_busy_ns: wall.clone(),
            stage_wall_ns: wall,
            decomp,
            skipped_at: None,
        }
    }

    fn spec(regime: u32, decomp: (u16, u16)) -> RegimeSpec {
        RegimeSpec {
            regime,
            predicted_latency_us: 1_000,
            ii_us: 500,
            occupancy_bound: 2,
            decomp,
            stage_costs_us: vec![(1, 100), (3, 300)],
        }
    }

    #[test]
    fn on_model_run_is_conformant() {
        // Measured walls are exactly 1000 ns per predicted unit everywhere.
        let frames: Vec<FrameLife> = (0..10)
            .map(|f| life(f, 1_000_000, &[(1, 100_000), (3, 300_000)], Some((2, 1))))
            .collect();
        let report = check(
            &frames,
            &|_| 1,
            &[spec(1, (2, 1))],
            &[ChannelCheck {
                name: "Frame".into(),
                capacity: 4,
                peak_live: 2,
                schedule_bound: 2,
            }],
            0.25,
            &[
                "D".into(),
                "H".into(),
                "C".into(),
                "T".into(),
                "P".into(),
                "F".into(),
            ],
        );
        assert!(report.conformant(), "{:?}", report.flags);
        assert!((report.calibration_ns_per_us - 1_000.0).abs() < 1e-6);
        assert_eq!(report.regimes[0].frames, 10);
        assert!(report.regimes[0]
            .stages
            .iter()
            .all(|s| (s.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn cost_drift_is_flagged_per_stage() {
        // Stages 1 and 2 are on-model (1000 ns/unit); stage 3 runs 3x over,
        // so the median calibration isolates it as the drifter.
        let frames: Vec<FrameLife> = (0..10)
            .map(|f| {
                life(
                    f,
                    1_000_000,
                    &[(1, 100_000), (2, 200_000), (3, 900_000)],
                    Some((2, 1)),
                )
            })
            .collect();
        let mut sp = spec(1, (2, 1));
        sp.stage_costs_us = vec![(1, 100), (2, 200), (3, 300)];
        let report = check(
            &frames,
            &|_| 1,
            &[sp],
            &[],
            0.5,
            &[
                "D".into(),
                "H".into(),
                "C".into(),
                "T".into(),
                "P".into(),
                "F".into(),
            ],
        );
        assert!(!report.conformant());
        let drifted: Vec<u8> = report.regimes[0]
            .stages
            .iter()
            .filter(|s| s.drift)
            .map(|s| s.stage)
            .collect();
        assert!(drifted.contains(&3), "stage 3 must drift: {report}");
    }

    #[test]
    fn misclassified_decomp_is_flagged() {
        let frames: Vec<FrameLife> = (0..4)
            .map(|f| life(f, 1_000_000, &[(1, 100_000)], Some((1, 3))))
            .collect();
        let report = check(&frames, &|_| 1, &[spec(1, (2, 1))], &[], 0.5, &[]);
        assert_eq!(report.regimes[0].misclassified, 4);
        assert!(!report.conformant());
    }

    #[test]
    fn occupancy_violations_and_bounds() {
        let channels = [
            ChannelCheck {
                name: "ok".into(),
                capacity: 4,
                peak_live: 2,
                schedule_bound: 3,
            },
            ChannelCheck {
                name: "overbound".into(),
                capacity: 8,
                peak_live: 5,
                schedule_bound: 3,
            },
            ChannelCheck {
                name: "overcap".into(),
                capacity: 4,
                peak_live: 5,
                schedule_bound: 3,
            },
        ];
        let report = check(&[], &|_| 1, &[], &channels, 0.5, &[]);
        assert!(!report.channels[0].over_bound && !report.channels[0].over_capacity);
        assert!(report.channels[1].over_bound && !report.channels[1].over_capacity);
        assert!(report.channels[2].over_capacity);
        assert_eq!(report.flags.len(), 2);
    }

    #[test]
    fn regime_with_no_frames_renders_without_flags() {
        // Frames all observe count 1; the count-3 regime stays empty.
        let frames: Vec<FrameLife> = (0..5)
            .map(|f| life(f, 1_000_000, &[(1, 100_000)], Some((2, 1))))
            .collect();
        let report = check(
            &frames,
            &|_| 1,
            &[spec(1, (2, 1)), spec(3, (1, 3))],
            &[],
            0.5,
            &[
                "D".into(),
                "H".into(),
                "C".into(),
                "T".into(),
                "P".into(),
                "F".into(),
            ],
        );
        assert!(report.conformant(), "{:?}", report.flags);
        let empty = &report.regimes[1];
        assert_eq!(empty.frames, 0);
        assert_eq!(empty.committed, 0);
        assert_eq!(empty.measured_latency_ns_mean, 0.0);
        assert!(
            empty.stages.is_empty(),
            "no data rows for an unobserved regime"
        );
        // Display renders without panicking and shows the empty row.
        let text = report.to_string();
        assert!(text.contains('3'), "{text}");
    }

    #[test]
    fn calibrate_stages_matches_offline_checker() {
        // The live-loop helper must agree with `check` on identical data:
        // stages 1 and 2 on-model at 1000 ns/unit, stage 3 at 3x.
        let samples = [
            (1u8, 100u64, 100_000.0),
            (2, 200, 200_000.0),
            (3, 300, 900_000.0),
        ];
        let (cal, rows) = calibrate_stages(&samples, 0.5);
        assert!((cal - 1_000.0).abs() < 1e-6, "median calibration: {cal}");
        assert_eq!(rows.len(), 3);
        assert!(!rows[0].drift && !rows[1].drift);
        assert!(rows[2].drift, "stage 3 is 3x over: {rows:?}");
        assert!((rows[2].ratio - 3.0).abs() < 1e-9);
        // Zero predictions and empty measurements are skipped, not divided.
        let (cal, rows) = calibrate_stages(&[(0, 0, 5.0), (1, 10, 0.0)], 0.5);
        assert_eq!(cal, 0.0);
        assert!(rows.is_empty());
    }

    #[test]
    fn speedups_drift_symmetrically_even_at_large_tolerance() {
        // Regression for the PR 6 caveat: with the additive rule
        // `|ratio − 1| > tolerance`, a speed-up could never fire once
        // tolerance ≥ 1 (ratios are bounded below by 0). Stage 3 runs 4×
        // *faster* than calibrated; at tolerance 1.0 the symmetric rule
        // flags it (0.25 < 1/2) while on-model stages stay quiet.
        let samples = [
            (1u8, 100u64, 100_000.0),
            (2, 200, 200_000.0),
            (3, 400, 100_000.0), // ratio 0.25: 4× faster than the model
        ];
        let (cal, rows) = calibrate_stages(&samples, 1.0);
        assert!((cal - 1_000.0).abs() < 1e-6, "median calibration: {cal}");
        assert!(!rows[0].drift && !rows[1].drift);
        assert!((rows[2].ratio - 0.25).abs() < 1e-9);
        assert!(rows[2].drift, "4× speed-up invisible at tolerance 1.0");
        // The predicate itself, both directions, multiplicatively symmetric.
        assert!(ratio_drifts(2.01, 1.0) && ratio_drifts(0.49, 1.0));
        assert!(!ratio_drifts(1.99, 1.0) && !ratio_drifts(0.51, 1.0));
        assert!(ratio_drifts(1.51, 0.5) && ratio_drifts(1.0 / 1.51, 0.5));
        assert!(!ratio_drifts(1.49, 0.5) && !ratio_drifts(1.0 / 1.49, 0.5));
    }

    #[test]
    fn regime_assignment_clamps_like_the_controller() {
        let specs = [spec(2, (2, 1)), spec(5, (1, 3))];
        assert_eq!(
            assign_regime(0, &specs),
            Some(0),
            "undershoot clamps to smallest"
        );
        assert_eq!(assign_regime(2, &specs), Some(0));
        assert_eq!(assign_regime(4, &specs), Some(0), "nearest at-or-below");
        assert_eq!(assign_regime(5, &specs), Some(1));
        assert_eq!(assign_regime(99, &specs), Some(1));
        assert_eq!(assign_regime(1, &[]), None);
    }
}
