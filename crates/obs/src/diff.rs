//! Live-vs-replay trace diffing: compare two span dumps frame by frame on
//! their *semantic* skeleton — which frames existed, how each concluded
//! (committed / skipped and where / incomplete), and which decomposition
//! the splitter used — while ignoring everything timing-dependent
//! (span start times, durations, pool-chunk placement, thread ids).
//!
//! A deterministic replay must reproduce the skeleton exactly even though
//! its wall-clock profile is completely different; this module is the
//! checker that says so.

use crate::frames::{reconstruct, FrameLife, FrameOutcome};
use crate::span::SpanDump;
use std::collections::BTreeMap;

/// One frame whose skeleton differs between the two dumps.
#[derive(Clone, Debug)]
pub struct FrameDiff {
    /// Frame timestamp.
    pub frame: u64,
    /// Skeleton on the left (live) side, rendered; "absent" when the frame
    /// has no spans there.
    pub left: String,
    /// Skeleton on the right (replay) side, rendered.
    pub right: String,
}

/// The result of diffing two dumps.
#[derive(Debug)]
pub struct DiffReport {
    /// Frames with spans in the left dump.
    pub frames_left: usize,
    /// Frames with spans in the right dump.
    pub frames_right: usize,
    /// Frames whose skeletons differ, in frame order.
    pub mismatches: Vec<FrameDiff>,
}

impl DiffReport {
    /// Whether every frame's skeleton matched.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl std::fmt::Display for DiffReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frames: {} vs {}, mismatches: {}",
            self.frames_left,
            self.frames_right,
            self.mismatches.len()
        )?;
        for m in self.mismatches.iter().take(8) {
            write!(f, "\n  frame {}: {} != {}", m.frame, m.left, m.right)?;
        }
        if self.mismatches.len() > 8 {
            write!(f, "\n  … and {} more", self.mismatches.len() - 8)?;
        }
        Ok(())
    }
}

/// The timing-free skeleton of one reconstructed frame.
fn skeleton(life: &FrameLife, with_decomp: bool) -> String {
    let outcome = match life.outcome {
        FrameOutcome::Committed => "committed".to_string(),
        FrameOutcome::Skipped => match life.skipped_at {
            Some(stage) => format!("skipped@{stage}"),
            None => "skipped".to_string(),
        },
        FrameOutcome::Incomplete => "incomplete".to_string(),
    };
    match life.decomp {
        Some((fp, mp)) if with_decomp => format!("{outcome} decomp={fp}x{mp}"),
        _ => outcome,
    }
}

/// Diff two dumps on their per-frame skeletons (see module docs). Frames
/// present on only one side are mismatches with the other side "absent".
#[must_use]
pub fn diff(left: &SpanDump, right: &SpanDump) -> DiffReport {
    diff_impl(left, right, true)
}

/// [`diff`], but with each frame's decomposition excluded from the
/// skeleton. While a regime switch is confirming, which decomposition an
/// in-flight frame's splitter reads is a wall-clock race — benign by the
/// decomposition-invariance of the stage results, but not reproducible —
/// so runs under a live regime controller compare with this variant (the
/// switch *sequence* itself is compared separately and exactly).
#[must_use]
pub fn diff_ignoring_decomp(left: &SpanDump, right: &SpanDump) -> DiffReport {
    diff_impl(left, right, false)
}

fn diff_impl(left: &SpanDump, right: &SpanDump, with_decomp: bool) -> DiffReport {
    let l: BTreeMap<u64, String> = reconstruct(left)
        .iter()
        .map(|f| (f.frame, skeleton(f, with_decomp)))
        .collect();
    let r: BTreeMap<u64, String> = reconstruct(right)
        .iter()
        .map(|f| (f.frame, skeleton(f, with_decomp)))
        .collect();
    let mut mismatches = Vec::new();
    for (frame, ls) in &l {
        match r.get(frame) {
            Some(rs) if rs == ls => {}
            other => mismatches.push(FrameDiff {
                frame: *frame,
                left: ls.clone(),
                right: other.cloned().unwrap_or_else(|| "absent".to_string()),
            }),
        }
    }
    for (frame, rs) in &r {
        if !l.contains_key(frame) {
            mismatches.push(FrameDiff {
                frame: *frame,
                left: "absent".to_string(),
                right: rs.clone(),
            });
        }
    }
    mismatches.sort_by_key(|m| m.frame);
    DiffReport {
        frames_left: l.len(),
        frames_right: r.len(),
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Span, SpanKind, TraceMode};

    fn rec() -> Recorder {
        Recorder::new(TraceMode::Full, vec!["D".into(), "H".into(), "C".into()])
    }

    fn push(r: &Recorder, kind: SpanKind, stage: u8, frame: u64, start: u64) {
        r.record(Span {
            kind,
            stage,
            frame,
            chunk: None,
            start_ns: start,
            dur_ns: 0,
            tid: 0,
        });
    }

    #[test]
    fn identical_skeletons_match_despite_different_timing() {
        let a = rec();
        push(&a, SpanKind::Digitize, 0, 0, 100);
        push(&a, SpanKind::Commit, 2, 0, 400);
        push(&a, SpanKind::Digitize, 0, 1, 500);
        push(&a, SpanKind::Skip, 1, 1, 600);
        // Same events, wildly different clock readings.
        let b = rec();
        push(&b, SpanKind::Digitize, 0, 0, 7);
        push(&b, SpanKind::Commit, 2, 0, 9);
        push(&b, SpanKind::Digitize, 0, 1, 11);
        push(&b, SpanKind::Skip, 1, 1, 12);
        let report = diff(&a.drain(), &b.drain());
        assert!(report.matches(), "{report}");
        assert_eq!(report.frames_left, 2);
    }

    #[test]
    fn outcome_and_skip_stage_differences_are_caught() {
        let a = rec();
        push(&a, SpanKind::Digitize, 0, 0, 0);
        push(&a, SpanKind::Commit, 2, 0, 1);
        push(&a, SpanKind::Skip, 1, 1, 2);
        let b = rec();
        push(&b, SpanKind::Digitize, 0, 0, 0);
        push(&b, SpanKind::Skip, 2, 0, 1); // committed → skipped
        push(&b, SpanKind::Skip, 2, 1, 2); // skipped at a different stage
        let report = diff(&a.drain(), &b.drain());
        assert_eq!(report.mismatches.len(), 2);
        assert_eq!(report.mismatches[0].left, "committed");
        assert_eq!(report.mismatches[0].right, "skipped@2");
        assert_eq!(report.mismatches[1].left, "skipped@1");
    }

    #[test]
    fn decomp_differences_can_be_ignored_but_outcomes_cannot() {
        let a = rec();
        push(&a, SpanKind::Digitize, 0, 0, 0);
        a.record(Span {
            kind: SpanKind::Decomp,
            stage: 1,
            frame: 0,
            chunk: Some((2, 1)),
            start_ns: 1,
            dur_ns: 1,
            tid: 0,
        });
        push(&a, SpanKind::Commit, 2, 0, 3);
        let b = rec();
        push(&b, SpanKind::Digitize, 0, 0, 0);
        b.record(Span {
            kind: SpanKind::Decomp,
            stage: 1,
            frame: 0,
            chunk: Some((1, 3)),
            start_ns: 1,
            dur_ns: 1,
            tid: 0,
        });
        push(&b, SpanKind::Commit, 2, 0, 3);
        let (da, db) = (a.drain(), b.drain());
        assert!(!diff(&da, &db).matches(), "strict diff sees the decomp");
        assert!(diff_ignoring_decomp(&da, &db).matches());

        let c = rec();
        push(&c, SpanKind::Digitize, 0, 0, 0);
        push(&c, SpanKind::Skip, 2, 0, 1);
        assert!(!diff_ignoring_decomp(&da, &c.drain()).matches());
    }

    #[test]
    fn frames_on_one_side_only_are_mismatches() {
        let a = rec();
        push(&a, SpanKind::Digitize, 0, 0, 0);
        let b = rec();
        push(&b, SpanKind::Digitize, 0, 1, 0);
        let report = diff(&a.drain(), &b.drain());
        assert_eq!(report.mismatches.len(), 2);
        assert_eq!(report.mismatches[0].right, "absent");
        assert_eq!(report.mismatches[1].left, "absent");
        assert!(report.to_string().contains("frame 0"));
    }
}
