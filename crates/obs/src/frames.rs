//! Frame-lifecycle reconstruction: turn a flat [`SpanDump`] back into
//! per-frame journeys (digitize → stage work → commit/skip) plus aggregate
//! latency/throughput/uniformity statistics.
//!
//! This is the live-run mirror of the simulator's `FrameRecord` bookkeeping
//! in `cluster::trace`, reconstructed after the fact so the hot path only
//! ever appends spans.

use crate::hist::LogHist;
use crate::span::{SpanDump, SpanKind};
use std::collections::BTreeMap;

/// How a frame's journey ended, as far as the spans show.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameOutcome {
    /// The sink committed it (a [`SpanKind::Commit`] instant exists).
    Committed,
    /// Some stage skipped it and no commit followed.
    Skipped,
    /// Neither committed nor skipped — still in flight at drain time, or
    /// its terminal span was evicted from a ring.
    Incomplete,
}

/// One frame's reconstructed journey through the pipeline.
#[derive(Clone, Debug)]
pub struct FrameLife {
    /// Frame timestamp (the pipeline's logical frame id).
    pub frame: u64,
    /// When digitizing finished (ns since the recorder epoch), if seen.
    pub digitize_ns: Option<u64>,
    /// When the sink committed it, if it did.
    pub commit_ns: Option<u64>,
    /// Terminal outcome.
    pub outcome: FrameOutcome,
    /// Per-stage busy time: sum of compute + pool-chunk span durations.
    pub stage_busy_ns: Vec<u64>,
    /// Per-stage wall time: last span end minus first span start, which is
    /// what a pipelined schedule's per-stage cost predicts.
    pub stage_wall_ns: Vec<u64>,
    /// The `(FP, MP)` decomposition the splitter used, if recorded.
    pub decomp: Option<(u16, u16)>,
    /// Stage index of the first skip, if any.
    pub skipped_at: Option<u8>,
}

impl FrameLife {
    /// End-to-end latency (commit − digitize), when both ends were seen.
    #[must_use]
    pub fn latency_ns(&self) -> Option<u64> {
        match (self.digitize_ns, self.commit_ns) {
            (Some(d), Some(c)) => Some(c.saturating_sub(d)),
            _ => None,
        }
    }
}

/// Rebuild per-frame lifecycles from a drained dump, sorted by frame.
///
/// [`SpanKind::Switch`] spans carry observation ordinals rather than frame
/// timestamps, so they are excluded from frame grouping.
#[must_use]
pub fn reconstruct(dump: &SpanDump) -> Vec<FrameLife> {
    let n_stages = dump.stage_names.len().max(
        dump.spans
            .iter()
            .map(|s| s.stage as usize + 1)
            .max()
            .unwrap_or(0),
    );
    let mut by_frame: BTreeMap<u64, FrameLife> = BTreeMap::new();
    // Track span extents per (frame, stage) for wall-time reconstruction.
    let mut extents: BTreeMap<(u64, u8), (u64, u64)> = BTreeMap::new();

    for s in &dump.spans {
        if s.kind == SpanKind::Switch {
            continue;
        }
        let life = by_frame.entry(s.frame).or_insert_with(|| FrameLife {
            frame: s.frame,
            digitize_ns: None,
            commit_ns: None,
            outcome: FrameOutcome::Incomplete,
            stage_busy_ns: vec![0; n_stages],
            stage_wall_ns: vec![0; n_stages],
            decomp: None,
            skipped_at: None,
        });
        match s.kind {
            SpanKind::Digitize => life.digitize_ns = Some(s.start_ns),
            SpanKind::Commit => life.commit_ns = Some(s.start_ns),
            SpanKind::Skip => {
                if life.skipped_at.is_none() {
                    life.skipped_at = Some(s.stage);
                }
            }
            SpanKind::Decomp => life.decomp = s.chunk,
            SpanKind::Compute | SpanKind::PoolChunk => {
                if let Some(busy) = life.stage_busy_ns.get_mut(s.stage as usize) {
                    *busy += s.dur_ns;
                }
                let e = extents
                    .entry((s.frame, s.stage))
                    .or_insert((s.start_ns, s.end_ns()));
                e.0 = e.0.min(s.start_ns);
                e.1 = e.1.max(s.end_ns());
            }
            SpanKind::Get
            | SpanKind::Put
            | SpanKind::Join
            | SpanKind::Switch
            | SpanKind::Resched => {}
        }
    }

    for ((frame, stage), (start, end)) in extents {
        if let Some(life) = by_frame.get_mut(&frame) {
            if let Some(wall) = life.stage_wall_ns.get_mut(stage as usize) {
                *wall = end.saturating_sub(start);
            }
        }
    }

    let mut frames: Vec<FrameLife> = by_frame.into_values().collect();
    for life in &mut frames {
        life.outcome = if life.commit_ns.is_some() {
            FrameOutcome::Committed
        } else if life.skipped_at.is_some() {
            FrameOutcome::Skipped
        } else {
            FrameOutcome::Incomplete
        };
    }
    frames
}

/// Aggregate statistics over a set of reconstructed frames.
#[derive(Debug)]
pub struct LifecycleStats {
    /// Frames with any span at all.
    pub frames_total: u64,
    /// Frames that committed.
    pub committed: u64,
    /// Frames the degradation ladder skipped.
    pub skipped: u64,
    /// Frames with neither terminal event.
    pub incomplete: u64,
    /// End-to-end latency histogram (ns) over committed frames.
    pub latency: LogHist,
    /// Committed frames per second over the observed commit window.
    pub throughput_hz: f64,
    /// Coefficient of variation of inter-commit gaps — the paper's
    /// "temporal uniformity" metric (0 = perfectly periodic output).
    pub uniformity_cov: f64,
}

impl LifecycleStats {
    /// Compute stats over `frames` (typically the output of
    /// [`reconstruct`], optionally filtered to one regime).
    #[must_use]
    pub fn from_frames(frames: &[FrameLife]) -> LifecycleStats {
        let latency = LogHist::new();
        let mut commits: Vec<u64> = Vec::new();
        let mut committed = 0u64;
        let mut skipped = 0u64;
        let mut incomplete = 0u64;
        for f in frames {
            match f.outcome {
                FrameOutcome::Committed => committed += 1,
                FrameOutcome::Skipped => skipped += 1,
                FrameOutcome::Incomplete => incomplete += 1,
            }
            if let Some(l) = f.latency_ns() {
                latency.record(l);
            }
            if let Some(c) = f.commit_ns {
                commits.push(c);
            }
        }
        commits.sort_unstable();
        let throughput_hz = match (commits.first(), commits.last()) {
            (Some(&first), Some(&last)) if last > first && commits.len() > 1 => {
                (commits.len() - 1) as f64 / ((last - first) as f64 / 1e9)
            }
            _ => 0.0,
        };
        let uniformity_cov = if commits.len() > 2 {
            let gaps: Vec<f64> = commits.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean > 0.0 {
                let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
                var.sqrt() / mean
            } else {
                0.0
            }
        } else {
            0.0
        };
        LifecycleStats {
            frames_total: frames.len() as u64,
            committed,
            skipped,
            incomplete,
            latency,
            throughput_hz,
            uniformity_cov,
        }
    }
}

impl std::fmt::Display for LifecycleStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "frames={} committed={} skipped={} incomplete={}",
            self.frames_total, self.committed, self.skipped, self.incomplete
        )?;
        writeln!(f, "latency(ns): {}", self.latency)?;
        write!(
            f,
            "throughput={:.2} Hz, uniformity CoV={:.3}",
            self.throughput_hz, self.uniformity_cov
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Recorder, Span, TraceMode};

    fn rec() -> Recorder {
        Recorder::new(
            TraceMode::Full,
            vec!["Digitizer".into(), "Histogram".into(), "Change".into()],
        )
    }

    fn push(
        r: &Recorder,
        kind: SpanKind,
        stage: u8,
        frame: u64,
        start: u64,
        dur: u64,
        chunk: Option<(u16, u16)>,
    ) {
        r.record(Span {
            kind,
            stage,
            frame,
            chunk,
            start_ns: start,
            dur_ns: dur,
            tid: 0,
        });
    }

    #[test]
    fn committed_frame_reconstructs_latency_and_stage_times() {
        let r = rec();
        push(&r, SpanKind::Digitize, 0, 33, 100, 0, None);
        push(&r, SpanKind::Compute, 1, 33, 150, 40, None);
        // Two pool chunks on stage 2, overlapping in wall time.
        push(&r, SpanKind::PoolChunk, 2, 33, 200, 50, Some((0, 2)));
        push(&r, SpanKind::PoolChunk, 2, 33, 210, 60, Some((1, 2)));
        push(&r, SpanKind::Decomp, 2, 33, 195, 0, Some((2, 1)));
        push(&r, SpanKind::Commit, 2, 33, 400, 0, None);
        let frames = reconstruct(&r.drain());
        assert_eq!(frames.len(), 1);
        let f = &frames[0];
        assert_eq!(f.outcome, FrameOutcome::Committed);
        assert_eq!(f.latency_ns(), Some(300));
        assert_eq!(f.stage_busy_ns[1], 40);
        assert_eq!(f.stage_busy_ns[2], 110, "busy sums chunk durations");
        assert_eq!(f.stage_wall_ns[2], 70, "wall spans first start to last end");
        assert_eq!(f.decomp, Some((2, 1)));
    }

    #[test]
    fn skip_and_incomplete_outcomes() {
        let r = rec();
        push(&r, SpanKind::Digitize, 0, 1, 0, 0, None);
        push(&r, SpanKind::Skip, 2, 1, 10, 0, None);
        push(&r, SpanKind::Digitize, 0, 2, 20, 0, None);
        let frames = reconstruct(&r.drain());
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].outcome, FrameOutcome::Skipped);
        assert_eq!(frames[0].skipped_at, Some(2));
        assert!(frames[0].latency_ns().is_none());
        assert_eq!(frames[1].outcome, FrameOutcome::Incomplete);
    }

    #[test]
    fn switch_spans_do_not_create_phantom_frames() {
        let r = rec();
        push(&r, SpanKind::Switch, 0, 999_999, 5, 0, None);
        assert!(reconstruct(&r.drain()).is_empty());
    }

    #[test]
    fn stats_over_periodic_commits() {
        let r = rec();
        for f in 0..5u64 {
            push(&r, SpanKind::Digitize, 0, f, f * 1_000_000_000, 0, None);
            push(&r, SpanKind::Commit, 2, f, f * 1_000_000_000 + 50, 0, None);
        }
        let stats = LifecycleStats::from_frames(&reconstruct(&r.drain()));
        assert_eq!(stats.committed, 5);
        assert_eq!(stats.latency.count(), 5);
        assert!(
            (stats.throughput_hz - 1.0).abs() < 1e-6,
            "{}",
            stats.throughput_hz
        );
        assert!(stats.uniformity_cov < 1e-9, "perfectly periodic");
    }

    #[test]
    fn stats_on_empty_and_single_frame() {
        let empty = LifecycleStats::from_frames(&[]);
        assert_eq!(empty.frames_total, 0);
        assert_eq!(empty.throughput_hz, 0.0);
        assert_eq!(empty.uniformity_cov, 0.0);

        let r = rec();
        push(&r, SpanKind::Digitize, 0, 0, 0, 0, None);
        push(&r, SpanKind::Commit, 2, 0, 100, 0, None);
        let one = LifecycleStats::from_frames(&reconstruct(&r.drain()));
        assert_eq!(one.committed, 1);
        assert_eq!(one.throughput_hz, 0.0, "one commit has no rate window");
    }
}
