//! Log-bucketed histograms for latency/throughput/uniformity aggregation.
//!
//! The hot path (`record`) is a handful of atomic adds with no allocation,
//! so histograms can sit on live-run structures without perturbing the
//! pipeline they measure. Buckets are powers of two (bucket *i* holds
//! values whose highest set bit is *i*), which is plenty of resolution for
//! "is the measured latency near the predicted L*" questions while keeping
//! the footprint at a fixed 64 counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible highest-set-bit of a `u64`.
const BUCKETS: usize = 64;

/// An allocation-free histogram over `u64` samples (typically nanoseconds).
///
/// All methods take `&self`; concurrent recording from many threads is
/// safe. Quantiles are bucket-resolution approximations (within 2× of the
/// true value), while `mean`, `min`, and `max` are exact.
#[derive(Debug)]
pub struct LogHist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHist {
    fn default() -> LogHist {
        LogHist::new()
    }
}

fn bucket_of(v: u64) -> usize {
    // Highest set bit; 0 lands in bucket 0.
    (63 - v.max(1).leading_zeros()) as usize
}

impl LogHist {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LogHist {
        LogHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact mean of all samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Exact minimum sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`: the geometric midpoint of the
    /// bucket containing the q-th sample, clamped to the observed min/max.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)).
                let lo = 1u64 << i;
                let mid = lo + lo / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Median (`quantile(0.5)`).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 95th percentile (`quantile(0.95)`).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Fold another histogram into this one.
    pub fn merge(&self, other: &LogHist) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl std::fmt::Display for LogHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p95={} min={} max={}",
            self.count(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hist_is_all_zero() {
        let h = LogHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
    }

    #[test]
    fn single_sample_stats_are_exact() {
        let h = LogHist::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 1000.0);
        assert_eq!(h.min(), 1000);
        assert_eq!(h.max(), 1000);
        // Quantiles clamp to [min, max], so a single sample is exact too.
        assert_eq!(h.p50(), 1000);
        assert_eq!(h.p95(), 1000);
    }

    #[test]
    fn quantiles_are_within_a_bucket() {
        let h = LogHist::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        // True median is 500; bucket resolution allows [256, 1000].
        assert!((256..=1024).contains(&p50), "p50={p50}");
        assert!(h.p95() >= p50);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = LogHist::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let a = LogHist::new();
        let b = LogHist::new();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 2000);
        assert!((a.mean() - 3010.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LogHist::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 1..=1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
    }
}
