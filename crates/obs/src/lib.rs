//! Live observability for the tracker runtime.
//!
//! The simulator (`cluster`) has had structured tracing since PR 3; this
//! crate gives the *live* pipeline the equivalent, built for production
//! overhead budgets:
//!
//! * [`span`] — the span model, the lock-free per-thread [`SpanRing`], and
//!   the [`Recorder`] handle that stage bodies, pool workers, and STM
//!   accessors report through.
//! * [`hist`] — allocation-free log-bucketed histograms ([`LogHist`]) for
//!   latency/throughput aggregation on the hot path.
//! * [`frames`] — reconstruction of per-frame lifecycles
//!   (digitize → stage spans → commit/skip) from a drained [`SpanDump`].
//! * [`chrome`] — `chrome://tracing` JSON export shared by live runs and
//!   the simulator, so both can be diffed side by side in one timeline.
//! * [`diff`](mod@diff) — semantic trace diffing: compares two span dumps on their
//!   per-frame outcome skeletons (ignoring timing), the checker behind
//!   live-vs-replay determinism verification.
//! * [`conformance`] — the schedule-conformance checker: measured
//!   per-stage costs and latencies joined against the precomputed
//!   schedule's predictions, flagging cost drift, regime
//!   misclassification, and channel-occupancy violations.
//!
//! The crate is dependency-free (shims aside) and sits below both
//! `runtime` and `cluster` so the trace format has a single owner.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod conformance;
pub mod diff;
pub mod frames;
pub mod hist;
pub mod span;

pub use chrome::ChromeTrace;
pub use conformance::{
    calibrate_stages, ratio_drifts, ChannelCheck, ConformanceReport, RegimeSpec, StageRow,
};
pub use diff::{diff, diff_ignoring_decomp, DiffReport, FrameDiff};
pub use frames::{FrameLife, FrameOutcome, LifecycleStats};
pub use hist::LogHist;
pub use span::{Recorder, Span, SpanDump, SpanKind, SpanRing, TraceMode};
