//! Spans, the lock-free per-thread ring they land in, and the [`Recorder`]
//! handle the runtime threads through every stage.
//!
//! The design mirrors the simulator's trace gating (`cluster::TraceMode`)
//! but for *wall-clock* execution: recording must be cheap enough to leave
//! on in production. Three properties deliver that:
//!
//! * **Per-thread sharding.** Each recording thread owns a private shard
//!   found through a thread-local registry; the hot path never contends
//!   with another thread.
//! * **Lock-free ring storage.** In [`TraceMode::Ring`] a shard is a
//!   fixed-capacity seqlock ring of atomic words: the owner thread writes
//!   slots with plain atomic stores (drop-oldest on wrap), and the drain
//!   side validates each slot's sequence number so a concurrently
//!   overwritten slot is discarded instead of read torn. No mutex, no
//!   allocation, no unbounded growth.
//! * **Mode gating.** [`TraceMode::Off`] reduces [`Recorder::record`] to a
//!   single enum compare — measured under 1% end-to-end against a build
//!   with no recorder attached at all (see `results/obs.txt`).
//!
//! [`TraceMode::Full`] trades the bound for completeness: each shard keeps
//! an owner-thread `Vec` behind an (uncontended) mutex, so every span of a
//! long run is retained for exact frame reconstruction.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::Mutex;

/// How much the live pipeline records, mirroring the simulator's gating.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// Record nothing; [`Recorder::record`] is a single branch.
    #[default]
    Off,
    /// Flight recorder: keep the *last* `n` spans per thread in a
    /// lock-free ring (drop-oldest). Allocation-free after setup.
    Ring(usize),
    /// Keep every span (per-thread `Vec`, grows without bound).
    Full,
}

/// What a span describes. Durations are `Compute`/`Get`/`Put`/`PoolChunk`/
/// `Join`; the rest are instants (zero duration).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SpanKind {
    /// A frame finished digitizing (instant; the lifecycle origin).
    Digitize = 0,
    /// A stage body's compute section for one frame (or one chunk of it).
    Compute = 1,
    /// A blocking STM `get` (duration = time to satisfy, including waits).
    Get = 2,
    /// An STM `put` (duration ≈ lock + wake cost; long under backpressure).
    Put = 3,
    /// One data-parallel chunk executed on a worker-pool thread.
    PoolChunk = 4,
    /// A joiner waiting for its farmed chunks to come back.
    Join = 5,
    /// A frame completed end-to-end at the sink (instant).
    Commit = 6,
    /// A frame skipped at a stage by the degradation ladder (instant).
    Skip = 7,
    /// A confirmed regime switch (instant; `frame` is the observation
    /// ordinal, not a timestamp).
    Switch = 8,
    /// The `(FP, MP)` decomposition the splitter used for a frame
    /// (instant; carried in the chunk field).
    Decomp = 9,
    /// An adaptation-loop event (instant): a drift-triggered re-search was
    /// launched, or its result was atomically swapped in. `frame` is the
    /// frame at which the event landed; the chunk field carries the new
    /// `(FP, MP)` on a swap.
    Resched = 10,
}

impl SpanKind {
    fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Digitize,
            1 => SpanKind::Compute,
            2 => SpanKind::Get,
            3 => SpanKind::Put,
            4 => SpanKind::PoolChunk,
            5 => SpanKind::Join,
            6 => SpanKind::Commit,
            7 => SpanKind::Skip,
            8 => SpanKind::Switch,
            9 => SpanKind::Decomp,
            10 => SpanKind::Resched,
            _ => return None,
        })
    }
}

/// One recorded event: what happened, to which frame, at which stage, when,
/// and for how long. Timestamps are nanoseconds since the collector's epoch
/// (the instant the [`Recorder`] was created).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// What the span describes.
    pub kind: SpanKind,
    /// Stage index (the task-graph order; names live in the collector).
    pub stage: u8,
    /// Frame timestamp (or observation ordinal for [`SpanKind::Switch`]).
    pub frame: u64,
    /// `(index, count)` for chunk spans; `(fp, mp)` for [`SpanKind::Decomp`].
    pub chunk: Option<(u16, u16)>,
    /// Start, nanoseconds since the collector epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// The recording thread's shard id.
    pub tid: u16,
}

impl Span {
    /// End instant in nanoseconds since the collector epoch.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    fn pack(&self) -> [u64; 4] {
        let (ci, cn, present) = match self.chunk {
            Some((i, n)) => (u64::from(i), u64::from(n), 1u64),
            None => (0, 0, 0),
        };
        let w0 = u64::from(self.kind as u8)
            | (u64::from(self.stage) << 8)
            | (ci << 16)
            | (cn << 32)
            | (present << 48);
        [w0, self.frame, self.start_ns, self.dur_ns]
    }

    fn unpack(w: [u64; 4], tid: u16) -> Option<Span> {
        let kind = SpanKind::from_u8((w[0] & 0xFF) as u8)?;
        let chunk = if (w[0] >> 48) & 1 == 1 {
            Some((
                ((w[0] >> 16) & 0xFFFF) as u16,
                ((w[0] >> 32) & 0xFFFF) as u16,
            ))
        } else {
            None
        };
        Some(Span {
            kind,
            stage: ((w[0] >> 8) & 0xFF) as u8,
            frame: w[1],
            chunk,
            start_ns: w[2],
            dur_ns: w[3],
            tid,
        })
    }
}

/// One seqlock slot: a sequence word plus the span's four payload words.
/// The sequence is `2·pos + 1` while the owner writes slot `pos` and
/// `2·pos + 2` once the payload is complete, so a drainer can detect both
/// "still being written" and "already overwritten by a later wrap".
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A fixed-capacity drop-oldest span ring written by exactly one thread.
///
/// All state is atomic, so draining from another thread is safe Rust with
/// no undefined behaviour: a slot whose sequence check fails (the writer
/// wrapped past it, or is mid-write) is simply discarded.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Next absolute write position (monotone; slot = pos % capacity).
    write_pos: AtomicU64,
}

impl SpanRing {
    /// A ring holding the most recent `capacity` spans (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(1);
        SpanRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            write_pos: AtomicU64::new(0),
        }
    }

    /// Capacity in spans.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed (monotone; exceeds `capacity` after wrap).
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.write_pos.load(Ordering::SeqCst)
    }

    /// Push one span. Must only be called from the ring's owning thread —
    /// the shard registry guarantees this by construction (each thread gets
    /// its own shard).
    pub fn push(&self, words: [u64; 4]) {
        let pos = self.write_pos.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        slot.seq.store(2 * pos + 1, Ordering::SeqCst);
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::SeqCst);
        }
        slot.seq.store(2 * pos + 2, Ordering::SeqCst);
        self.write_pos.store(pos + 1, Ordering::SeqCst);
    }

    /// Snapshot the retained window, oldest first, discarding any slot the
    /// writer is concurrently overwriting. Returns `(packed spans, evicted)`
    /// where `evicted` counts drop-oldest victims.
    #[must_use]
    pub fn drain(&self) -> (Vec<[u64; 4]>, u64) {
        let wp = self.write_pos.load(Ordering::SeqCst);
        let lo = wp.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((wp - lo) as usize);
        for pos in lo..wp {
            let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
            let expected = 2 * pos + 2;
            if slot.seq.load(Ordering::SeqCst) != expected {
                continue;
            }
            let mut words = [0u64; 4];
            for (v, w) in words.iter_mut().zip(&slot.words) {
                *v = w.load(Ordering::SeqCst);
            }
            if slot.seq.load(Ordering::SeqCst) == expected {
                out.push(words);
            }
        }
        (out, lo)
    }
}

/// Per-thread span storage: a ring ([`TraceMode::Ring`]) or an unbounded
/// list ([`TraceMode::Full`]). The mutex on the full list is only ever
/// contended at drain time — recording threads each own their shard.
struct Shard {
    tid: u16,
    thread_name: String,
    ring: Option<SpanRing>,
    full: Option<Mutex<Vec<[u64; 4]>>>,
    recorded: AtomicU64,
}

impl Shard {
    fn record(&self, words: [u64; 4]) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if let Some(ring) = &self.ring {
            ring.push(words);
        } else if let Some(full) = &self.full {
            full.lock().push(words);
        }
    }
}

/// Shared sink behind every [`Recorder`] clone.
struct Collector {
    id: u64,
    mode: TraceMode,
    epoch: Instant,
    stage_names: Vec<String>,
    shards: Mutex<Vec<Arc<Shard>>>,
    next_tid: AtomicU16,
}

static COLLECTOR_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's shards, one per live collector it has recorded into.
    static TLS_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// The handle task bodies record through. Cloning is an `Arc` bump; the
/// clone records into the same collector.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Collector>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Recorder(mode={:?})", self.inner.mode)
    }
}

impl Recorder {
    /// A recorder in `mode`. `stage_names` maps stage indices to display
    /// names for reports and trace export; the epoch (time zero of every
    /// span) is now.
    #[must_use]
    pub fn new(mode: TraceMode, stage_names: Vec<String>) -> Recorder {
        Recorder {
            inner: Arc::new(Collector {
                id: COLLECTOR_IDS.fetch_add(1, Ordering::Relaxed),
                mode,
                epoch: Instant::now(),
                stage_names,
                shards: Mutex::new(Vec::new()),
                next_tid: AtomicU16::new(0),
            }),
        }
    }

    /// The recording mode.
    #[must_use]
    pub fn mode(&self) -> TraceMode {
        self.inner.mode
    }

    /// Whether spans are being kept at all. Callers can skip building span
    /// inputs (e.g. reading the clock) when this is false.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.mode != TraceMode::Off
    }

    /// Nanoseconds since the collector epoch — the timebase of every span.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        let d = self.inner.epoch.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }

    /// The calling thread's shard for this collector, creating and
    /// registering it on first use.
    fn shard(&self) -> Option<Arc<Shard>> {
        TLS_SHARDS.with(|tls| {
            let mut tls = tls.borrow_mut();
            for (id, weak) in tls.iter() {
                if *id == self.inner.id {
                    return weak.upgrade();
                }
            }
            // First record from this thread: build its shard.
            tls.retain(|(_, w)| w.strong_count() > 0);
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed);
            let shard = Arc::new(Shard {
                tid,
                thread_name: std::thread::current()
                    .name()
                    .unwrap_or("worker")
                    .to_string(),
                ring: match self.inner.mode {
                    TraceMode::Ring(cap) => Some(SpanRing::new(cap)),
                    _ => None,
                },
                full: match self.inner.mode {
                    TraceMode::Full => Some(Mutex::new(Vec::new())),
                    _ => None,
                },
                recorded: AtomicU64::new(0),
            });
            self.inner.shards.lock().push(Arc::clone(&shard));
            tls.push((self.inner.id, Arc::downgrade(&shard)));
            Some(shard)
        })
    }

    /// Record one span. In [`TraceMode::Off`] this returns after a single
    /// compare; otherwise it lands in the calling thread's shard.
    pub fn record(&self, span: Span) {
        if self.inner.mode == TraceMode::Off {
            return;
        }
        if let Some(shard) = self.shard() {
            shard.record(span.pack());
        }
    }

    /// Record a duration span from explicit epoch-relative endpoints.
    pub fn span(
        &self,
        kind: SpanKind,
        stage: u8,
        frame: u64,
        chunk: Option<(u16, u16)>,
        start_ns: u64,
        end_ns: u64,
    ) {
        if self.inner.mode == TraceMode::Off {
            return;
        }
        self.record(Span {
            kind,
            stage,
            frame,
            chunk,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            tid: 0,
        });
    }

    /// Record an instantaneous event stamped now.
    pub fn instant(&self, kind: SpanKind, stage: u8, frame: u64, chunk: Option<(u16, u16)>) {
        if self.inner.mode == TraceMode::Off {
            return;
        }
        let now = self.now_ns();
        self.record(Span {
            kind,
            stage,
            frame,
            chunk,
            start_ns: now,
            dur_ns: 0,
            tid: 0,
        });
    }

    /// Snapshot everything recorded so far into a [`SpanDump`], sorted by
    /// start time. Intended for end-of-run analysis (after the executor has
    /// joined its task threads); a mid-run drain is safe but may discard
    /// ring slots the writers are concurrently overwriting.
    #[must_use]
    pub fn drain(&self) -> SpanDump {
        let shards = self.inner.shards.lock();
        let mut spans = Vec::new();
        let mut recorded = 0u64;
        let mut evicted = 0u64;
        let mut threads = Vec::new();
        for shard in shards.iter() {
            recorded += shard.recorded.load(Ordering::SeqCst);
            threads.push((shard.tid, shard.thread_name.clone()));
            if let Some(ring) = &shard.ring {
                let (words, ev) = ring.drain();
                evicted += ev;
                spans.extend(words.into_iter().filter_map(|w| Span::unpack(w, shard.tid)));
            } else if let Some(full) = &shard.full {
                spans.extend(
                    full.lock()
                        .iter()
                        .filter_map(|&w| Span::unpack(w, shard.tid)),
                );
            }
        }
        threads.sort();
        spans.sort_by_key(|s| (s.start_ns, s.tid, s.frame));
        SpanDump {
            mode: self.inner.mode,
            stage_names: self.inner.stage_names.clone(),
            spans,
            recorded,
            evicted,
            threads,
        }
    }
}

/// A drained snapshot of every shard: the raw material for frame
/// reconstruction, Chrome export, and conformance checking.
#[derive(Clone, Debug)]
pub struct SpanDump {
    /// The mode the spans were recorded under.
    pub mode: TraceMode,
    /// Stage index → display name.
    pub stage_names: Vec<String>,
    /// All retained spans, sorted by start time.
    pub spans: Vec<Span>,
    /// Total spans ever recorded (≥ `spans.len()`).
    pub recorded: u64,
    /// Ring-mode drop-oldest victims (0 in `Full` mode).
    pub evicted: u64,
    /// Shard id → thread name, sorted by id.
    pub threads: Vec<(u16, String)>,
}

impl SpanDump {
    /// The display name of stage `idx` (a stable fallback otherwise).
    #[must_use]
    pub fn stage_name(&self, idx: u8) -> &str {
        self.stage_names
            .get(idx as usize)
            .map_or("stage?", String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, frame: u64, start: u64, dur: u64) -> Span {
        Span {
            kind,
            stage: 1,
            frame,
            chunk: None,
            start_ns: start,
            dur_ns: dur,
            tid: 0,
        }
    }

    #[test]
    fn pack_roundtrips_all_fields() {
        let s = Span {
            kind: SpanKind::PoolChunk,
            stage: 3,
            frame: 123_456_789,
            chunk: Some((7, 12)),
            start_ns: 42,
            dur_ns: 1_000_000,
            tid: 2,
        };
        assert_eq!(Span::unpack(s.pack(), 2), Some(s));
        let none = span(SpanKind::Commit, 5, 10, 0);
        assert_eq!(Span::unpack(none.pack(), 0), Some(none));
    }

    #[test]
    fn off_mode_records_nothing() {
        let r = Recorder::new(TraceMode::Off, vec!["a".into()]);
        r.record(span(SpanKind::Compute, 0, 0, 10));
        r.instant(SpanKind::Commit, 0, 0, None);
        let d = r.drain();
        assert!(d.spans.is_empty());
        assert_eq!(d.recorded, 0);
    }

    #[test]
    fn full_mode_keeps_everything() {
        let r = Recorder::new(TraceMode::Full, vec!["a".into(), "b".into()]);
        for f in 0..100u64 {
            r.record(span(SpanKind::Compute, f, f * 10, 5));
        }
        let d = r.drain();
        assert_eq!(d.spans.len(), 100);
        assert_eq!(d.recorded, 100);
        assert_eq!(d.evicted, 0);
        assert!(d.spans.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(d.stage_name(1), "b");
        assert_eq!(d.stage_name(9), "stage?");
    }

    #[test]
    fn ring_mode_drops_oldest() {
        let r = Recorder::new(TraceMode::Ring(16), vec![]);
        for f in 0..50u64 {
            r.record(span(SpanKind::Compute, f, f, 1));
        }
        let d = r.drain();
        assert_eq!(d.spans.len(), 16);
        assert_eq!(d.recorded, 50);
        assert_eq!(d.evicted, 34);
        let frames: Vec<u64> = d.spans.iter().map(|s| s.frame).collect();
        assert_eq!(frames, (34..50).collect::<Vec<_>>());
    }

    #[test]
    fn spans_from_many_threads_land_in_private_shards() {
        let r = Recorder::new(TraceMode::Ring(64), vec![]);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = r.clone();
                s.spawn(move || {
                    for f in 0..32u64 {
                        r.record(span(SpanKind::Compute, t * 100 + f, f, 1));
                    }
                });
            }
        });
        let d = r.drain();
        assert_eq!(d.recorded, 128);
        assert_eq!(d.spans.len(), 128, "64-cap rings never wrapped");
        assert_eq!(d.threads.len(), 4);
        let tids: std::collections::BTreeSet<u16> = d.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn concurrent_drain_never_yields_torn_spans() {
        // A writer hammers a tiny ring while a reader drains repeatedly:
        // every span the reader sees must be one the writer actually wrote
        // (frame == start_ns is the witness invariant).
        let r = Recorder::new(TraceMode::Ring(8), vec![]);
        std::thread::scope(|s| {
            let w = r.clone();
            s.spawn(move || {
                for f in 0..20_000u64 {
                    w.record(Span {
                        kind: SpanKind::Compute,
                        stage: 0,
                        frame: f,
                        chunk: None,
                        start_ns: f,
                        dur_ns: 2 * f,
                        tid: 0,
                    });
                }
            });
            for _ in 0..200 {
                for sp in r.drain().spans {
                    assert_eq!(sp.frame, sp.start_ns, "torn span");
                    assert_eq!(sp.dur_ns, 2 * sp.frame, "torn span");
                }
            }
        });
    }

    #[test]
    fn ring_capacity_floor_is_one() {
        let ring = SpanRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push([1, 2, 3, 4]);
        ring.push([5, 6, 7, 8]);
        let (spans, evicted) = ring.drain();
        assert_eq!(spans, vec![[5, 6, 7, 8]]);
        assert_eq!(evicted, 1);
        assert_eq!(ring.pushed(), 2);
    }

    #[test]
    fn now_ns_is_monotone() {
        let r = Recorder::new(TraceMode::Full, vec![]);
        let a = r.now_ns();
        let b = r.now_ns();
        assert!(b >= a);
    }
}
