//! The `CDSREC01` columnar recording format.
//!
//! A [`Recording`] holds one run's replay inputs as sorted parallel
//! columns — the same layout discipline as the STM columnar store, applied
//! to a file: each event family (frames, skips, commits, switches) is a
//! count followed by its rows in canonical order, all integers
//! little-endian. Canonical ordering makes encoding a pure function of
//! content: two recordings with equal events serialize byte-identically,
//! which is what lets CI assert replay determinism by comparing files.

use std::io;
use std::path::Path;

use obs::ChromeTrace;

/// File magic: format name + version.
pub const MAGIC: &[u8; 8] = b"CDSREC01";

/// Everything needed to rebuild the run's configuration: scene parameters,
/// frame budget, pacing, and the schedule-relevant knobs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Scene seed.
    pub seed: u64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Targets in the scene (and enrolled models).
    pub n_targets: u32,
    /// Frames the run was asked to process.
    pub n_frames: u64,
    /// Digitizer period in nanoseconds (replay ignores it — no pacing).
    pub period_ns: u64,
    /// STM channel capacity.
    pub channel_capacity: u32,
    /// Fixed `(FP, MP)` decomposition.
    pub decomp: (u32, u32),
    /// Peak-detection threshold, as IEEE-754 bits (exact round-trip).
    pub min_score_bits: u32,
    /// Worker-pool width of the recorded run.
    pub pool_workers: u32,
}

impl Header {
    /// Bytes of one frame payload (`width × height × 3`).
    #[must_use]
    pub fn frame_bytes(&self) -> usize {
        self.width as usize * self.height as usize * 3
    }
}

/// One run's recorded nondeterminism, in canonical (sorted) column order.
#[derive(Clone, PartialEq, Debug)]
pub struct Recording {
    /// Run configuration.
    pub header: Header,
    /// `(ts, pixels)` per digitized frame, sorted by `ts`. Pixels are the
    /// frame's interleaved RGB bytes, `header.frame_bytes()` long.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// `(stage index, ts)` per skip any stage recorded, sorted.
    pub skips: Vec<(u8, u64)>,
    /// `(ts, detected count, location hash)` per sink commit, sorted by
    /// `ts`. The hash is [`crate::location_hash`] over the frame's model
    /// locations — the bit-identity witness replay is checked against.
    pub commits: Vec<(u64, u32, u64)>,
    /// `(observation ordinal, regime)` per confirmed regime switch, sorted.
    pub switches: Vec<(u64, u32)>,
}

/// Why a byte stream failed to parse as a [`Recording`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FormatError {
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The stream ended before a declared column did.
    Truncated,
    /// A declared count is impossibly large for the remaining bytes.
    BadCount,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not a CDSREC01 recording"),
            FormatError::Truncated => write!(f, "recording truncated"),
            FormatError::BadCount => write!(f, "recording declares an impossible column length"),
        }
    }
}

impl std::error::Error for FormatError {}

/// Little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FormatError> {
        let end = self.pos.checked_add(n).ok_or(FormatError::BadCount)?;
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or(FormatError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, FormatError> {
        let b = self.take(8)?;
        // INVARIANT: take(8) returned exactly 8 bytes or erred above.
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn u32(&mut self) -> Result<u32, FormatError> {
        let b = self.take(4)?;
        // INVARIANT: take(4) returned exactly 4 bytes or erred above.
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u8(&mut self) -> Result<u8, FormatError> {
        Ok(self.take(1)?[0])
    }

    /// A column length, sanity-bounded by the bytes that could hold it.
    fn count(&mut self, min_row: usize) -> Result<usize, FormatError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) / min_row.max(1);
        if n as usize > remaining {
            return Err(FormatError::BadCount);
        }
        Ok(n as usize)
    }
}

impl Recording {
    /// Serialize to the canonical `CDSREC01` byte image. Columns are
    /// re-sorted on encode, so equal content ⇒ equal bytes regardless of
    /// the order events were recorded in.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let h = &self.header;
        let mut out = Vec::with_capacity(
            64 + self.frames.len() * (8 + h.frame_bytes())
                + self.skips.len() * 9
                + self.commits.len() * 20
                + self.switches.len() * 12,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&h.seed.to_le_bytes());
        out.extend_from_slice(&h.width.to_le_bytes());
        out.extend_from_slice(&h.height.to_le_bytes());
        out.extend_from_slice(&h.n_targets.to_le_bytes());
        out.extend_from_slice(&h.n_frames.to_le_bytes());
        out.extend_from_slice(&h.period_ns.to_le_bytes());
        out.extend_from_slice(&h.channel_capacity.to_le_bytes());
        out.extend_from_slice(&h.decomp.0.to_le_bytes());
        out.extend_from_slice(&h.decomp.1.to_le_bytes());
        out.extend_from_slice(&h.min_score_bits.to_le_bytes());
        out.extend_from_slice(&h.pool_workers.to_le_bytes());

        let mut frames: Vec<&(u64, Vec<u8>)> = self.frames.iter().collect();
        frames.sort_by_key(|(ts, _)| *ts);
        out.extend_from_slice(&(frames.len() as u64).to_le_bytes());
        for (ts, px) in frames {
            out.extend_from_slice(&ts.to_le_bytes());
            out.extend_from_slice(px);
        }

        let mut skips = self.skips.clone();
        skips.sort_unstable();
        out.extend_from_slice(&(skips.len() as u64).to_le_bytes());
        for (stage, ts) in skips {
            out.push(stage);
            out.extend_from_slice(&ts.to_le_bytes());
        }

        let mut commits = self.commits.clone();
        commits.sort_unstable();
        out.extend_from_slice(&(commits.len() as u64).to_le_bytes());
        for (ts, count, hash) in commits {
            out.extend_from_slice(&ts.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&hash.to_le_bytes());
        }

        let mut switches = self.switches.clone();
        switches.sort_unstable();
        out.extend_from_slice(&(switches.len() as u64).to_le_bytes());
        for (ordinal, regime) in switches {
            out.extend_from_slice(&ordinal.to_le_bytes());
            out.extend_from_slice(&regime.to_le_bytes());
        }
        out
    }

    /// Parse a `CDSREC01` byte image.
    ///
    /// # Errors
    ///
    /// [`FormatError`] when the magic, a count, or a column is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Recording, FormatError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(FormatError::BadMagic);
        }
        let header = Header {
            seed: r.u64()?,
            width: r.u32()?,
            height: r.u32()?,
            n_targets: r.u32()?,
            n_frames: r.u64()?,
            period_ns: r.u64()?,
            channel_capacity: r.u32()?,
            decomp: (r.u32()?, r.u32()?),
            min_score_bits: r.u32()?,
            pool_workers: r.u32()?,
        };
        let px_len = header.frame_bytes();
        let n = r.count(8 + px_len)?;
        let mut frames = Vec::with_capacity(n);
        for _ in 0..n {
            let ts = r.u64()?;
            frames.push((ts, r.take(px_len)?.to_vec()));
        }
        let n = r.count(9)?;
        let mut skips = Vec::with_capacity(n);
        for _ in 0..n {
            let stage = r.u8()?;
            skips.push((stage, r.u64()?));
        }
        let n = r.count(20)?;
        let mut commits = Vec::with_capacity(n);
        for _ in 0..n {
            commits.push((r.u64()?, r.u32()?, r.u64()?));
        }
        let n = r.count(12)?;
        let mut switches = Vec::with_capacity(n);
        for _ in 0..n {
            switches.push((r.u64()?, r.u32()?));
        }
        Ok(Recording {
            header,
            frames,
            skips,
            commits,
            switches,
        })
    }

    /// Write the canonical byte image to `path`, creating parent dirs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_bytes())
    }

    /// Read a recording back from `path`.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or [`FormatError`] wrapped as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_from(path: &Path) -> io::Result<Recording> {
        let bytes = std::fs::read(path)?;
        Recording::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// A Chrome trace of this recording in **virtual time**: frame `ts`
    /// lives at `ts` milliseconds, with digitize/skip/commit instants at
    /// fixed sub-frame offsets. No wall clock is consulted, so the JSON is
    /// a pure function of the recording — two replays that re-record the
    /// same events render byte-identical traces, which is the determinism
    /// artifact CI compares. `stage_names` maps skip stage indices to lane
    /// labels.
    #[must_use]
    pub fn canonical_trace_json(&self, stage_names: &[String]) -> String {
        let stage = |idx: u8| -> &str {
            stage_names
                .get(idx as usize)
                .map_or("stage?", String::as_str)
        };
        let mut t = ChromeTrace::new();
        t.set_process_name(0, "replay (virtual time)");
        t.set_thread_name(0, 0, "frames");
        let at = |ts: u64, off: f64| ts as f64 * 1_000.0 + off;
        for (ts, _) in &self.frames {
            t.instant("digitize", "frame", 0, 0, at(*ts, 0.0), Some(*ts));
        }
        for (stage_idx, ts) in &self.skips {
            t.instant(
                &format!("skip @ {}", stage(*stage_idx)),
                "frame",
                0,
                0,
                at(*ts, 1.0 + f64::from(*stage_idx)),
                Some(*ts),
            );
        }
        for (ts, count, _) in &self.commits {
            t.instant(
                &format!("commit n={count}"),
                "frame",
                0,
                0,
                at(*ts, 500.0),
                Some(*ts),
            );
        }
        for (ordinal, regime) in &self.switches {
            t.instant(
                &format!("regime switch \u{2192} {regime}"),
                "regime",
                0,
                0,
                at(*ordinal, 900.0),
                Some(*ordinal),
            );
        }
        t.to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Recording {
        let header = Header {
            seed: 7,
            width: 2,
            height: 1,
            n_targets: 1,
            n_frames: 3,
            period_ns: 1_000_000,
            channel_capacity: 8,
            decomp: (2, 1),
            min_score_bits: 5.0f32.to_bits(),
            pool_workers: 0,
        };
        Recording {
            header,
            frames: vec![(0, vec![1; 6]), (2, vec![3; 6])],
            skips: vec![(1, 1), (4, 1)],
            commits: vec![(0, 1, 0xDEAD), (2, 0, 0xBEEF)],
            switches: vec![(5, 2)],
        }
    }

    #[test]
    fn bytes_round_trip() {
        let rec = sample();
        let bytes = rec.to_bytes();
        assert_eq!(Recording::from_bytes(&bytes), Ok(rec));
    }

    #[test]
    fn encode_is_canonical_under_event_order() {
        let rec = sample();
        let mut shuffled = rec.clone();
        shuffled.frames.reverse();
        shuffled.skips.reverse();
        shuffled.commits.reverse();
        assert_eq!(rec.to_bytes(), shuffled.to_bytes());
    }

    #[test]
    fn parse_rejects_garbage_and_truncation() {
        assert_eq!(
            Recording::from_bytes(b"NOTAREC1rest"),
            Err(FormatError::BadMagic)
        );
        let bytes = sample().to_bytes();
        // Cut mid-header: the reader runs off the end of the slice.
        assert_eq!(
            Recording::from_bytes(&bytes[..40]),
            Err(FormatError::Truncated)
        );
        // Cut mid-column: the declared count no longer fits the bytes.
        assert!(Recording::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Corrupt the frame count into something impossible.
        let mut bad = bytes.clone();
        let count_at = 8 + 8 + 4 + 4 + 4 + 8 + 8 + 4 + 4 + 4 + 4 + 4;
        bad[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Recording::from_bytes(&bad), Err(FormatError::BadCount));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("cds-replay-fmt-test");
        let path = dir.join("run.cdsrec");
        let rec = sample();
        rec.write_to(&path).unwrap();
        assert_eq!(Recording::read_from(&path).unwrap(), rec);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canonical_trace_is_valid_and_deterministic() {
        let rec = sample();
        let names: Vec<String> = ["Digitizer", "Histogram"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let a = rec.canonical_trace_json(&names);
        let b = rec.canonical_trace_json(&names);
        assert_eq!(a, b);
        let n = obs::chrome::validate(&a).expect("valid Chrome JSON");
        // 2 metadata + 2 digitize + 2 skips + 2 commits + 1 switch.
        assert_eq!(n, 9);
        assert!(a.contains("skip @ Histogram"));
        assert!(
            a.contains("skip @ stage?"),
            "unknown stage index falls back"
        );
    }
}
