//! # Deterministic record/replay for the live tracker pipeline
//!
//! A live run's output is a deterministic function of a small set of
//! nondeterministic inputs: the digitized frames, the set of frames each
//! stage skipped (deadline timeouts, injected faults, load sheds), and the
//! order the sink's observations reached the regime controller. This crate
//! captures exactly that set at the channel boundary into a compact
//! columnar [`Recording`], and provides the [`ReplaySource`] that re-drives
//! the *real* pipeline from it — same task bodies, same STM channels, same
//! kernels — with every timing-dependent decision pinned to what the live
//! run did.
//!
//! Replayability rests on three properties the runtime already guarantees:
//!
//! * every compute stage is a pure function of its STM inputs (kernels are
//!   bit-identical across decompositions, strip counts, and backends);
//! * all nondeterminism enters through the [`StageCtx`] funnel — input
//!   skips and digitizer output are the only timing-dependent events;
//! * the sink settles frames in timestamp order, so the controller's
//!   observation sequence is determined by which frames committed.
//!
//! So a replay that (a) feeds the recorded frames without pacing, (b)
//! re-injects the recorded skips at their `(stage, frame)` coordinates, and
//! (c) runs with the deadline watchdog off produces bit-identical commits —
//! verified per frame by an FNV-64 hash over the model locations.
//!
//! The [`Recording`] serializes to a columnar log (`CDSREC01`): sorted
//! parallel columns per event family, so the file is a direct image of the
//! STM store's bucketed layout and two encodes of equal content are
//! byte-identical — the determinism witness CI checks.
//!
//! `StageCtx` lives in the `runtime` crate (which depends on this one);
//! the integration points are [`RecordTap`] (live side) and
//! [`ReplaySource`] (replay side).
//!
//! [`StageCtx`]: https://docs.rs/runtime

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod format;
pub mod tap;

pub use format::{FormatError, Header, Recording};
pub use tap::{fnv64, location_hash, RecordTap, ReplaySource};
