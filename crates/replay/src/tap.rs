//! The runtime-facing halves: [`RecordTap`] collects a live run's events,
//! [`ReplaySource`] feeds a replayed one.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use vision::{Frame, ModelLocation};

use crate::format::{Header, Recording};

/// FNV-1a 64-bit over a byte slice — the dependency-free content hash used
/// for frame payloads and model locations.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A content hash over one frame's model locations: every field that the
/// sink logs, in order, with `f32` scores hashed by their exact bit
/// patterns. Two location vectors hash equal iff the sink's outputs are
/// bit-identical — the per-frame replay witness.
#[must_use]
pub fn location_hash(locs: &[ModelLocation]) -> u64 {
    let mut bytes = Vec::with_capacity(locs.len() * 29);
    for l in locs {
        bytes.extend_from_slice(&(l.model as u64).to_le_bytes());
        bytes.extend_from_slice(&(l.x as u64).to_le_bytes());
        bytes.extend_from_slice(&(l.y as u64).to_le_bytes());
        bytes.extend_from_slice(&l.score.to_bits().to_le_bytes());
        bytes.push(u8::from(l.detected));
    }
    fnv64(&bytes)
}

/// The live-side collector every stage's context carries during a recorded
/// run. Thread-safe: stages record concurrently; columns are sorted into
/// canonical order when the recording is assembled. Skips dedup through a
/// set — one `(stage, frame)` coordinate records once no matter how many
/// paths observe it.
#[derive(Default)]
pub struct RecordTap {
    frames: Mutex<Vec<(u64, Vec<u8>)>>,
    skips: Mutex<BTreeSet<(u8, u64)>>,
    commits: Mutex<Vec<(u64, u32, u64)>>,
}

impl std::fmt::Debug for RecordTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecordTap(frames={}, skips={}, commits={})",
            self.frames.lock().len(),
            self.skips.lock().len(),
            self.commits.lock().len()
        )
    }
}

impl RecordTap {
    /// An empty tap.
    #[must_use]
    pub fn new() -> RecordTap {
        RecordTap::default()
    }

    /// Record one digitized frame's pixels.
    pub fn record_frame(&self, ts: u64, frame: &Frame) {
        self.frames.lock().push((ts, frame.bytes().to_vec()));
    }

    /// Record that `stage` skipped frame `ts`.
    pub fn record_skip(&self, stage: u8, ts: u64) {
        self.skips.lock().insert((stage, ts));
    }

    /// Record a sink commit: the frame, its detected count, and the
    /// [`location_hash`] of its model locations.
    pub fn record_commit(&self, ts: u64, count: u32, loc_hash: u64) {
        self.commits.lock().push((ts, count, loc_hash));
    }

    /// Assemble the recording. `switches` is supplied by the driver (it
    /// owns the regime controller's trace); columns are sorted here.
    #[must_use]
    pub fn into_recording(&self, header: Header, switches: Vec<(u64, u32)>) -> Recording {
        let mut frames = self.frames.lock().clone();
        frames.sort_by_key(|(ts, _)| *ts);
        let mut commits = self.commits.lock().clone();
        commits.sort_unstable();
        let mut switches = switches;
        switches.sort_unstable();
        Recording {
            header,
            frames,
            skips: self.skips.lock().iter().copied().collect(),
            commits,
            switches,
        }
    }
}

/// The replay-side frame source: the digitizer, instead of rendering and
/// pacing, asks this for each timestamp — recorded pixels are played back,
/// recorded digitizer skips are re-marked, and everything else (frames the
/// recorded run never produced) is treated as a skip.
pub struct ReplaySource {
    frames: HashMap<u64, Arc<Vec<u8>>>,
    skips: BTreeSet<u64>,
    width: usize,
    height: usize,
}

impl std::fmt::Debug for ReplaySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReplaySource(frames={}, skips={})",
            self.frames.len(),
            self.skips.len()
        )
    }
}

impl ReplaySource {
    /// Build the source from a recording. `digitizer_stage` is the stage
    /// index whose recorded skips belong to the digitizer (downstream
    /// skips are replayed by fault injection instead, so the source keeps
    /// only its own).
    #[must_use]
    pub fn new(rec: &Recording, digitizer_stage: u8) -> ReplaySource {
        ReplaySource {
            frames: rec
                .frames
                .iter()
                .map(|(ts, px)| (*ts, Arc::new(px.clone())))
                .collect(),
            skips: rec
                .skips
                .iter()
                .filter(|(stage, _)| *stage == digitizer_stage)
                .map(|(_, ts)| *ts)
                .collect(),
            width: rec.header.width as usize,
            height: rec.header.height as usize,
        }
    }

    /// Whether the recorded digitizer skipped frame `ts`.
    #[must_use]
    pub fn is_skipped(&self, ts: u64) -> bool {
        self.skips.contains(&ts)
    }

    /// Play frame `ts` back into `buf` (a recycled buffer of the recorded
    /// dimensions). `false` when the recording has no such frame — the
    /// replayed digitizer skips it.
    #[must_use]
    pub fn play_into(&self, ts: u64, buf: &mut Frame) -> bool {
        let Some(px) = self.frames.get(&ts) else {
            return false;
        };
        assert_eq!(
            (buf.width, buf.height),
            (self.width, self.height),
            "replay buffer dimensions must match the recording"
        );
        buf.copy_from_bytes(px);
        true
    }

    /// Recorded frame dimensions `(width, height)`.
    #[must_use]
    pub fn dimensions(&self) -> (usize, usize) {
        (self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_and_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"frame"), fnv64(b"frame"));
    }

    #[test]
    fn location_hash_sees_every_field() {
        let base = ModelLocation {
            model: 0,
            x: 3,
            y: 4,
            score: 1.5,
            detected: true,
        };
        let h = location_hash(&[base]);
        for tweak in [
            ModelLocation { model: 1, ..base },
            ModelLocation { x: 5, ..base },
            ModelLocation { y: 5, ..base },
            ModelLocation {
                score: 1.5000001,
                ..base
            },
            ModelLocation {
                detected: false,
                ..base
            },
        ] {
            assert_ne!(location_hash(&[tweak]), h);
        }
        assert_ne!(location_hash(&[]), h);
    }

    #[test]
    fn tap_dedups_skips_and_sorts_columns() {
        let tap = RecordTap::new();
        let mut f = Frame::new(2, 1);
        f.set_pixel(0, 0, [9, 9, 9]);
        tap.record_frame(1, &f);
        tap.record_frame(0, &f);
        tap.record_skip(2, 5);
        tap.record_skip(2, 5);
        tap.record_skip(1, 5);
        tap.record_commit(1, 2, 42);
        tap.record_commit(0, 1, 41);
        let header = Header {
            seed: 0,
            width: 2,
            height: 1,
            n_targets: 1,
            n_frames: 2,
            period_ns: 0,
            channel_capacity: 8,
            decomp: (1, 1),
            min_score_bits: 0,
            pool_workers: 0,
        };
        let rec = tap.into_recording(header, vec![(3, 1), (1, 2)]);
        assert_eq!(
            rec.frames.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            [0, 1]
        );
        assert_eq!(rec.skips, vec![(1, 5), (2, 5)]);
        assert_eq!(rec.commits, vec![(0, 1, 41), (1, 2, 42)]);
        assert_eq!(rec.switches, vec![(1, 2), (3, 1)]);
    }

    #[test]
    fn source_plays_frames_and_keeps_only_digitizer_skips() {
        let mut f = Frame::new(2, 1);
        f.set_pixel(1, 0, [1, 2, 3]);
        let header = Header {
            seed: 0,
            width: 2,
            height: 1,
            n_targets: 1,
            n_frames: 3,
            period_ns: 0,
            channel_capacity: 8,
            decomp: (1, 1),
            min_score_bits: 0,
            pool_workers: 0,
        };
        let rec = Recording {
            header,
            frames: vec![(0, f.bytes().to_vec())],
            skips: vec![(0, 1), (3, 2)],
            commits: vec![],
            switches: vec![],
        };
        let src = ReplaySource::new(&rec, 0);
        assert!(src.is_skipped(1), "digitizer skip kept");
        assert!(!src.is_skipped(2), "downstream skip excluded");
        let mut buf = Frame::new(2, 1);
        assert!(src.play_into(0, &mut buf));
        assert_eq!(buf.pixel(1, 0), [1, 2, 3]);
        assert!(!src.play_into(9, &mut buf), "unrecorded frame");
    }
}
