//! The adaptation loop: drift-triggered online re-scheduling.
//!
//! PR 5's conformance checker could *tell* you, after a run, that measured
//! per-stage costs had drifted away from the schedule's predictions. This
//! module closes the loop at run time:
//!
//! 1. **Measure** — every stage body reports its compute wall time into a
//!    lock-free [`CostFeed`] (two relaxed atomic adds per frame per stage;
//!    nothing allocated, nothing locked).
//! 2. **Calibrate** — every [`AdaptConfig::window`] frames the loop drains
//!    the feed and runs [`obs::calibrate_stages`]: the median
//!    measured/predicted ratio across stages is the clock calibration, and
//!    a stage whose calibrated ratio strays beyond
//!    [`AdaptConfig::tolerance`] is *drifting*.
//! 3. **Re-search** — after [`AdaptConfig::confirm_windows`] consecutive
//!    drifting windows (hysteresis, mirroring the regime detector's
//!    debounce), the loop clones the task graph, rescales the drifting
//!    stages' cost models to measured reality
//!    ([`taskgraph::TaskGraph::with_scaled_cost`]), and launches
//!    [`cds_core::optimal::optimal_schedule_warm`] on the shared
//!    [`WorkerPool`] — warm-started from the incumbent schedule so the
//!    branch-and-bound prunes against a real latency from the first node.
//! 4. **Swap** — when the search lands, the new schedule is grafted into
//!    the controller via [`RegimeController::install_regime`]: one atomic
//!    publish under a fresh generation, *between* frames (the sink drives
//!    [`AdaptLoop::on_frame`] after each commit), never mid-frame.
//!
//! The same machinery synthesizes regimes the offline table never
//! anticipated: a confirmed out-of-table state parks itself in the
//! controller's synthesis mailbox
//! ([`RegimeController::pending_synthesis`]); the loop answers it with a
//! search against the *original* (unscaled) graph, and persists the result
//! through the PR 1 [`ScheduleCache`] under the exact key a process restart
//! will look up — so a regime learned online survives the process.
//!
//! Drift-triggered re-searches run against a *rescaled* graph — and persist
//! under the **rescaled graph's own cache key**: the permille cost vector is
//! part of the key fingerprint, so a restart that confirms the same
//! sustained drift re-derives the same rescaled graph, computes the same
//! key, and is served the re-fit warm (validated against that identical
//! rescaled graph). A restart whose costs went back to normal computes the
//! *original* key and can never be served the drifted schedule — the
//! validate-on-load safety that previously forced "never persist" is now
//! carried by the key itself.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use cds_core::optimal::{optimal_schedule_warm, OptimalConfig};
use cds_core::persist::{schedule_cache_key, ScheduleCache};
use cds_core::schedule::PipelinedSchedule;
use cds_core::table::ScheduleTable;
use cluster::ClusterSpec;
use obs::{calibrate_stages, Recorder, SpanKind};
use taskgraph::{AppState, TaskGraph, TaskId};

use crate::error::Stage;
use crate::pool::WorkerPool;
use crate::regime_rt::RegimeController;
use crate::tasks::PoolJob;

/// Tuning knobs of the adaptation loop.
#[derive(Clone, Debug)]
pub struct AdaptConfig {
    /// Calibrated drift tolerance: a stage whose measured/predicted ratio
    /// (after median calibration) strays more than this from 1.0 counts as
    /// drifting. Matches the conformance checker's tolerance semantics.
    pub tolerance: f64,
    /// Frames per evaluation window: the feed is drained and calibrated
    /// once every this many frames.
    pub window: u64,
    /// Consecutive drifting windows required before a re-search launches
    /// (hysteresis — one noisy window must not trigger a search).
    pub confirm_windows: u32,
    /// Minimum frames between two drift-triggered launches.
    pub cooldown_frames: u64,
    /// Branch-and-bound configuration for background re-searches. Serial by
    /// default: one search occupies one pool worker, not the whole machine.
    pub search: OptimalConfig,
    /// Directory of the persistent schedule cache; synthesized regimes are
    /// stored here so they survive a process restart. `None` disables
    /// persistence.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            tolerance: 0.5,
            window: 16,
            confirm_windows: 2,
            cooldown_frames: 64,
            search: OptimalConfig::default().serial(),
            cache_dir: None,
        }
    }
}

/// Lock-free per-stage cost accumulator: stage bodies add their compute
/// wall time per frame; the adaptation loop drains window means.
///
/// `take` swaps the counters non-atomically with respect to each other, so
/// a sample landing exactly during a drain may split its count and sum
/// across two windows — at a window of 16+ frames this biases a mean by at
/// most one sample and is harmless for drift detection.
pub struct CostFeed {
    sums_ns: Vec<AtomicU64>,
    counts: Vec<AtomicU64>,
    chunk_sums_ns: Vec<AtomicU64>,
    chunk_counts: Vec<AtomicU64>,
}

impl CostFeed {
    /// A feed for `n_stages` pipeline stages.
    #[must_use]
    pub fn new(n_stages: usize) -> Self {
        CostFeed {
            sums_ns: (0..n_stages).map(|_| AtomicU64::new(0)).collect(),
            counts: (0..n_stages).map(|_| AtomicU64::new(0)).collect(),
            chunk_sums_ns: (0..n_stages).map(|_| AtomicU64::new(0)).collect(),
            chunk_counts: (0..n_stages).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Report one frame's compute wall time for `stage`.
    pub fn record(&self, stage: usize, wall_ns: u64) {
        if let (Some(s), Some(c)) = (self.sums_ns.get(stage), self.counts.get(stage)) {
            s.fetch_add(wall_ns, Ordering::Relaxed);
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Report one pool chunk's kernel wall time for `stage` (a strip or
    /// detection chunk — finer grain than [`record`](Self::record)'s whole
    /// compute section, the signal chunk-width tuning derives from).
    pub fn record_chunk(&self, stage: usize, wall_ns: u64) {
        if let (Some(s), Some(c)) = (self.chunk_sums_ns.get(stage), self.chunk_counts.get(stage)) {
            s.fetch_add(wall_ns, Ordering::Relaxed);
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drain the window: per-stage `(samples, total_ns)`, resetting both.
    #[must_use]
    pub fn take(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .zip(&self.sums_ns)
            .map(|(c, s)| (c.swap(0, Ordering::Relaxed), s.swap(0, Ordering::Relaxed)))
            .collect()
    }

    /// Drain the per-chunk window: per-stage `(chunks, total_ns)`,
    /// resetting both.
    #[must_use]
    pub fn take_chunks(&self) -> Vec<(u64, u64)> {
        self.chunk_counts
            .iter()
            .zip(&self.chunk_sums_ns)
            .map(|(c, s)| (c.swap(0, Ordering::Relaxed), s.swap(0, Ordering::Relaxed)))
            .collect()
    }
}

/// Mean strip cost (ns) at which the tuner stops narrowing: strips cheaper
/// than this are dominated by submit/join overhead, so the tuner trades
/// parallelism for granularity, exactly the paper's §3.2 chunk-size
/// argument applied online.
pub const TARGET_STRIP_NS: u64 = 200_000;

/// How many pooled frames between strip-count re-derivations.
pub const RETUNE_FRAMES: u64 = 8;

/// Online chunk-width tuning for pooled data-parallel stages: instead of a
/// fixed strip constant, the joiner reports each frame's total measured
/// strip kernel time and the tuner re-derives the strip count every
/// [`RETUNE_FRAMES`] frames as `frame_ns / TARGET_STRIP_NS`, clamped to
/// `[1, max]`. Frames too small to amortize pool dispatch collapse toward
/// serial execution; large frames widen until each strip still carries
/// [`TARGET_STRIP_NS`] of work.
pub struct StripTuner {
    strips: AtomicUsize,
    max: usize,
    frame_ns: AtomicU64,
    frames: AtomicU64,
}

impl StripTuner {
    /// A tuner starting at `initial` strips, never prescribing more than
    /// `max` (both clamped to at least 1).
    #[must_use]
    pub fn new(initial: usize, max: usize) -> Self {
        let max = max.max(1);
        StripTuner {
            strips: AtomicUsize::new(initial.clamp(1, max)),
            max,
            frame_ns: AtomicU64::new(0),
            frames: AtomicU64::new(0),
        }
    }

    /// The strip count currently prescribed.
    #[must_use]
    pub fn strips(&self) -> usize {
        self.strips.load(Ordering::Relaxed)
    }

    /// Report one frame's total measured strip kernel time; every
    /// [`RETUNE_FRAMES`] reports the prescription is re-derived from the
    /// window mean.
    pub fn observe_frame(&self, total_strip_ns: u64) {
        self.frame_ns.fetch_add(total_strip_ns, Ordering::Relaxed);
        let n = self.frames.fetch_add(1, Ordering::Relaxed) + 1;
        if n < RETUNE_FRAMES {
            return;
        }
        let frames = self.frames.swap(0, Ordering::Relaxed);
        let total = self.frame_ns.swap(0, Ordering::Relaxed);
        if frames == 0 {
            return; // another thread raced the drain; its window decides
        }
        let mean = total / frames;
        #[allow(clippy::cast_possible_truncation)]
        let want = (mean / TARGET_STRIP_NS.max(1)) as usize;
        self.strips
            .store(want.clamp(1, self.max), Ordering::Relaxed);
    }
}

/// Why a background search was launched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReschedReason {
    /// Sustained per-stage cost drift against the active schedule.
    Drift,
    /// A confirmed state with no exact schedule-table entry.
    Synthesis,
}

/// A background re-search job: runs the warm-started branch-and-bound on a
/// pool worker (or a detached thread when no pool is attached) and sends
/// the result back to the [`AdaptLoop`] that launched it.
pub struct ReschedJob {
    graph: TaskGraph,
    cluster: ClusterSpec,
    state: AppState,
    cfg: OptimalConfig,
    warm: Option<PipelinedSchedule>,
    persist_key: Option<u64>,
    reason: ReschedReason,
    /// When the drift (or unknown state) was detected — the start of the
    /// detection→swap latency measurement.
    detected: Instant,
    frame: u64,
    reply: Sender<ReschedOutcome>,
}

impl ReschedJob {
    /// Run the search and post the outcome (the loop installs it on the
    /// next frame boundary). A dropped receiver means the run is over;
    /// the result is discarded.
    pub fn run(self) {
        let t0 = Instant::now();
        let res = optimal_schedule_warm(
            &self.graph,
            &self.cluster,
            &self.state,
            &self.cfg,
            self.warm.as_ref(),
        );
        let _ = self.reply.send(ReschedOutcome {
            state: self.state,
            sched: res.best,
            nodes_explored: res.nodes_explored,
            search_time: t0.elapsed(),
            persist_key: self.persist_key,
            reason: self.reason,
            detected: self.detected,
            launch_frame: self.frame,
        });
    }
}

/// What a finished background search hands back for installation.
struct ReschedOutcome {
    state: AppState,
    sched: PipelinedSchedule,
    nodes_explored: u64,
    search_time: Duration,
    persist_key: Option<u64>,
    reason: ReschedReason,
    detected: Instant,
    launch_frame: u64,
}

/// Counters of the adaptation loop, for benches and tests.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct AdaptStats {
    /// Evaluation windows processed.
    pub windows: u64,
    /// Windows in which at least one stage drifted beyond tolerance.
    pub drift_windows: u64,
    /// Background searches launched (drift and synthesis).
    pub launches: u64,
    /// Schedules atomically installed into the controller.
    pub installs: u64,
    /// Detection→swap latency of the most recent install.
    pub last_detect_to_swap: Option<Duration>,
    /// Branch-and-bound nodes explored by the most recent installed search
    /// (0 when the schedule was served from the persistent cache).
    pub last_nodes_explored: u64,
    /// Pure search time of the most recent installed search.
    pub last_search_time: Option<Duration>,
}

/// Per-launch bookkeeping guarded by one small mutex (touched once per
/// frame by the sink, never by stage bodies).
#[derive(Default)]
struct Inner {
    frames: u64,
    streak: u32,
    in_flight: bool,
    last_launch_frame: Option<u64>,
}

/// The controller of the measure → calibrate → re-search → swap cycle.
///
/// Owned by the application wiring; the sink task calls
/// [`on_frame`](Self::on_frame) after every frame it settles, which is the
/// only entry point — everything the loop does happens between frames.
pub struct AdaptLoop {
    cfg: AdaptConfig,
    feed: Arc<CostFeed>,
    controller: Arc<RegimeController>,
    graph: TaskGraph,
    cluster: ClusterSpec,
    dp_task: TaskId,
    table: Mutex<ScheduleTable>,
    cache: Option<ScheduleCache>,
    pool: Mutex<Option<Arc<WorkerPool<PoolJob>>>>,
    recorder: Mutex<Option<Recorder>>,
    tx: Sender<ReschedOutcome>,
    rx: Receiver<ReschedOutcome>,
    inner: Mutex<Inner>,
    windows: AtomicU64,
    drift_windows: AtomicU64,
    launches: AtomicU64,
    installs: AtomicU64,
    last_latency_ns: AtomicU64,
    last_nodes: AtomicU64,
    last_search_ns: AtomicU64,
    has_install: AtomicU32,
}

impl AdaptLoop {
    /// Build the loop around the offline artifacts: the task graph and
    /// cluster the schedules were computed for, the precomputed table, the
    /// data-parallel task whose decomposition regimes control, and the
    /// shared controller the swaps land in.
    #[must_use]
    pub fn new(
        cfg: AdaptConfig,
        graph: TaskGraph,
        cluster: ClusterSpec,
        table: ScheduleTable,
        dp_task: TaskId,
        controller: Arc<RegimeController>,
    ) -> Arc<Self> {
        let cache = cfg
            .cache_dir
            .as_ref()
            .and_then(|dir| ScheduleCache::open(dir.clone()).ok());
        let (tx, rx) = unbounded();
        Arc::new(AdaptLoop {
            feed: Arc::new(CostFeed::new(Stage::ALL.len())),
            cfg,
            controller,
            graph,
            cluster,
            dp_task,
            table: Mutex::new(table),
            cache,
            pool: Mutex::new(None),
            recorder: Mutex::new(None),
            tx,
            rx,
            inner: Mutex::new(Inner::default()),
            windows: AtomicU64::new(0),
            drift_windows: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            last_latency_ns: AtomicU64::new(0),
            last_nodes: AtomicU64::new(0),
            last_search_ns: AtomicU64::new(0),
            has_install: AtomicU32::new(0),
        })
    }

    /// The cost feed stage bodies report into.
    #[must_use]
    pub fn feed(&self) -> Arc<CostFeed> {
        Arc::clone(&self.feed)
    }

    /// Run background searches on this pool (the shared data-parallel
    /// worker pool). Without one, each search runs on a detached thread.
    pub fn attach_pool(&self, pool: Arc<WorkerPool<PoolJob>>) {
        *self.pool.lock() = Some(pool);
    }

    /// Report launch and swap instants ([`SpanKind::Resched`]) into `rec`.
    pub fn attach_recorder(&self, rec: Recorder) {
        *self.recorder.lock() = Some(rec);
    }

    /// The frame-boundary hook: the sink calls this after settling each
    /// frame. Installs any finished searches (the atomic swap), answers
    /// pending regime-synthesis requests, and — once per window — drains
    /// the cost feed and evaluates drift.
    pub fn on_frame(&self, frame: u64) {
        self.drain_results(frame);
        self.poll_synthesis(frame);
        let due = {
            let mut g = self.inner.lock();
            g.frames += 1;
            g.frames.is_multiple_of(self.cfg.window)
        };
        if due {
            self.evaluate(frame);
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> AdaptStats {
        let installed = self.has_install.load(Ordering::SeqCst) != 0;
        AdaptStats {
            windows: self.windows.load(Ordering::SeqCst),
            drift_windows: self.drift_windows.load(Ordering::SeqCst),
            launches: self.launches.load(Ordering::SeqCst),
            installs: self.installs.load(Ordering::SeqCst),
            last_detect_to_swap: installed
                .then(|| Duration::from_nanos(self.last_latency_ns.load(Ordering::SeqCst))),
            last_nodes_explored: self.last_nodes.load(Ordering::SeqCst),
            last_search_time: installed
                .then(|| Duration::from_nanos(self.last_search_ns.load(Ordering::SeqCst))),
        }
    }

    /// The live table's schedule for an `n`-model regime, if one exists
    /// (offline-precomputed or synthesized online).
    #[must_use]
    pub fn schedule_for(&self, n: u32) -> Option<PipelinedSchedule> {
        self.table.lock().get(&AppState::new(n)).cloned()
    }

    /// Install every finished search: graft the schedule into the live
    /// table, swap the controller's regime entry under a fresh generation,
    /// persist synthesized regimes, and leave a swap instant on the trace.
    fn drain_results(&self, frame: u64) {
        while let Ok(out) = self.rx.try_recv() {
            let (fp, mp) = out
                .sched
                .iteration
                .decomp
                .get(&self.dp_task)
                .map_or((1, 1), |d| (d.fp, d.mp));
            let swap = self.controller.install_regime(out.state.n_models, fp, mp);
            self.table.lock().insert(out.state, out.sched.clone());
            if let (Some(cache), Some(key)) = (&self.cache, out.persist_key) {
                // Synthesis results are computed against the original graph,
                // so a restart's cache lookup validates and reuses them. An
                // I/O failure here costs persistence, not correctness.
                let _ = cache.store(key, &out.sched);
            }
            if let Some(r) = self.recorder.lock().as_ref().filter(|r| r.enabled()) {
                r.instant(
                    SpanKind::Resched,
                    Stage::Face.index(),
                    frame,
                    Some((swap.decomp.0 as u16, swap.decomp.1 as u16)),
                );
            }
            self.installs.fetch_add(1, Ordering::SeqCst);
            self.last_latency_ns.store(
                u64::try_from(out.detected.elapsed().as_nanos()).unwrap_or(u64::MAX),
                Ordering::SeqCst,
            );
            self.last_nodes.store(out.nodes_explored, Ordering::SeqCst);
            self.last_search_ns.store(
                u64::try_from(out.search_time.as_nanos()).unwrap_or(u64::MAX),
                Ordering::SeqCst,
            );
            self.has_install.store(1, Ordering::SeqCst);
            let _ = (out.reason, out.launch_frame);
            self.inner.lock().in_flight = false;
        }
    }

    /// Answer the controller's synthesis mailbox: an unknown regime gets a
    /// schedule from the persistent cache when one survives from an earlier
    /// process, else a warm-started search against the *original* graph.
    fn poll_synthesis(&self, frame: u64) {
        let Some(n) = self.controller.pending_synthesis() else {
            return;
        };
        {
            let mut g = self.inner.lock();
            if g.in_flight {
                return;
            }
            g.in_flight = true;
        }
        let state = AppState::new(n);
        let key = schedule_cache_key(&self.graph, &self.cluster, &state, &self.cfg.search);
        if let Some(cache) = &self.cache {
            if let Ok(sched) = cache.load(key, &self.graph, &self.cluster, &state) {
                // A regime synthesized by a previous process: no search
                // needed. Route through the normal install path (the send
                // can only fail if we dropped our own receiver).
                let _ = self.tx.send(ReschedOutcome {
                    state,
                    sched,
                    nodes_explored: 0,
                    search_time: Duration::ZERO,
                    persist_key: None,
                    reason: ReschedReason::Synthesis,
                    detected: Instant::now(),
                    launch_frame: frame,
                });
                return;
            }
        }
        let warm = self.warm_for(&state);
        self.launch(
            ReschedJob {
                graph: self.graph.clone(),
                cluster: self.cluster.clone(),
                state,
                cfg: self.cfg.search.clone(),
                warm,
                persist_key: Some(key),
                reason: ReschedReason::Synthesis,
                detected: Instant::now(),
                frame,
                reply: self.tx.clone(),
            },
            frame,
        );
    }

    /// One calibration window: drain the feed, join measured means against
    /// the active schedule's predictions, and launch a re-search when drift
    /// has persisted long enough.
    fn evaluate(&self, frame: u64) {
        self.windows.fetch_add(1, Ordering::SeqCst);
        let window = self.feed.take();
        let active = AppState::new(self.controller.active_regime());
        let preds: Vec<(u8, u64)> = {
            let t = self.table.lock();
            let sched = match t.get(&active) {
                Some(s) => s,
                None if t.is_empty() => return,
                None => t.get_nearest(&active),
            };
            sched
                .iteration
                .stage_predictions()
                .iter()
                .map(|p| (p.task.0 as u8, p.wall.0))
                .collect()
        };
        let samples: Vec<(u8, u64, f64)> = window
            .iter()
            .enumerate()
            .filter(|(_, (count, _))| *count > 0)
            .filter_map(|(stage, (count, sum))| {
                let (_, wall_us) = preds.iter().find(|(t, _)| usize::from(*t) == stage)?;
                #[allow(clippy::cast_precision_loss)]
                Some((stage as u8, *wall_us, *sum as f64 / *count as f64))
            })
            .collect();
        if samples.is_empty() {
            return;
        }
        let (_calibration, rows) = calibrate_stages(&samples, self.cfg.tolerance);
        let drifting: Vec<_> = rows.iter().filter(|r| r.drift).collect();
        {
            let mut g = self.inner.lock();
            if drifting.is_empty() {
                g.streak = 0;
                return;
            }
            self.drift_windows.fetch_add(1, Ordering::SeqCst);
            g.streak += 1;
            if g.streak < self.cfg.confirm_windows || g.in_flight {
                return;
            }
            if let Some(last) = g.last_launch_frame {
                if frame.saturating_sub(last) < self.cfg.cooldown_frames {
                    return;
                }
            }
            g.in_flight = true;
            g.last_launch_frame = Some(frame);
            g.streak = 0;
        }
        // Rescale the drifting stages' cost models to measured reality
        // (integer permille — a 2.37× slowdown becomes 2370/1000) and
        // re-search against the graph the run is actually executing.
        let mut graph = self.graph.clone();
        for r in &drifting {
            let num = (r.ratio * 1000.0).round().max(1.0);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let num = num.min(1e15) as u64;
            graph = graph.with_scaled_cost(TaskId(usize::from(r.stage)), num, 1000);
        }
        // The re-fit is keyed on the *rescaled* graph (the permille cost
        // vector is in the fingerprint): a restart confirming the same drift
        // re-derives the same key and validates the entry against the same
        // rescaled graph, while undrifted processes compute the original key
        // and never see it. So first probe the cache for a re-fit an earlier
        // process already paid for…
        let key = schedule_cache_key(&graph, &self.cluster, &active, &self.cfg.search);
        if let Some(cache) = &self.cache {
            if let Ok(sched) = cache.load(key, &graph, &self.cluster, &active) {
                // Served warm: route through the normal install path (the
                // send can only fail if we dropped our own receiver).
                let _ = self.tx.send(ReschedOutcome {
                    state: active,
                    sched,
                    nodes_explored: 0,
                    search_time: Duration::ZERO,
                    persist_key: None,
                    reason: ReschedReason::Drift,
                    detected: Instant::now(),
                    launch_frame: frame,
                });
                return;
            }
        }
        // …and only search when no process has.
        let warm = self.warm_for(&active);
        self.launch(
            ReschedJob {
                graph,
                cluster: self.cluster.clone(),
                state: active,
                cfg: self.cfg.search.clone(),
                warm,
                persist_key: Some(key),
                reason: ReschedReason::Drift,
                detected: Instant::now(),
                frame,
                reply: self.tx.clone(),
            },
            frame,
        );
    }

    /// The warm-start incumbent for a state: its exact schedule when the
    /// table has one, else the nearest regime's.
    fn warm_for(&self, state: &AppState) -> Option<PipelinedSchedule> {
        let t = self.table.lock();
        match t.get(state) {
            Some(s) => Some(s.clone()),
            None if t.is_empty() => None,
            None => Some(t.get_nearest(state).clone()),
        }
    }

    /// Hand a job to the shared pool; fall back to a detached thread when
    /// no pool is attached (or it has shut down). Leaves a launch instant
    /// ([`SpanKind::Resched`] with no decomp payload) on the trace.
    fn launch(&self, job: ReschedJob, frame: u64) {
        self.launches.fetch_add(1, Ordering::SeqCst);
        if let Some(r) = self.recorder.lock().as_ref().filter(|r| r.enabled()) {
            r.instant(SpanKind::Resched, Stage::Face.index(), frame, None);
        }
        let pool = self.pool.lock().clone();
        let rejected = match pool {
            Some(p) => match p.submit(PoolJob::Resched(Box::new(job))) {
                Ok(()) => None,
                Err(crate::pool::PoolClosed(PoolJob::Resched(j))) => Some(*j),
                // Unreachable: submit returns the job it was given.
                Err(crate::pool::PoolClosed(_)) => None,
            },
            None => Some(job),
        };
        if let Some(j) = rejected {
            std::thread::spawn(move || j.run());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::optimal::optimal_schedule;
    use std::collections::BTreeMap;
    use taskgraph::builders;

    fn fixture() -> (TaskGraph, ClusterSpec, ScheduleTable, TaskId) {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let states: Vec<AppState> = [1u32, 2].iter().map(|&n| AppState::new(n)).collect();
        let table = ScheduleTable::precompute(&g, &c, &states, &OptimalConfig::default().serial());
        let t4 = g.task_by_name("Target Detection").unwrap();
        (g, c, table, t4)
    }

    fn controller(table: &ScheduleTable, t4: TaskId) -> Arc<RegimeController> {
        Arc::new(RegimeController::from_schedule_table(table, t4, 1, 1).unwrap())
    }

    #[test]
    fn cost_feed_accumulates_and_drains() {
        let f = CostFeed::new(3);
        f.record(0, 100);
        f.record(0, 300);
        f.record(2, 50);
        f.record(9, 1); // out of range: ignored
        assert_eq!(f.take(), vec![(2, 400), (0, 0), (1, 50)]);
        assert_eq!(f.take(), vec![(0, 0), (0, 0), (0, 0)], "drained");
    }

    #[test]
    fn cost_feed_keeps_chunk_samples_separate_from_frame_samples() {
        let f = CostFeed::new(2);
        f.record(1, 1000);
        f.record_chunk(1, 200);
        f.record_chunk(1, 400);
        f.record_chunk(7, 1); // out of range: ignored
        assert_eq!(f.take_chunks(), vec![(0, 0), (2, 600)]);
        assert_eq!(f.take(), vec![(0, 0), (1, 1000)], "frame window untouched");
        assert_eq!(f.take_chunks(), vec![(0, 0), (0, 0)], "drained");
    }

    #[test]
    fn strip_tuner_rederives_width_from_measured_cost() {
        // Cheap frames (well under one TARGET_STRIP_NS of work) collapse to
        // a single serial strip once the retune window fills.
        let t = StripTuner::new(4, 8);
        assert_eq!(t.strips(), 4, "seeded width until evidence arrives");
        for _ in 0..7 {
            t.observe_frame(50_000);
            assert_eq!(t.strips(), 4, "no retune mid-window");
        }
        t.observe_frame(50_000);
        assert_eq!(t.strips(), 1, "tiny frames go serial");

        // Expensive frames widen, but never past the configured max.
        for _ in 0..8 {
            t.observe_frame(TARGET_STRIP_NS * 100);
        }
        assert_eq!(t.strips(), 8, "clamped to max");

        // A mid-cost window lands on cost / target.
        for _ in 0..8 {
            t.observe_frame(TARGET_STRIP_NS * 3);
        }
        assert_eq!(t.strips(), 3);

        // Degenerate construction still prescribes at least one strip.
        let t = StripTuner::new(0, 0);
        assert_eq!(t.strips(), 1);
    }

    /// Synthetic per-strip feedback loop: each frame carries `work` ns of
    /// strip kernel time plus a 1 µs dispatch overhead per strip at the
    /// currently prescribed width.
    fn feed_frames(t: &StripTuner, work: u64, frames: u64) {
        for _ in 0..frames {
            let strips = t.strips() as u64;
            t.observe_frame(work + strips * 1_000);
        }
    }

    #[test]
    fn strip_tuner_converges_to_target_granularity() {
        let t = StripTuner::new(8, 64);
        // 6 targets' worth of work: the loop settles at 6 strips, and each
        // strip carries the 200 µs target within the truncation band
        // [TARGET, TARGET·(1 + 1/strips)).
        feed_frames(&t, 6 * TARGET_STRIP_NS, 8 * RETUNE_FRAMES);
        assert_eq!(t.strips(), 6);
        let per_strip = (6 * TARGET_STRIP_NS + 6_000) / t.strips() as u64;
        assert!((TARGET_STRIP_NS..2 * TARGET_STRIP_NS).contains(&per_strip));
        // Stability: more evidence at the same cost never moves it.
        feed_frames(&t, 6 * TARGET_STRIP_NS, 8 * RETUNE_FRAMES);
        assert_eq!(t.strips(), 6, "converged prescription is stable");
    }

    #[test]
    fn strip_tuner_tracks_cost_step_mid_run() {
        let t = StripTuner::new(4, 64);
        feed_frames(&t, 10 * TARGET_STRIP_NS, 8 * RETUNE_FRAMES);
        assert_eq!(t.strips(), 10);

        // Cost step down mid-run: frames shrink to 1.5 targets of work —
        // too small to amortize dispatch, the tuner collapses to serial.
        feed_frames(&t, 3 * TARGET_STRIP_NS / 2, 8 * RETUNE_FRAMES);
        assert_eq!(t.strips(), 1, "cheap frames collapse toward serial");

        // Cost step up: 40 targets of work re-widens to 40 strips, each
        // still carrying ~one target of kernel time.
        feed_frames(&t, 40 * TARGET_STRIP_NS, 8 * RETUNE_FRAMES);
        assert_eq!(t.strips(), 40);
        let per_strip = (40 * TARGET_STRIP_NS + 40_000) / t.strips() as u64;
        assert!((TARGET_STRIP_NS..2 * TARGET_STRIP_NS).contains(&per_strip));
    }

    #[test]
    fn sustained_drift_launches_search_and_installs_swap() {
        let (g, c, table, t4) = fixture();
        let ctl = controller(&table, t4);
        let cfg = AdaptConfig {
            window: 4,
            confirm_windows: 2,
            cooldown_frames: 0,
            tolerance: 0.5,
            ..AdaptConfig::default()
        };
        let adapt = AdaptLoop::new(cfg, g.clone(), c, table, t4, Arc::clone(&ctl));
        let feed = adapt.feed();

        // Predicted per-stage walls for regime 1, in model µs. Feed perfect
        // conformance (ratio 1.0 via a fake 1 ns/µs clock) except stage 3,
        // which runs 4× its share.
        let sched = adapt.schedule_for(1).unwrap();
        let preds: BTreeMap<u8, u64> = sched
            .iteration
            .stage_predictions()
            .iter()
            .map(|p| (p.task.0 as u8, p.wall.0))
            .collect();
        let mut frame = 0u64;
        let mut feed_window = |drift: bool| {
            for _ in 0..4 {
                for (&stage, &wall_us) in &preds {
                    let factor = if drift && stage == 3 { 4 } else { 1 };
                    feed.record(usize::from(stage), wall_us * factor);
                }
                adapt.on_frame(frame);
                frame += 1;
            }
        };

        feed_window(false);
        assert_eq!(adapt.stats().drift_windows, 0, "clean window: no drift");
        feed_window(true);
        assert_eq!(adapt.stats().drift_windows, 1);
        assert_eq!(adapt.stats().launches, 0, "one window is not confirmation");
        feed_window(true);
        assert_eq!(adapt.stats().launches, 1, "second drifting window launches");

        // The search runs on a detached thread (no pool attached); pump the
        // frame hook until the result lands and is installed.
        let t0 = Instant::now();
        while adapt.stats().installs == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "search never landed"
            );
            std::thread::sleep(Duration::from_millis(10));
            adapt.on_frame(frame);
            frame += 1;
        }
        let stats = adapt.stats();
        assert_eq!(stats.installs, 1);
        assert_eq!(ctl.swaps(), 1, "exactly one swap in the ledger");
        assert!(stats.last_detect_to_swap.is_some());
        assert!(stats.last_nodes_explored > 0, "a real search ran");
    }

    /// PR 6 caveat #2 regression: a stage that gets *faster* (a kernel-tier
    /// upgrade, say) must trigger re-scheduling just like a slowdown — the
    /// drift predicate is symmetric, so speed-ups are visible even at
    /// `tolerance ≥ 1.0`, where `ratio < 1` could never exceed `1 + tol`.
    #[test]
    fn sustained_speedup_also_launches_search_and_installs_swap() {
        let (g, c, table, t4) = fixture();
        let ctl = controller(&table, t4);
        let cfg = AdaptConfig {
            window: 4,
            confirm_windows: 2,
            cooldown_frames: 0,
            tolerance: 1.0,
            ..AdaptConfig::default()
        };
        let adapt = AdaptLoop::new(cfg, g.clone(), c, table, t4, Arc::clone(&ctl));
        let feed = adapt.feed();

        let sched = adapt.schedule_for(1).unwrap();
        let preds: BTreeMap<u8, u64> = sched
            .iteration
            .stage_predictions()
            .iter()
            .map(|p| (p.task.0 as u8, p.wall.0))
            .collect();
        let mut frame = 0u64;
        let mut feed_window = |drift: bool| {
            for _ in 0..4 {
                for (&stage, &wall_us) in &preds {
                    // Stage 3 runs at a quarter of its predicted share:
                    // ratio 0.25 < 1 / (1 + tolerance) = 0.5.
                    let div = if drift && stage == 3 { 4 } else { 1 };
                    feed.record(usize::from(stage), (wall_us / div).max(1));
                }
                adapt.on_frame(frame);
                frame += 1;
            }
        };

        feed_window(false);
        assert_eq!(adapt.stats().drift_windows, 0, "clean window: no drift");
        feed_window(true);
        feed_window(true);
        assert_eq!(adapt.stats().launches, 1, "confirmed speed-up launches");

        let t0 = Instant::now();
        while adapt.stats().installs == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "search never landed"
            );
            std::thread::sleep(Duration::from_millis(10));
            adapt.on_frame(frame);
            frame += 1;
        }
        assert_eq!(ctl.swaps(), 1, "the faster reality was installed");
    }

    /// Feed one window (4 frames) of perfectly conformant costs, except
    /// stage 3 at exactly 4× its prediction when `drift` is set — the exact
    /// ratio makes the permille rescale (4000/1000) reproducible across
    /// "processes", which is what keys the persisted re-fit.
    fn feed_drift_window(
        adapt: &AdaptLoop,
        feed: &CostFeed,
        preds: &BTreeMap<u8, u64>,
        frame: &mut u64,
        drift: bool,
    ) {
        for _ in 0..4 {
            for (&stage, &wall_us) in preds {
                let factor = if drift && stage == 3 { 4 } else { 1 };
                feed.record(usize::from(stage), wall_us * factor);
            }
            adapt.on_frame(*frame);
            *frame += 1;
        }
    }

    #[test]
    fn drift_refit_persists_and_restart_is_served_warm() {
        let (g, c, table, t4) = fixture();
        let dir = std::env::temp_dir().join(format!(
            "cds-drift-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = AdaptConfig {
            window: 4,
            confirm_windows: 2,
            cooldown_frames: 0,
            tolerance: 0.5,
            cache_dir: Some(dir.clone()),
            ..AdaptConfig::default()
        };
        let preds: BTreeMap<u8, u64> = table
            .get(&AppState::new(1))
            .unwrap()
            .iteration
            .stage_predictions()
            .iter()
            .map(|p| (p.task.0 as u8, p.wall.0))
            .collect();

        // "First process": confirmed 4× drift on stage 3 → real search,
        // result persisted under the rescaled graph's key.
        let ctl = controller(&table, t4);
        let adapt = AdaptLoop::new(
            cfg.clone(),
            g.clone(),
            c.clone(),
            table.clone(),
            t4,
            Arc::clone(&ctl),
        );
        let feed = adapt.feed();
        let mut frame = 0u64;
        feed_drift_window(&adapt, &feed, &preds, &mut frame, true);
        feed_drift_window(&adapt, &feed, &preds, &mut frame, true);
        assert_eq!(adapt.stats().launches, 1, "confirmed drift launches");
        let t0 = Instant::now();
        while adapt.stats().installs == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "search never landed"
            );
            std::thread::sleep(Duration::from_millis(10));
            adapt.on_frame(frame);
            frame += 1;
        }
        assert!(
            adapt.stats().last_nodes_explored > 0,
            "first process really searched"
        );
        let refit = adapt.schedule_for(1).unwrap();

        // "Second process": fresh loop over the same cache directory
        // confirms the *same* drift — the permille rescale reproduces the
        // key, and the re-fit is installed without exploring a node.
        let ctl2 = controller(&table, t4);
        let adapt2 = AdaptLoop::new(cfg, g, c, table, t4, Arc::clone(&ctl2));
        let feed2 = adapt2.feed();
        let mut frame2 = 0u64;
        feed_drift_window(&adapt2, &feed2, &preds, &mut frame2, true);
        feed_drift_window(&adapt2, &feed2, &preds, &mut frame2, true);
        adapt2.on_frame(frame2); // the cache hit was posted; install it
        let stats = adapt2.stats();
        assert_eq!(stats.installs, 1, "restart installs the persisted re-fit");
        assert_eq!(stats.launches, 0, "no search launched after restart");
        assert_eq!(stats.last_nodes_explored, 0, "zero nodes explored");
        assert_eq!(ctl2.swaps(), 1);
        assert_eq!(
            adapt2.schedule_for(1).unwrap().iteration.latency,
            refit.iteration.latency,
            "the warm-served schedule is the first process's re-fit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthesis_persists_through_cache_and_restart_skips_search() {
        let (g, c, table, t4) = fixture();
        let dir = std::env::temp_dir().join(format!(
            "cds-adapt-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = AdaptConfig {
            cache_dir: Some(dir.clone()),
            ..AdaptConfig::default()
        };

        // "First process": regime 4 is not in the table; a confirmed
        // observation parks it for synthesis and the loop searches it.
        let ctl = controller(&table, t4);
        let adapt = AdaptLoop::new(
            cfg.clone(),
            g.clone(),
            c.clone(),
            table.clone(),
            t4,
            Arc::clone(&ctl),
        );
        assert!(!ctl.has_regime(4));
        ctl.observe(4);
        assert_eq!(ctl.pending_synthesis(), Some(4));
        let mut frame = 0u64;
        let t0 = Instant::now();
        while adapt.stats().installs == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(60),
                "synthesis never landed"
            );
            adapt.on_frame(frame);
            frame += 1;
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ctl.has_regime(4), "regime grafted into the controller");
        assert_eq!(ctl.pending_synthesis(), None);
        assert!(
            adapt.stats().last_nodes_explored > 0,
            "first process really searched"
        );
        let synthesized = adapt.schedule_for(4).unwrap();
        // The online result equals the offline optimum for the same state —
        // synthesis is a real search, not an interpolation.
        let offline = optimal_schedule(&g, &c, &AppState::new(4), &cfg.search).best;
        assert_eq!(synthesized.iteration.latency, offline.iteration.latency);

        // "Second process": fresh controller and loop over the same cache
        // directory. The same unknown regime is served from disk: installed
        // without exploring a single node.
        let ctl2 = controller(&table, t4);
        let adapt2 = AdaptLoop::new(cfg, g, c, table, t4, Arc::clone(&ctl2));
        ctl2.observe(4);
        assert_eq!(ctl2.pending_synthesis(), Some(4));
        adapt2.on_frame(0); // cache hit posted…
        adapt2.on_frame(1); // …and installed
        let stats = adapt2.stats();
        assert_eq!(stats.installs, 1, "restart installs from the cache");
        assert_eq!(stats.last_nodes_explored, 0, "no search after restart");
        assert!(ctl2.has_regime(4));
        assert_eq!(
            adapt2.schedule_for(4).unwrap().iteration.latency,
            synthesized.iteration.latency
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
