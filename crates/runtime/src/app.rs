//! Wiring: build the tracker's channels and task bodies into a runnable
//! application (the Fig. 2 graph over real STM channels).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use obs::{ChannelCheck, Recorder, TraceMode};
use stm::{Channel, ChannelBuilder};
use vision::{BackendKind, BitMask, ColorHist, Frame, ModelLocation, Scene, ScoreMap};

use crate::adapt::AdaptLoop;
use crate::error::{RuntimeHealth, Stage};
use crate::faults::FaultInjector;
use crate::frame_pool::{BufPool, PoolStats, PooledFrame, PooledMask};
use crate::measure::Measurements;
use crate::pool::{PoolHealth, PriorityClass, WorkerPool};
use crate::regime_rt::RegimeController;
use crate::tasks::{
    ChangeTask, DetectTask, DigitizerTask, FaceTask, HistogramTask, PeakTask, PoolJob, StageCtx,
    TaskBody,
};

/// Default per-frame latency budget when fault injection is on but no
/// explicit deadline was configured: generous for test-sized frames, yet
/// bounded, so an upstream drop cascades as clean deadline skips instead of
/// deadlocking downstream stages.
const DEFAULT_FAULT_DEADLINE: Duration = Duration::from_millis(400);

/// Configuration of a tracker run.
#[derive(Clone, Debug)]
pub struct TrackerConfig {
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Number of targets in the scene (and enrolled models).
    pub n_targets: usize,
    /// Scene seed.
    pub seed: u64,
    /// Frames to process.
    pub n_frames: u64,
    /// Digitizer period (the §3.1 tuning knob).
    pub period: Duration,
    /// STM channel capacity (flow control).
    pub channel_capacity: usize,
    /// Fixed (FP, MP) decomposition for T4.
    pub decomposition: (u32, u32),
    /// Worker-pool size for online-mode data parallelism (0 = none). The
    /// pool is shared by T4 detection chunks and T2 histogram strips.
    pub pool_workers: usize,
    /// Recycle frame and mask buffers through freelists so steady-state
    /// execution allocates nothing per frame. Output is bit-identical
    /// either way (producers overwrite recycled buffers completely).
    pub recycle_buffers: bool,
    /// Peak detection threshold.
    pub min_score: f32,
    /// Failure injection: the digitizer dies after this many frames (the
    /// camera cable is pulled). Downstream tasks must drain and stop
    /// cleanly via channel closure — no hangs, no leaks.
    pub digitizer_dies_after: Option<u64>,
    /// Per-frame latency budget for every stage's input waits (the deadline
    /// watchdog): a frame whose inputs miss the budget is skipped — STM
    /// consume semantics — instead of back-pressuring the digitizer.
    /// `None` waits forever (the pre-watchdog behavior), except that
    /// attaching `faults` defaults the budget so injected drops cascade
    /// cleanly.
    pub frame_deadline: Option<Duration>,
    /// Deterministic fault injection (see [`crate::faults`]); `None` for
    /// production runs.
    pub faults: Option<Arc<FaultInjector>>,
    /// Live observability: `Some(mode)` attaches an [`obs::Recorder`] in
    /// that mode to every stage, pool job, and the regime controller.
    /// `None` builds no recorder at all — the baseline the
    /// [`TraceMode::Off`] overhead claim is measured against.
    pub trace: Option<TraceMode>,
    /// Which compute-kernel tier the stage bodies dispatch through
    /// (scalar oracles, portable word kernels, or runtime-detected SIMD).
    /// Every tier is bit-identical; they differ only in speed, which is
    /// what the priced schedule search weighs.
    pub backend: BackendKind,
    /// Record this run's nondeterminism (digitized frames, skips, commits)
    /// into the tap — the live side of `crates/replay`. `None` records
    /// nothing and costs nothing.
    pub record: Option<Arc<replay::RecordTap>>,
    /// Replay a recording: the digitizer plays frames back from here
    /// (unpaced, recorded skips re-marked) instead of rendering. Combine
    /// with a [`FaultInjector`] carrying the recorded downstream skips to
    /// pin the whole pipeline to the recorded run.
    pub source: Option<Arc<replay::ReplaySource>>,
}

impl TrackerConfig {
    /// A small, fast configuration suitable for tests.
    #[must_use]
    pub fn small(n_targets: usize, n_frames: u64) -> Self {
        TrackerConfig {
            width: 96,
            height: 72,
            n_targets,
            seed: 7,
            n_frames,
            period: Duration::from_millis(1),
            channel_capacity: 8,
            decomposition: (1, 1),
            pool_workers: 0,
            recycle_buffers: true,
            min_score: 5.0,
            digitizer_dies_after: None,
            frame_deadline: None,
            faults: None,
            trace: None,
            backend: BackendKind::from_env(),
            record: None,
            source: None,
        }
    }
}

/// One tenant's view of fleet-shared runtime resources: the fleet-wide
/// worker pool and buffer freelists (shared by every tenant), plus this
/// tenant's private weighted-fairness boost flag. Passing one of these to
/// [`TrackerApp::build_shared`] suppresses the app's internal pool/freelist
/// construction — a thousand tenants then multiplex one pool instead of
/// spawning a thousand.
#[derive(Clone)]
pub struct SharedResources {
    /// The fleet-wide worker pool all tenants' data-parallel stages submit to.
    pub pool: Arc<WorkerPool<PoolJob>>,
    /// Pool width; seeds each tenant's histogram strip tuner.
    pub pool_workers: usize,
    /// Shared frame-buffer freelist (`None` disables recycling).
    pub frame_pool: Option<BufPool<Frame>>,
    /// Shared mask-buffer freelist (`None` disables recycling).
    pub mask_pool: Option<BufPool<BitMask>>,
    /// This tenant's urgency flag: while `true`, the tenant's pool jobs ride
    /// the urgent lane (set by the fleet monitor when the tenant falls
    /// behind its deadline budget).
    pub boost: Arc<AtomicBool>,
    /// The tenant's standing priority class: every pool job it submits
    /// rides the class's queue lane (unless boosted).
    pub class: PriorityClass,
    /// Lifecycle drain flag: the fleet flips it on `detach`, the digitizer
    /// stops producing, and in-flight frames drain to a clean close.
    pub halt: Arc<AtomicBool>,
    /// Shed flag: while `true`, the digitizer skip-commits frames instead
    /// of rendering them (BestEffort degradation under fleet pressure).
    pub shed: Arc<AtomicBool>,
}

/// A fully wired tracker application: six task bodies in the task-id order
/// of [`taskgraph::builders::color_tracker`], sharing STM channels.
pub struct TrackerApp {
    /// Task bodies indexed like the task graph (0 = digitizer … 5 = face).
    pub tasks: Vec<Arc<dyn TaskBody>>,
    /// Wall-clock measurements (digitize/complete per frame).
    pub measure: Arc<Measurements>,
    /// The sink task, for reading back per-frame observations.
    pub face: Arc<FaceTask>,
    /// The regime controller, when one was attached.
    pub controller: Option<Arc<RegimeController>>,
    /// The adaptation loop, when one was attached (drift-triggered online
    /// re-scheduling; see [`crate::adapt`]).
    pub adapt: Option<Arc<AdaptLoop>>,
    /// The scene (for ground-truth checks in tests).
    pub scene: Scene,
    /// Number of frames this app will process.
    pub n_frames: u64,
    /// Shared health ledger of the run: every frame-path fault any stage
    /// absorbed (drops, deadline skips, chunk recomputes, regime clamps).
    pub health: Arc<RuntimeHealth>,
    /// The span recorder, when [`TrackerConfig::trace`] asked for one.
    pub recorder: Option<Recorder>,
    channels: AppChannels,
    pool: Option<Arc<WorkerPool<PoolJob>>>,
    frame_pool: Option<BufPool<Frame>>,
    mask_pool: Option<BufPool<BitMask>>,
    channel_capacity: usize,
}

struct AppChannels {
    frames: Channel<PooledFrame>,
    hist: Channel<ColorHist>,
    mask: Channel<PooledMask>,
    scores: Channel<Vec<ScoreMap>>,
    locations: Channel<Vec<ModelLocation>>,
}

/// Byte weigher of the "Frame" channel: interleaved RGB payload.
fn weigh_frame(f: &PooledFrame) -> usize {
    f.byte_len()
}

/// Byte weigher of the "Color Model" channel: one `f32` per bin.
fn weigh_hist(_: &ColorHist) -> usize {
    vision::color::N_BINS * std::mem::size_of::<f32>()
}

/// Byte weigher of the "Motion Mask" channel: the packed bit words.
fn weigh_mask(m: &PooledMask) -> usize {
    m.byte_len()
}

/// Byte weigher of the "Back Projections" channel: one `f32` per pixel per
/// model.
// `build_weighed` takes a `fn(&T) -> usize` where `T` is the channel payload
// type (`Vec<ScoreMap>`), so a slice parameter would not match.
#[allow(clippy::ptr_arg)]
fn weigh_scores(s: &Vec<ScoreMap>) -> usize {
    s.iter()
        .map(|m| m.width * m.height * std::mem::size_of::<f32>())
        .sum()
}

/// Byte weigher of the "Model Locations" channel.
// Same `fn(&T) -> usize` pointer constraint as `weigh_scores`.
#[allow(clippy::ptr_arg)]
fn weigh_locations(l: &Vec<ModelLocation>) -> usize {
    l.len() * std::mem::size_of::<ModelLocation>()
}

impl TrackerApp {
    /// Build the application. `controller`, if given, drives T4's
    /// decomposition dynamically; otherwise `cfg.decomposition` is fixed.
    #[must_use]
    pub fn build(cfg: &TrackerConfig, controller: Option<Arc<RegimeController>>) -> TrackerApp {
        let scene = Scene::demo(cfg.width, cfg.height, cfg.n_targets, cfg.seed);
        Self::build_with_scene(cfg, scene, controller)
    }

    /// [`build`](Self::build) with an explicit scene (e.g. one whose target
    /// population changes over time via [`Scene::with_visit`]).
    #[must_use]
    pub fn build_with_scene(
        cfg: &TrackerConfig,
        scene: Scene,
        controller: Option<Arc<RegimeController>>,
    ) -> TrackerApp {
        Self::build_adaptive(cfg, scene, controller, None)
    }

    /// [`build_with_scene`](Self::build_with_scene) plus an adaptation loop:
    /// every stage reports compute costs into the loop's feed, the sink
    /// drives its frame-boundary hook, background re-searches ride the
    /// shared worker pool, and swap/launch instants land on the trace. The
    /// loop should share `controller` — that is where its swaps are
    /// installed.
    #[must_use]
    pub fn build_adaptive(
        cfg: &TrackerConfig,
        scene: Scene,
        controller: Option<Arc<RegimeController>>,
        adapt: Option<Arc<AdaptLoop>>,
    ) -> TrackerApp {
        Self::build_inner(cfg, scene, controller, adapt, None)
    }

    /// [`build_adaptive`](Self::build_adaptive) for a fleet tenant: the
    /// worker pool and buffer freelists come from `shared` instead of being
    /// constructed per app, and every stage carries the tenant's boost flag
    /// so the fleet monitor can route its pool jobs to the urgent lane.
    /// `cfg.pool_workers` and `cfg.recycle_buffers` are ignored — `shared`
    /// decides both.
    #[must_use]
    pub fn build_shared(
        cfg: &TrackerConfig,
        scene: Scene,
        controller: Option<Arc<RegimeController>>,
        adapt: Option<Arc<AdaptLoop>>,
        shared: &SharedResources,
    ) -> TrackerApp {
        Self::build_inner(cfg, scene, controller, adapt, Some(shared))
    }

    fn build_inner(
        cfg: &TrackerConfig,
        scene: Scene,
        controller: Option<Arc<RegimeController>>,
        adapt: Option<Arc<AdaptLoop>>,
        shared: Option<&SharedResources>,
    ) -> TrackerApp {
        assert_eq!(
            (scene.width, scene.height),
            (cfg.width, cfg.height),
            "scene and config sizes must agree"
        );
        let models = scene.models();
        let health = Arc::new(RuntimeHealth::default());
        let measure = Arc::new(
            Measurements::new(cfg.n_frames as usize)
                .with_stages(Stage::ALL.len())
                .with_health(Arc::clone(&health)),
        );
        let recorder = cfg.trace.map(|mode| Recorder::new(mode, Stage::names()));
        // The deadline watchdog: explicit budget wins; injecting faults
        // without one gets a bounded default so upstream drops cascade as
        // recorded deadline skips instead of wedging downstream gets.
        let deadline = cfg
            .frame_deadline
            .or(cfg.faults.as_ref().map(|_| DEFAULT_FAULT_DEADLINE));
        let stage_ctx = |stage: Stage| {
            let mut ctx = StageCtx::new(stage)
                .with_health(Arc::clone(&health))
                .with_measure(Arc::clone(&measure))
                .with_backend(cfg.backend.get());
            if let Some(d) = deadline {
                ctx = ctx.with_deadline(d);
            }
            if let Some(f) = &cfg.faults {
                ctx = ctx.with_faults(Arc::clone(f));
            }
            if let Some(r) = &recorder {
                ctx = ctx.with_recorder(r.clone());
            }
            if let Some(a) = &adapt {
                ctx = ctx.with_cost_feed(a.feed());
            }
            if let Some(s) = shared {
                ctx = ctx.with_boost(Arc::clone(&s.boost)).with_class(s.class);
            }
            if let Some(t) = &cfg.record {
                ctx = ctx.with_tap(Arc::clone(t));
            }
            ctx
        };
        if let (Some(a), Some(r)) = (&adapt, &recorder) {
            a.attach_recorder(r.clone());
        }

        // Every channel carries a byte weigher so the store's byte gauges
        // (`bytes_live`/`peak_bytes`) report real payload sizes — the
        // figures the fleet memory rollup and the stmstore GC budget use.
        let cap = cfg.channel_capacity;
        let frames: Channel<PooledFrame> = ChannelBuilder::new("Frame")
            .capacity(cap)
            .build_weighed(weigh_frame);
        let hist: Channel<ColorHist> = ChannelBuilder::new("Color Model")
            .capacity(cap)
            .build_weighed(weigh_hist);
        let mask: Channel<PooledMask> = ChannelBuilder::new("Motion Mask")
            .capacity(cap)
            .build_weighed(weigh_mask);
        let scores: Channel<Vec<ScoreMap>> = ChannelBuilder::new("Back Projections")
            .capacity(cap)
            .build_weighed(weigh_scores);
        let locations: Channel<Vec<ModelLocation>> = ChannelBuilder::new("Model Locations")
            .capacity(cap)
            .build_weighed(weigh_locations);

        // Buffer pools: a few more idle slots than the channel can hold, so
        // a drained pipeline never discards buffers it is about to reuse. A
        // fleet tenant recycles through the shared freelists instead.
        let (frame_pool, mask_pool) = match shared {
            Some(s) => (s.frame_pool.clone(), s.mask_pool.clone()),
            None if cfg.recycle_buffers => {
                (Some(BufPool::new(cap + 2)), Some(BufPool::new(cap + 2)))
            }
            None => (None, None),
        };

        let digitizer_frames = cfg
            .digitizer_dies_after
            .map_or(cfg.n_frames, |d| d.min(cfg.n_frames));
        let mut digitizer = DigitizerTask::new(
            scene.clone(),
            frames.clone(),
            cfg.period,
            digitizer_frames,
            Arc::clone(&measure),
        )
        .with_ctx(stage_ctx(Stage::Digitizer));
        if let Some(p) = &frame_pool {
            digitizer = digitizer.with_frame_pool(p.clone());
        }
        if let Some(s) = shared {
            digitizer = digitizer
                .with_halt(Arc::clone(&s.halt))
                .with_shed(Arc::clone(&s.shed));
        }
        if let Some(src) = &cfg.source {
            digitizer = digitizer.with_source(Arc::clone(src));
        }
        let mut histogram = HistogramTask::new(frames.attach_input(), hist.clone())
            .with_ctx(stage_ctx(Stage::Histogram));
        let mut change = ChangeTask::new(
            frames.attach_input(),
            mask.clone(),
            u16::from(vision::change::DEFAULT_THRESHOLD),
        )
        .with_ctx(stage_ctx(Stage::Change));
        if let Some(p) = &mask_pool {
            change = change.with_mask_pool(p.clone());
        }
        let mut detect = DetectTask::new(
            frames.attach_input(),
            hist.attach_input(),
            mask.attach_input(),
            scores.clone(),
            models,
            cfg.width,
            cfg.height,
            cfg.decomposition,
        )
        .with_ctx(stage_ctx(Stage::Detect));
        if let Some(c) = &controller {
            detect = detect.with_controller(Arc::clone(c));
            c.attach_health(Arc::clone(&health));
            if let Some(r) = &recorder {
                c.attach_recorder(r.clone());
            }
        }
        let mut shared_pool = None;
        if let Some(s) = shared {
            detect = detect.with_pool(Arc::clone(&s.pool));
            histogram = histogram.with_pool(Arc::clone(&s.pool), s.pool_workers.max(1));
            if let Some(a) = &adapt {
                a.attach_pool(Arc::clone(&s.pool));
            }
            shared_pool = Some(Arc::clone(&s.pool));
        } else if cfg.pool_workers > 0 {
            // One pool serves both data-parallel stages (T4 chunks and T2
            // histogram strips). With fault injection attached, the handler
            // probes the injector first — the injected panic lands inside
            // the pool's catch_unwind, exactly where a real one would.
            let pool: Arc<WorkerPool<PoolJob>> = match &cfg.faults {
                Some(f) => {
                    let f = Arc::clone(f);
                    Arc::new(WorkerPool::new(cfg.pool_workers, move |job: PoolJob| {
                        f.maybe_panic_job();
                        job.run();
                    }))
                }
                None => Arc::new(WorkerPool::new(cfg.pool_workers, PoolJob::run)),
            };
            detect = detect.with_pool(Arc::clone(&pool));
            histogram = histogram.with_pool(Arc::clone(&pool), cfg.pool_workers);
            if let Some(a) = &adapt {
                a.attach_pool(Arc::clone(&pool));
            }
            shared_pool = Some(pool);
        }
        let peak = PeakTask::new(scores.attach_input(), locations.clone(), cfg.min_score)
            .with_ctx(stage_ctx(Stage::Peak));
        let mut face = FaceTask::new(
            locations.attach_input(),
            Arc::clone(&measure),
            controller.clone(),
        )
        .with_ctx(stage_ctx(Stage::Face));
        if let Some(a) = &adapt {
            face = face.with_adapt(Arc::clone(a));
        }
        let face = Arc::new(face);

        let tasks: Vec<Arc<dyn TaskBody>> = vec![
            Arc::new(digitizer),
            Arc::new(histogram),
            Arc::new(change),
            Arc::new(detect),
            Arc::new(peak),
            Arc::clone(&face) as Arc<dyn TaskBody>,
        ];

        TrackerApp {
            tasks,
            measure,
            face,
            controller,
            adapt,
            scene,
            n_frames: cfg.n_frames,
            health,
            recorder,
            channels: AppChannels {
                frames,
                hist,
                mask,
                scores,
                locations,
            },
            pool: shared_pool,
            frame_pool,
            mask_pool,
            channel_capacity: cap,
        }
    }

    /// The shared worker pool's fault ledger (panics contained, workers
    /// respawned, inline fallbacks), when a pool is attached.
    #[must_use]
    pub fn pool_health(&self) -> Option<PoolHealth> {
        self.pool.as_ref().map(|p| p.health())
    }

    /// Block (condvar, not polling) until the attached pool has tallied at
    /// least `n` contained panics or `timeout` elapses. True on success;
    /// trivially true when no pool is attached and `n == 0`.
    #[must_use]
    pub fn wait_pool_panics(&self, n: u64, timeout: Duration) -> bool {
        match &self.pool {
            Some(p) => p.wait_panics(n, timeout),
            None => n == 0,
        }
    }

    /// Frame-buffer pool traffic, when recycling is on. `created` stops
    /// growing once the pipeline reaches steady state.
    #[must_use]
    pub fn frame_pool_stats(&self) -> Option<PoolStats> {
        self.frame_pool.as_ref().map(BufPool::stats)
    }

    /// Mask-buffer pool traffic, when recycling is on.
    #[must_use]
    pub fn mask_pool_stats(&self) -> Option<PoolStats> {
        self.mask_pool.as_ref().map(BufPool::stats)
    }

    /// The shared worker pool's lifetime load counters
    /// `(submitted, executed)`, when a pool is attached.
    #[must_use]
    pub fn pool_load(&self) -> Option<(u64, u64)> {
        self.pool.as_ref().map(|p| (p.submitted(), p.executed()))
    }

    /// Per-channel occupancy rows for the schedule-conformance checker:
    /// every channel's configured capacity and observed `peak_live`, with
    /// `schedule_bound` (the active schedule's occupancy bound, in
    /// overlapping iterations) applied to all channels.
    #[must_use]
    pub fn channel_checks(&self, schedule_bound: u32) -> Vec<ChannelCheck> {
        let cap = self.channel_capacity as u32;
        let row = |name: &str, peak: usize| ChannelCheck {
            name: name.to_string(),
            capacity: cap,
            peak_live: peak as u32,
            schedule_bound,
        };
        vec![
            row("Frame", self.channels.frames.stats().peak_live),
            row("Color Model", self.channels.hist.stats().peak_live),
            row("Motion Mask", self.channels.mask.stats().peak_live),
            row("Back Projections", self.channels.scores.stats().peak_live),
            row("Model Locations", self.channels.locations.stats().peak_live),
        ]
    }

    /// Per-channel payload-byte gauges `(name, bytes_now, peak_bytes)`:
    /// bytes currently held (live + retained history) and the high-water
    /// mark, as weighed by the per-channel byte weighers.
    #[must_use]
    pub fn channel_bytes(&self) -> Vec<(&'static str, usize, usize)> {
        vec![
            (
                "Frame",
                self.channels.frames.stats().bytes_total(),
                self.channels.frames.stats().peak_bytes,
            ),
            (
                "Color Model",
                self.channels.hist.stats().bytes_total(),
                self.channels.hist.stats().peak_bytes,
            ),
            (
                "Motion Mask",
                self.channels.mask.stats().bytes_total(),
                self.channels.mask.stats().peak_bytes,
            ),
            (
                "Back Projections",
                self.channels.scores.stats().bytes_total(),
                self.channels.scores.stats().peak_bytes,
            ),
            (
                "Model Locations",
                self.channels.locations.stats().bytes_total(),
                self.channels.locations.stats().peak_bytes,
            ),
        ]
    }

    /// Total peak payload bytes across the five channels — the tenant's
    /// channel-memory high-water figure the fleet rollup sums.
    #[must_use]
    pub fn peak_channel_bytes(&self) -> usize {
        self.channel_bytes().iter().map(|&(_, _, peak)| peak).sum()
    }

    /// Peak live occupancy observed across all channels (validates the
    /// paper's claim that a fixed schedule bounds channel occupancy).
    #[must_use]
    pub fn peak_channel_occupancy(&self) -> usize {
        [
            self.channels.frames.stats().peak_live,
            self.channels.hist.stats().peak_live,
            self.channels.mask.stats().peak_live,
            self.channels.scores.stats().peak_live,
            self.channels.locations.stats().peak_live,
        ]
        .into_iter()
        .max()
        .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_builds_with_six_tasks_in_graph_order() {
        let app = TrackerApp::build(&TrackerConfig::small(2, 4), None);
        assert_eq!(app.tasks.len(), 6);
        let g = taskgraph::builders::color_tracker();
        for (i, t) in app.tasks.iter().enumerate() {
            assert_eq!(t.name(), g.task(taskgraph::TaskId(i)).name, "task {i}");
        }
    }

    #[test]
    fn app_builds_recorder_only_when_asked() {
        let cfg = TrackerConfig::small(2, 4);
        let app = TrackerApp::build(&cfg, None);
        assert!(app.recorder.is_none(), "trace: None attaches no recorder");

        let mut cfg = TrackerConfig::small(2, 4);
        cfg.trace = Some(TraceMode::Ring(256));
        let app = TrackerApp::build(&cfg, None);
        let rec = app.recorder.as_ref().expect("trace: Some builds one");
        assert_eq!(rec.mode(), TraceMode::Ring(256));
        let checks = app.channel_checks(3);
        assert_eq!(checks.len(), 5);
        assert!(checks
            .iter()
            .all(|c| c.capacity == 8 && c.schedule_bound == 3));
    }

    #[test]
    fn app_with_pool_and_controller() {
        let mut cfg = TrackerConfig::small(2, 4);
        cfg.pool_workers = 2;
        let mut table = std::collections::BTreeMap::new();
        table.insert(0, (1, 1));
        let c = Arc::new(RegimeController::new(2, 2, table).unwrap());
        let app = TrackerApp::build(&cfg, Some(c));
        assert!(app.controller.is_some());
    }
}
