//! Typed runtime faults and the health ledger of the live data path.
//!
//! The paper's latest-value STM semantics (§2.1) explicitly allow a
//! consumer to *skip* frames rather than stall: "tasks can be modified at
//! run-time" and the kiosk keeps serving whatever frames it can. This
//! module is the Rust rendering of that degradation ladder — every fault a
//! task can hit on the steady-state frame path becomes a [`RuntimeError`]
//! value, the frame is dropped, the task's frontier advances, and a counter
//! in [`RuntimeHealth`] records what happened. Nothing on the frame path
//! panics; the pipeline keeps streaming.
//!
//! The ladder, from least to most severe:
//!
//! 1. **absorb** — transient delays under the latency budget pass through
//!    untouched (nothing recorded);
//! 2. **drop the frame** — an unexpected STM error, a missed deadline, or a
//!    rejected late `put` skips exactly one frame at one stage
//!    ([`RuntimeError`] recorded, frontier advanced, stream continues);
//! 3. **recompute inline** — a data-parallel chunk lost to a worker panic
//!    is recomputed by the joiner, so the frame's output is still
//!    bit-identical (`chunk_recomputes` in the [`HealthReport`]);
//! 4. **stop the task** — only genuine end-of-stream (channel closed)
//!    terminates a task, exactly as before.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use stm::{GetError, PutError};

/// The six pipeline stages of the Fig. 2 tracker, used to attribute faults.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// T1 — frame source.
    Digitizer,
    /// T2 — whole-image color histogram.
    Histogram,
    /// T3 — frame differencing.
    Change,
    /// T4 — target detection.
    Detect,
    /// T5 — peak detection.
    Peak,
    /// Sink — DECface update.
    Face,
}

impl Stage {
    /// All six stages in task-graph order (the order
    /// [`index`](Self::index) numbers them in).
    pub const ALL: [Stage; 6] = [
        Stage::Digitizer,
        Stage::Histogram,
        Stage::Change,
        Stage::Detect,
        Stage::Peak,
        Stage::Face,
    ];

    /// The stage's index in task-graph order (0 = digitizer … 5 = face),
    /// used as the span stage id in observability traces.
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            Stage::Digitizer => 0,
            Stage::Histogram => 1,
            Stage::Change => 2,
            Stage::Detect => 3,
            Stage::Peak => 4,
            Stage::Face => 5,
        }
    }

    /// Display names of all stages in [`index`](Self::index) order — the
    /// `stage_names` every [`obs::Recorder`] for this pipeline should use.
    #[must_use]
    pub fn names() -> Vec<String> {
        Stage::ALL.iter().map(ToString::to_string).collect()
    }

    /// Stages strictly downstream of `self` on the dependency path — the
    /// number of cascaded deadline skips one dropped frame causes.
    #[must_use]
    pub fn downstream_depth(self) -> u64 {
        match self {
            // A digitizer drop starves T2/T3 which starves T4 … but the
            // digitizer itself never drops via a get (it has no inputs), so
            // its depth is the full chain when a put is rejected late.
            Stage::Digitizer => 4,
            Stage::Histogram | Stage::Change => 3,
            Stage::Detect => 2,
            Stage::Peak => 1,
            Stage::Face => 0,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Digitizer => "Digitizer",
            Stage::Histogram => "Histogram",
            Stage::Change => "Change Detection",
            Stage::Detect => "Target Detection",
            Stage::Peak => "Peak Detection",
            Stage::Face => "DECface Update",
        };
        f.write_str(s)
    }
}

/// A typed fault on the live frame path. Each value corresponds to exactly
/// one dropped (or inline-recovered) frame-stage event; none of them is
/// fatal to the pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// An STM `get` failed in a way end-of-stream semantics don't cover
    /// (e.g. `AlreadyConsumed` from a mis-sequenced sibling). Formerly a
    /// `panic!` — now the frame is dropped and the stream continues.
    StmGet {
        /// Stage that observed the error.
        stage: Stage,
        /// Frame timestamp.
        ts: u64,
        /// The underlying STM error.
        err: GetError,
    },
    /// An STM `put` was rejected: the frame arrived after downstream
    /// frontiers had already passed it (a straggler overtaken by the
    /// watchdog), or a duplicate timestamp. The frame is dropped.
    StmPut {
        /// Stage whose output was rejected.
        stage: Stage,
        /// Frame timestamp.
        ts: u64,
        /// The underlying STM error.
        err: PutError,
    },
    /// The stage's input did not arrive within the latency budget; the
    /// frame is skipped (STM latest-value semantics) so one stuck frame
    /// cannot back-pressure the digitizer.
    DeadlineExceeded {
        /// Stage that gave up waiting.
        stage: Stage,
        /// Frame timestamp.
        ts: u64,
    },
    /// A scheduled chunk count disagreed with the configured decomposition;
    /// the frame is dropped rather than asserting.
    ChunkMismatch {
        /// Frame timestamp.
        ts: u64,
        /// Chunk count the schedule expects.
        expected: u32,
        /// Chunk count the decomposition produces.
        got: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::StmGet { stage, ts, err } => {
                write!(f, "{stage}: unexpected STM get error at frame {ts}: {err}")
            }
            RuntimeError::StmPut { stage, ts, err } => {
                write!(f, "{stage}: STM put rejected at frame {ts}: {err}")
            }
            RuntimeError::DeadlineExceeded { stage, ts } => {
                write!(f, "{stage}: frame {ts} missed its latency budget")
            }
            RuntimeError::ChunkMismatch { ts, expected, got } => {
                write!(
                    f,
                    "schedule expects {expected} chunks but decomposition yields {got} at frame {ts}"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Most recent faults retained for diagnostics (counters are unbounded).
const FAULT_LOG_CAP: usize = 1024;

/// Shared health ledger of one tracker run: lock-free counters on the hot
/// path, plus a capped log of the typed faults for diagnostics.
#[derive(Debug, Default)]
pub struct RuntimeHealth {
    stm_get_drops: AtomicU64,
    stm_put_drops: AtomicU64,
    deadline_skips: AtomicU64,
    chunk_mismatches: AtomicU64,
    chunk_recomputes: AtomicU64,
    regime_clamps: AtomicU64,
    mark_drops: AtomicU64,
    load_sheds: AtomicU64,
    log: Mutex<Vec<RuntimeError>>,
}

impl RuntimeHealth {
    /// Record one fault: bump its counter and append to the capped log.
    pub fn record(&self, e: RuntimeError) {
        match e {
            RuntimeError::StmGet { .. } => &self.stm_get_drops,
            RuntimeError::StmPut { .. } => &self.stm_put_drops,
            RuntimeError::DeadlineExceeded { .. } => &self.deadline_skips,
            RuntimeError::ChunkMismatch { .. } => &self.chunk_mismatches,
        }
        .fetch_add(1, Ordering::SeqCst);
        let mut log = self.log.lock();
        if log.len() < FAULT_LOG_CAP {
            log.push(e);
        }
    }

    /// Record that a joiner recomputed a data-parallel chunk whose pool
    /// reply never arrived (worker panic): the frame's output stayed
    /// bit-identical, only the latency paid.
    pub fn record_chunk_recompute(&self) {
        self.chunk_recomputes.fetch_add(1, Ordering::SeqCst);
    }

    /// Record that the regime controller clamped an observation outside the
    /// precomputed table to the nearest known regime.
    pub fn record_regime_clamp(&self) {
        self.regime_clamps.fetch_add(1, Ordering::SeqCst);
    }

    /// Record that a measurement mark (digitize/complete/stage) arrived for
    /// a timestamp outside the preallocated window and was dropped.
    /// Formerly this drop was silent; now the report shows it.
    pub fn record_mark_drop(&self) {
        self.mark_drops.fetch_add(1, Ordering::SeqCst);
    }

    /// Record that the digitizer deliberately skip-committed a frame
    /// because the fleet flagged this (BestEffort) tenant to shed load —
    /// a policy decision, not a fault, so it is tallied separately from
    /// the drop ladder and excluded from
    /// [`total_drops`](HealthReport::total_drops).
    pub fn record_load_shed(&self) {
        self.load_sheds.fetch_add(1, Ordering::SeqCst);
    }

    /// Snapshot of all counters.
    #[must_use]
    pub fn report(&self) -> HealthReport {
        HealthReport {
            stm_get_drops: self.stm_get_drops.load(Ordering::SeqCst),
            stm_put_drops: self.stm_put_drops.load(Ordering::SeqCst),
            deadline_skips: self.deadline_skips.load(Ordering::SeqCst),
            chunk_mismatches: self.chunk_mismatches.load(Ordering::SeqCst),
            chunk_recomputes: self.chunk_recomputes.load(Ordering::SeqCst),
            regime_clamps: self.regime_clamps.load(Ordering::SeqCst),
            mark_drops: self.mark_drops.load(Ordering::SeqCst),
            load_sheds: self.load_sheds.load(Ordering::SeqCst),
        }
    }

    /// The retained fault log (up to the first `FAULT_LOG_CAP` faults).
    #[must_use]
    pub fn faults(&self) -> Vec<RuntimeError> {
        self.log.lock().clone()
    }
}

/// Counter snapshot of a [`RuntimeHealth`] ledger.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HealthReport {
    /// Frames dropped on unexpected STM get errors.
    pub stm_get_drops: u64,
    /// Frames dropped because a late put was rejected.
    pub stm_put_drops: u64,
    /// Frames skipped by the deadline watchdog.
    pub deadline_skips: u64,
    /// Frames dropped on schedule/decomposition chunk-count disagreement.
    pub chunk_mismatches: u64,
    /// Data-parallel chunks recomputed inline after a lost pool reply.
    pub chunk_recomputes: u64,
    /// Observations clamped to the nearest known regime.
    pub regime_clamps: u64,
    /// Measurement marks dropped for out-of-window timestamps.
    pub mark_drops: u64,
    /// Frames deliberately skip-committed by the shed policy (BestEffort
    /// degradation under fleet pressure). Not part of the drop ladder.
    pub load_sheds: u64,
}

impl HealthReport {
    /// Total frame-stage drop events (a frame dropped at stage `k` also
    /// cascades one deadline skip per downstream stage).
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.stm_get_drops + self.stm_put_drops + self.deadline_skips + self.chunk_mismatches
    }

    /// True when nothing was dropped, recomputed, or clamped.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        *self == HealthReport::default()
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "get-drops={} put-drops={} deadline-skips={} chunk-mismatches={} chunk-recomputes={} regime-clamps={} mark-drops={} load-sheds={}",
            self.stm_get_drops,
            self.stm_put_drops,
            self.deadline_skips,
            self.chunk_mismatches,
            self.chunk_recomputes,
            self.regime_clamps,
            self.mark_drops,
            self.load_sheds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm::MissReason;

    #[test]
    fn record_routes_to_the_right_counter() {
        let h = RuntimeHealth::default();
        h.record(RuntimeError::StmGet {
            stage: Stage::Histogram,
            ts: 3,
            err: GetError::Unsatisfiable(MissReason::AlreadyConsumed),
        });
        h.record(RuntimeError::DeadlineExceeded {
            stage: Stage::Detect,
            ts: 4,
        });
        h.record(RuntimeError::StmPut {
            stage: Stage::Change,
            ts: 5,
            err: PutError::BelowFrontier(stm::Timestamp(5)),
        });
        let r = h.report();
        assert_eq!(r.stm_get_drops, 1);
        assert_eq!(r.deadline_skips, 1);
        assert_eq!(r.stm_put_drops, 1);
        assert_eq!(r.total_drops(), 3);
        assert!(!r.is_clean());
        assert_eq!(h.faults().len(), 3);
    }

    #[test]
    fn clean_report_is_clean() {
        let h = RuntimeHealth::default();
        assert!(h.report().is_clean());
        h.record_chunk_recompute();
        assert!(!h.report().is_clean());
        assert_eq!(h.report().total_drops(), 0, "recompute is not a drop");
    }

    #[test]
    fn log_is_capped() {
        let h = RuntimeHealth::default();
        for ts in 0..(FAULT_LOG_CAP as u64 + 50) {
            h.record(RuntimeError::DeadlineExceeded {
                stage: Stage::Peak,
                ts,
            });
        }
        assert_eq!(h.faults().len(), FAULT_LOG_CAP);
        assert_eq!(h.report().deadline_skips, FAULT_LOG_CAP as u64 + 50);
    }

    #[test]
    fn errors_display() {
        let e = RuntimeError::StmGet {
            stage: Stage::Histogram,
            ts: 7,
            err: GetError::Timeout,
        };
        assert!(e.to_string().contains("Histogram"));
        assert!(e.to_string().contains('7'));
        let r = HealthReport::default();
        assert!(r.to_string().contains("deadline-skips=0"));
    }

    #[test]
    fn stage_indices_cover_graph_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index() as usize, i);
        }
        let names = Stage::names();
        assert_eq!(names.len(), 6);
        assert_eq!(names[0], "Digitizer");
        assert_eq!(names[5], "DECface Update");
    }

    #[test]
    fn mark_drops_surface_in_the_report() {
        let h = RuntimeHealth::default();
        assert!(h.report().is_clean());
        h.record_mark_drop();
        let r = h.report();
        assert_eq!(r.mark_drops, 1);
        assert!(!r.is_clean(), "a dropped mark is not a clean run");
        assert_eq!(r.total_drops(), 0, "mark drops are not frame drops");
        assert!(r.to_string().contains("mark-drops=1"));
    }

    #[test]
    fn load_sheds_surface_in_the_report() {
        let h = RuntimeHealth::default();
        h.record_load_shed();
        let r = h.report();
        assert_eq!(r.load_sheds, 1);
        assert_eq!(r.total_drops(), 0, "a shed is policy, not a drop");
        assert!(!r.is_clean(), "the shed tenant's own ledger shows it");
        assert!(r.to_string().contains("load-sheds=1"));
    }

    #[test]
    fn downstream_depths() {
        assert_eq!(Stage::Histogram.downstream_depth(), 3);
        assert_eq!(Stage::Detect.downstream_depth(), 2);
        assert_eq!(Stage::Peak.downstream_depth(), 1);
        assert_eq!(Stage::Face.downstream_depth(), 0);
    }
}
