//! The online executor: one free-running OS thread per task, coordinated
//! only by blocking STM gets and channel flow control — the real-threads
//! analogue of the paper's pthread baseline. No thread knows the task
//! graph; all ordering emerges from data availability.

use std::sync::Arc;

use stm::Timestamp;

use crate::app::TrackerApp;
use crate::measure::RunStats;

/// Runs a [`TrackerApp`] with one thread per task.
pub struct OnlineExecutor;

impl OnlineExecutor {
    /// Execute all `app.n_frames` frames to completion and return the
    /// wall-clock statistics (excluding `warmup` frames).
    #[must_use]
    pub fn run(app: &TrackerApp, warmup: usize) -> RunStats {
        let n_frames = app.n_frames;
        std::thread::scope(|scope| {
            for body in &app.tasks {
                let body = Arc::clone(body);
                std::thread::Builder::new()
                    .name(body.name().to_string())
                    .spawn_scoped(scope, move || {
                        for ts in 0..n_frames {
                            if body.process(Timestamp(ts), None).is_err() {
                                break;
                            }
                        }
                    })
                    // INVARIANT: startup-only (before any frame flows), not
                    // on the steady-state frame path.
                    .expect("spawn task thread at startup");
            }
        });
        app.measure.stats(warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TrackerConfig;
    use std::time::Duration;

    #[test]
    fn online_run_completes_all_frames() {
        let app = TrackerApp::build(&TrackerConfig::small(2, 6), None);
        let stats = OnlineExecutor::run(&app, 0);
        assert_eq!(stats.frames_completed, 6);
        assert!(stats.mean_latency > Duration::ZERO);
        // Every frame observed exactly once, in some order.
        let mut seen: Vec<u64> = app.face.observations().iter().map(|&(ts, _)| ts).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn online_tracker_detects_population() {
        let app = TrackerApp::build(&TrackerConfig::small(3, 5), None);
        let _ = OnlineExecutor::run(&app, 0);
        // After frame 0, the detected count should equal the population.
        let obs = app.face.observations();
        let good = obs.iter().filter(|&&(_, c)| c == 3).count();
        assert!(good * 10 >= obs.len() * 7, "observations: {obs:?}");
    }

    #[test]
    fn online_with_worker_pool_matches_serial_results() {
        let mut serial_cfg = TrackerConfig::small(2, 4);
        serial_cfg.decomposition = (1, 1);
        let mut dp_cfg = TrackerConfig::small(2, 4);
        dp_cfg.decomposition = (2, 2);
        dp_cfg.pool_workers = 3;

        let serial = TrackerApp::build(&serial_cfg, None);
        let _ = OnlineExecutor::run(&serial, 0);
        let dp = TrackerApp::build(&dp_cfg, None);
        let _ = OnlineExecutor::run(&dp, 0);

        let mut a = serial.face.observations();
        let mut b = dp.face.observations();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "decomposition must not change results");
    }

    #[test]
    fn flow_control_bounds_occupancy() {
        let mut cfg = TrackerConfig::small(1, 10);
        cfg.channel_capacity = 2;
        cfg.period = Duration::ZERO; // saturate
        let app = TrackerApp::build(&cfg, None);
        let stats = OnlineExecutor::run(&app, 0);
        assert_eq!(stats.frames_completed, 10);
        assert!(
            app.peak_channel_occupancy() <= 2,
            "occupancy {} exceeded capacity",
            app.peak_channel_occupancy()
        );
    }
}
