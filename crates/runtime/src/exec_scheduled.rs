//! The scheduled executor: one master thread per modeled processor, each
//! interpreting its precomputed placement sequence — the implementation
//! option of §3.3 ("one might generate a master for each processor that
//! controls its pre-computed processor-specific schedule").
//!
//! Masters never synchronize with each other directly: a placement's
//! dependences are enforced by its blocking STM gets, so executing
//! placements in schedule order on each processor realizes exactly the
//! planned partial order. Processor rotation (the Fig. 5(a) wrap-around) is
//! applied per iteration, so master `m` executes, at iteration `k`, the
//! placements whose rotated processor equals `m`.

use std::sync::Arc;

use cds_core::schedule::PipelinedSchedule;
use stm::Timestamp;

use crate::app::TrackerApp;
use crate::measure::RunStats;

/// Runs a [`TrackerApp`] under an explicit pipelined schedule.
pub struct ScheduledExecutor;

impl ScheduledExecutor {
    /// Execute all frames under `sched`. The app's fixed decomposition must
    /// match the schedule's (the chunk counts are asserted inside T4).
    /// Returns wall-clock statistics (excluding `warmup` frames).
    #[must_use]
    pub fn run(app: &TrackerApp, sched: &PipelinedSchedule, warmup: usize) -> RunStats {
        // INVARIANT: startup precondition on the *schedule*, checked once
        // before any frame flows — never on the steady-state frame path.
        assert!(
            sched.find_collision().is_none(),
            "refusing to execute a colliding schedule"
        );
        let n_frames = app.n_frames;
        let n_procs = sched.n_procs;

        // Per-virtual-processor placement sequences, in start order.
        let mut by_vproc: Vec<Vec<usize>> = vec![Vec::new(); n_procs as usize];
        for (i, p) in sched.iteration.placements.iter().enumerate() {
            by_vproc[p.proc.0 as usize].push(i);
        }
        for seq in &mut by_vproc {
            seq.sort_by_key(|&i| (sched.iteration.placements[i].start, i));
        }

        std::thread::scope(|scope| {
            for m in 0..n_procs {
                let by_vproc = &by_vproc;
                let tasks = &app.tasks;
                std::thread::Builder::new()
                    .name(format!("master-{m}"))
                    .spawn_scoped(scope, move || {
                        // Tasks whose stream has ended (failure injection /
                        // early close): skip their placements so the rest of
                        // the schedule keeps draining.
                        let mut stopped = vec![false; tasks.len()];
                        for k in 0..n_frames {
                            // The virtual processor this master plays at
                            // iteration k: proc_of(v, k) == m.
                            let v = ((u64::from(m) + u64::from(n_procs) * k
                                - (k * u64::from(sched.rotation)) % u64::from(n_procs))
                                % u64::from(n_procs)) as usize;
                            for &i in &by_vproc[v] {
                                let p = &sched.iteration.placements[i];
                                if stopped[p.task.0] {
                                    continue;
                                }
                                let body = Arc::clone(&tasks[p.task.0]);
                                if body.process(Timestamp(k), p.chunk).is_err() {
                                    stopped[p.task.0] = true;
                                }
                            }
                            if stopped.iter().all(|&s| s) {
                                return;
                            }
                        }
                    })
                    // INVARIANT: startup-only (before any frame flows), not
                    // on the steady-state frame path.
                    .expect("spawn master thread at startup");
            }
        });
        app.measure.stats(warmup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::TrackerConfig;
    use crate::exec_online::OnlineExecutor;
    use cds_core::optimal::{optimal_schedule, OptimalConfig};
    use cds_core::pipeline::naive_pipeline;
    use cluster::ClusterSpec;
    use taskgraph::{builders, AppState};

    #[test]
    fn pipeline_schedule_executes_correctly() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(2);
        let sched = naive_pipeline(&g, &c, &AppState::new(2));
        let app = TrackerApp::build(&TrackerConfig::small(2, 5), None);
        let stats = ScheduledExecutor::run(&app, &sched, 0);
        assert_eq!(stats.frames_completed, 5);
        let mut seen: Vec<u64> = app.face.observations().iter().map(|&(ts, _)| ts).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn optimal_schedule_with_chunks_executes_correctly() {
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(4);
        let state = AppState::new(4);
        let r = optimal_schedule(&g, &c, &state, &OptimalConfig::default());
        // Configure the app's fixed decomposition to match the schedule.
        let t4 = g.task_by_name("Target Detection").unwrap();
        let decomp = r
            .best
            .iteration
            .decomp
            .get(&t4)
            .copied()
            .unwrap_or(taskgraph::Decomposition::NONE);
        let mut cfg = TrackerConfig::small(4, 5);
        cfg.decomposition = (decomp.fp, decomp.mp);
        cfg.channel_capacity = 2 + r.best.overlapping_iterations() as usize;
        let app = TrackerApp::build(&cfg, None);
        let stats = ScheduledExecutor::run(&app, &r.best, 0);
        assert_eq!(stats.frames_completed, 5);
    }

    #[test]
    fn scheduled_results_match_online_results() {
        // Same frames, same detections, regardless of execution strategy.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(3);
        let sched = naive_pipeline(&g, &c, &AppState::new(2));

        let online = TrackerApp::build(&TrackerConfig::small(2, 4), None);
        let _ = OnlineExecutor::run(&online, 0);
        let scheduled = TrackerApp::build(&TrackerConfig::small(2, 4), None);
        let _ = ScheduledExecutor::run(&scheduled, &sched, 0);

        let mut a = online.face.observations();
        let mut b = scheduled.face.observations();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_mapping_covers_every_placement_once() {
        // Pure mapping check: for each iteration, the union over masters of
        // executed placements equals the placement set.
        let g = builders::color_tracker();
        let c = ClusterSpec::single_node(3);
        let sched = naive_pipeline(&g, &c, &AppState::new(1));
        let n_procs = sched.n_procs;
        for k in 0..7u64 {
            let mut covered = vec![false; sched.iteration.placements.len()];
            for m in 0..n_procs {
                let v = ((u64::from(m) + u64::from(n_procs) * k
                    - (k * u64::from(sched.rotation)) % u64::from(n_procs))
                    % u64::from(n_procs)) as u32;
                for (i, p) in sched.iteration.placements.iter().enumerate() {
                    if p.proc.0 == v {
                        assert_eq!(sched.proc_of(p, k).0, m, "mapping inverse");
                        covered[i] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&c| c), "iteration {k} incomplete");
        }
    }
}
