//! Deterministic fault injection for the live pipeline.
//!
//! The whole point of the panic-free runtime is unprovable without faults
//! to survive, so this module injects them *deterministically*: a
//! [`FaultPlan`] names exactly which faults hit which `(stage, frame)`
//! coordinates (or which worker-pool job ordinals), either hand-built or
//! seeded from a PRNG, and the built [`FaultInjector`] fires each planned
//! fault exactly once while counting what it actually injected. A harness
//! can then assert the run's health ledger equals the injected counts —
//! fault-for-fault, not approximately.
//!
//! Four fault kinds, mirroring the stream-failure taxonomy of the adaptive
//! stream-scheduling literature (stragglers, task failures, misreported
//! state):
//!
//! * **STM errors** — a stage's input `get` is made to fail with an error
//!   end-of-stream semantics don't cover; the stage must drop the frame.
//! * **Task delays** — a stage sleeps before processing a frame
//!   (a straggler); delays under the latency budget must be absorbed
//!   bit-identically, delays over it must cost exactly one frame.
//! * **Worker panics** — the shared data-parallel pool's handler panics on
//!   chosen job ordinals; the pool must contain the panic and the joiner
//!   must recompute the lost chunk.
//! * **Regime misreads** — the people-count fed to the regime controller is
//!   falsified for chosen frames; decompositions may switch but output must
//!   not change, and out-of-table states must clamp.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::Stage;

/// Which of a plan's fault kinds a fired-once key belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Kind {
    Stm,
    Delay,
    Slow,
}

/// A deterministic fault schedule. Build one by hand for targeted tests or
/// with [`FaultPlan::seeded`] for randomized (but reproducible) mixes, then
/// [`build`](FaultPlan::build) it into the injector the tracker consumes.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    stm_errors: BTreeSet<(Stage, u64)>,
    delays: BTreeMap<(Stage, u64), Duration>,
    slows: BTreeMap<(Stage, u64), Duration>,
    panic_jobs: BTreeSet<u64>,
    misreads: BTreeMap<u64, u32>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fail the input `get` of `stage` at frame `ts` with an unexpected STM
    /// error. The stage must drop exactly that frame.
    #[must_use]
    pub fn stm_error(mut self, stage: Stage, ts: u64) -> Self {
        self.stm_errors.insert((stage, ts));
        self
    }

    /// Sleep `d` before `stage` processes frame `ts` (a straggler).
    #[must_use]
    pub fn delay(mut self, stage: Stage, ts: u64, d: Duration) -> Self {
        self.delays.insert((stage, ts), d);
        self
    }

    /// Stretch `stage`'s *compute* section by `d` at frame `ts`: the sleep
    /// happens inside the measured stage-cost window, so it shows up as
    /// genuine per-stage cost drift to the conformance checker and the
    /// adaptation loop's cost feed — unlike [`delay`](Self::delay), which
    /// fires before the stage's input gets and models a straggler *arrival*.
    #[must_use]
    pub fn slow(mut self, stage: Stage, ts: u64, d: Duration) -> Self {
        self.slows.insert((stage, ts), d);
        self
    }

    /// Sustained cost drift: [`slow`](Self::slow) applied to every frame in
    /// `from..to`. Injected faults fire once per coordinate, so a drift
    /// *window* needs one entry per frame — this is that loop.
    #[must_use]
    pub fn slow_window(mut self, stage: Stage, from: u64, to: u64, d: Duration) -> Self {
        for ts in from..to {
            self.slows.insert((stage, ts), d);
        }
        self
    }

    /// Panic the worker-pool handler on its `ordinal`-th job (0-based,
    /// counted across all submissions in arrival order at the handler).
    #[must_use]
    pub fn panic_job(mut self, ordinal: u64) -> Self {
        self.panic_jobs.insert(ordinal);
        self
    }

    /// Report `count` people to the regime controller at frame `ts`
    /// instead of the detector's real observation. The tracker's own
    /// output log keeps the true count — only the controller is lied to.
    #[must_use]
    pub fn misread(mut self, ts: u64, count: u32) -> Self {
        self.misreads.insert(ts, count);
        self
    }

    /// A reproducible random mix over `n_frames` frames: `n_stm` STM
    /// errors, `n_delays` sub-budget delays (≤ `max_delay`), `n_panics`
    /// worker panics on early job ordinals, and `n_misreads` falsified
    /// counts. Each faulted frame receives at most one frame-dropping
    /// fault, so drop accounting stays exact.
    #[must_use]
    pub fn seeded(
        seed: u64,
        n_frames: u64,
        n_stm: usize,
        n_delays: usize,
        n_panics: usize,
        n_misreads: usize,
        max_delay: Duration,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        // Injectable stages for get-side faults (the digitizer has no input
        // gets; its only injectable fault is a delay).
        const GET_STAGES: [Stage; 5] = [
            Stage::Histogram,
            Stage::Change,
            Stage::Detect,
            Stage::Peak,
            Stage::Face,
        ];
        let mut free_ts: Vec<u64> = (0..n_frames).collect();
        let take_ts = |rng: &mut StdRng, free: &mut Vec<u64>| -> Option<u64> {
            if free.is_empty() {
                return None;
            }
            let i = rng.random_range(0..free.len());
            Some(free.swap_remove(i))
        };
        for _ in 0..n_stm {
            if let Some(ts) = take_ts(&mut rng, &mut free_ts) {
                let stage = GET_STAGES[rng.random_range(0..GET_STAGES.len())];
                plan = plan.stm_error(stage, ts);
            }
        }
        for _ in 0..n_delays {
            // Delays stay on distinct frames too, so an absorbed delay can
            // never race a dropping fault at the same coordinate.
            if let Some(ts) = take_ts(&mut rng, &mut free_ts) {
                let stage = GET_STAGES[rng.random_range(0..GET_STAGES.len())];
                let d = Duration::from_micros(rng.random_range(1..=max_delay.as_micros() as u64));
                plan = plan.delay(stage, ts, d);
            }
        }
        for k in 0..n_panics {
            // Early, distinct ordinals: every plan's panics actually fire
            // as long as the run submits a handful of jobs per frame.
            let ordinal = k as u64 * 3 + rng.random_range(0..3u64);
            plan = plan.panic_job(ordinal);
        }
        for _ in 0..n_misreads {
            if let Some(ts) = take_ts(&mut rng, &mut free_ts) {
                plan = plan.misread(ts, rng.random_range(0..16u32));
            }
        }
        plan
    }

    /// Frames a run of this plan will fail to complete, assuming every
    /// planned delay is below the latency budget: exactly the STM-error
    /// frames (panics are recomputed inline, misreads don't drop, absorbed
    /// delays don't drop).
    #[must_use]
    pub fn dropped_frames(&self) -> BTreeSet<u64> {
        self.stm_errors.iter().map(|&(_, ts)| ts).collect()
    }

    /// Expected cascaded deadline skips: a frame dropped at stage `k`
    /// starves each stage strictly downstream of `k` once.
    #[must_use]
    pub fn expected_deadline_skips(&self) -> u64 {
        self.stm_errors
            .iter()
            .map(|&(stage, _)| stage.downstream_depth())
            .sum()
    }

    /// Number of planned STM errors.
    #[must_use]
    pub fn n_stm_errors(&self) -> u64 {
        self.stm_errors.len() as u64
    }

    /// Number of planned worker panics.
    #[must_use]
    pub fn n_panics(&self) -> u64 {
        self.panic_jobs.len() as u64
    }

    /// Number of planned misreads.
    #[must_use]
    pub fn n_misreads(&self) -> u64 {
        self.misreads.len() as u64
    }

    /// Number of planned delays.
    #[must_use]
    pub fn n_delays(&self) -> u64 {
        self.delays.len() as u64
    }

    /// Number of planned compute slowdowns.
    #[must_use]
    pub fn n_slows(&self) -> u64 {
        self.slows.len() as u64
    }

    /// Largest planned panic ordinal, if any (the run must submit more
    /// pool jobs than this for every planned panic to fire).
    #[must_use]
    pub fn max_panic_ordinal(&self) -> Option<u64> {
        self.panic_jobs.iter().next_back().copied()
    }

    /// Freeze the plan into a shareable injector.
    #[must_use]
    pub fn build(self) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan: self,
            job_ordinal: AtomicU64::new(0),
            fired: Mutex::new(BTreeSet::new()),
            injected_stm: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
            injected_slows: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_misreads: AtomicU64::new(0),
        })
    }
}

/// Counts of faults an injector has actually fired so far.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InjectedCounts {
    /// STM get errors synthesized.
    pub stm_errors: u64,
    /// Delays slept.
    pub delays: u64,
    /// Compute slowdowns slept (cost-drift injection).
    pub slows: u64,
    /// Worker-pool jobs panicked.
    pub panics: u64,
    /// Regime observations falsified.
    pub misreads: u64,
}

/// A frozen [`FaultPlan`] plus fired-once bookkeeping. The runtime probes
/// it at each injection point; every planned fault fires at most once, and
/// [`injected`](Self::injected) reports exact counts for the harness.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    job_ordinal: AtomicU64,
    fired: Mutex<BTreeSet<(Kind, Stage, u64)>>,
    injected_stm: AtomicU64,
    injected_delays: AtomicU64,
    injected_slows: AtomicU64,
    injected_panics: AtomicU64,
    injected_misreads: AtomicU64,
}

impl FaultInjector {
    fn fire_once(&self, kind: Kind, stage: Stage, ts: u64) -> bool {
        self.fired.lock().insert((kind, stage, ts))
    }

    /// Should `stage`'s input get at frame `ts` fail with an injected STM
    /// error? True exactly once per planned coordinate.
    pub fn stm_error(&self, stage: Stage, ts: u64) -> bool {
        if self.plan.stm_errors.contains(&(stage, ts)) && self.fire_once(Kind::Stm, stage, ts) {
            self.injected_stm.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Apply any planned delay for `stage` at frame `ts` (sleeps inline,
    /// once per coordinate).
    pub fn delay(&self, stage: Stage, ts: u64) {
        if let Some(&d) = self.plan.delays.get(&(stage, ts)) {
            if self.fire_once(Kind::Delay, stage, ts) {
                self.injected_delays.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(d);
            }
        }
    }

    /// Apply any planned compute slowdown for `stage` at frame `ts`
    /// (sleeps inline inside the stage's measured compute window, once per
    /// coordinate).
    pub fn compute_slow(&self, stage: Stage, ts: u64) {
        if let Some(&d) = self.plan.slows.get(&(stage, ts)) {
            if self.fire_once(Kind::Slow, stage, ts) {
                self.injected_slows.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(d);
            }
        }
    }

    /// The falsified people-count for frame `ts`, if planned (fires every
    /// time it is consulted; the sink consults once per frame).
    pub fn misread(&self, ts: u64) -> Option<u32> {
        let bogus = self.plan.misreads.get(&ts).copied();
        if bogus.is_some() {
            self.injected_misreads.fetch_add(1, Ordering::SeqCst);
        }
        bogus
    }

    /// Called by the pool handler wrapper on every job; panics on planned
    /// ordinals. The panic happens *after* the count is recorded, so the
    /// ledger survives the unwind.
    pub fn maybe_panic_job(&self) {
        let ordinal = self.job_ordinal.fetch_add(1, Ordering::SeqCst);
        if self.plan.panic_jobs.contains(&ordinal) {
            self.injected_panics.fetch_add(1, Ordering::SeqCst);
            // fault-injection: this panic is the *input* of the containment
            // test, deliberately thrown inside the pool handler.
            panic!("injected worker panic at job ordinal {ordinal}");
        }
    }

    /// Exact counts of faults fired so far.
    #[must_use]
    pub fn injected(&self) -> InjectedCounts {
        InjectedCounts {
            stm_errors: self.injected_stm.load(Ordering::SeqCst),
            delays: self.injected_delays.load(Ordering::SeqCst),
            slows: self.injected_slows.load(Ordering::SeqCst),
            panics: self.injected_panics.load(Ordering::SeqCst),
            misreads: self.injected_misreads.load(Ordering::SeqCst),
        }
    }

    /// The plan this injector was built from.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stm_errors_fire_exactly_once() {
        let inj = FaultPlan::new()
            .stm_error(Stage::Histogram, 3)
            .stm_error(Stage::Peak, 5)
            .build();
        assert!(!inj.stm_error(Stage::Histogram, 2));
        assert!(inj.stm_error(Stage::Histogram, 3));
        assert!(!inj.stm_error(Stage::Histogram, 3), "fires once");
        assert!(inj.stm_error(Stage::Peak, 5));
        assert_eq!(inj.injected().stm_errors, 2);
    }

    #[test]
    fn delays_sleep_once() {
        let inj = FaultPlan::new()
            .delay(Stage::Detect, 1, Duration::from_millis(5))
            .build();
        let t0 = std::time::Instant::now();
        inj.delay(Stage::Detect, 1);
        assert!(t0.elapsed() >= Duration::from_millis(5));
        let t1 = std::time::Instant::now();
        inj.delay(Stage::Detect, 1); // second call: no sleep
        assert!(t1.elapsed() < Duration::from_millis(5));
        assert_eq!(inj.injected().delays, 1);
    }

    #[test]
    fn slows_sleep_once_per_window_frame() {
        let inj = FaultPlan::new()
            .slow_window(Stage::Change, 2, 4, Duration::from_millis(3))
            .build();
        assert_eq!(inj.plan().n_slows(), 2);
        let t0 = std::time::Instant::now();
        inj.compute_slow(Stage::Change, 2);
        assert!(t0.elapsed() >= Duration::from_millis(3));
        let t1 = std::time::Instant::now();
        inj.compute_slow(Stage::Change, 2); // already fired
        inj.compute_slow(Stage::Change, 9); // never planned
        assert!(t1.elapsed() < Duration::from_millis(3));
        assert_eq!(inj.injected().slows, 1);
    }

    #[test]
    fn job_ordinals_panic_as_planned() {
        let inj = FaultPlan::new().panic_job(1).build();
        inj.maybe_panic_job(); // ordinal 0: fine
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.maybe_panic_job()));
        assert!(r.is_err(), "ordinal 1 panics");
        inj.maybe_panic_job(); // ordinal 2: fine
        assert_eq!(inj.injected().panics, 1);
    }

    #[test]
    fn misreads_report_bogus_counts() {
        let inj = FaultPlan::new().misread(4, 11).build();
        assert_eq!(inj.misread(3), None);
        assert_eq!(inj.misread(4), Some(11));
        assert_eq!(inj.injected().misreads, 1);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_disjoint() {
        let a = FaultPlan::seeded(42, 64, 4, 3, 2, 2, Duration::from_millis(2));
        let b = FaultPlan::seeded(42, 64, 4, 3, 2, 2, Duration::from_millis(2));
        assert_eq!(a.stm_errors, b.stm_errors);
        assert_eq!(a.delays, b.delays);
        assert_eq!(a.panic_jobs, b.panic_jobs);
        assert_eq!(a.misreads, b.misreads);
        assert_eq!(a.n_stm_errors(), 4);
        assert_eq!(a.n_panics(), 2);
        // Frame-dropping faults, delays, and misreads live on distinct
        // frames.
        let mut all: Vec<u64> = a
            .stm_errors
            .iter()
            .map(|&(_, ts)| ts)
            .chain(a.delays.keys().map(|&(_, ts)| ts))
            .chain(a.misreads.keys().copied())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "faulted frames are distinct");
        let c = FaultPlan::seeded(43, 64, 4, 3, 2, 2, Duration::from_millis(2));
        assert_ne!(a.stm_errors, c.stm_errors, "different seed, different plan");
    }

    #[test]
    fn drop_accounting_matches_plan() {
        let plan = FaultPlan::new()
            .stm_error(Stage::Histogram, 2) // cascades 3 skips
            .stm_error(Stage::Peak, 7); // cascades 1 skip
        assert_eq!(
            plan.dropped_frames().into_iter().collect::<Vec<_>>(),
            vec![2, 7]
        );
        assert_eq!(plan.expected_deadline_skips(), 4);
        assert_eq!(plan.max_panic_ordinal(), None);
    }
}
