//! Multi-tenant tracker fleet: many independent streams on one shared
//! runtime, with a *dynamic* tenant lifecycle.
//!
//! Each tenant is a full [`TrackerApp`] — its own STM channels, regime
//! controller, health ledger, and measurement store — but heavy compute is
//! multiplexed onto **one** shared [`WorkerPool`], buffers recycle through
//! **one** bounded pair of freelists, and every tenant's schedule table is
//! built through **one** [`SharedScheduleCache`], so a thousand tenants in
//! the same regime pay for a single branch-and-bound search.
//!
//! The fleet is a living system ([`Fleet`]): streams [`attach`](Fleet::attach)
//! and [`detach`](Fleet::detach) *mid-run*. An arrival goes through the EWMA
//! admission gate against current measured utilization; a departure drains
//! the tenant's in-flight frames, releases its freelist buffers and shared
//! schedule-cache locks, and leaves a final rollup behind. Previously
//! rejected streams sit in a retry queue and are re-admitted once
//! utilization drops a hysteresis band below the admission threshold
//! ([`FleetConfig::readmit`]).
//!
//! Mechanisms that keep the fleet honest under load:
//!
//! - **Admission control**: once the measured pool utilization plus the
//!   marginal cost of one more stream would cross
//!   [`FleetConfig::max_utilization`], arrivals are *rejected* instead of
//!   degrading everyone ("admission rejections, not fleet-wide misses").
//! - **Priority classes**: every tenant carries a
//!   [`PriorityClass`] wired into the pool's class-ordered lanes — a
//!   `Guaranteed` tenant's chunks overtake any `BestEffort` backlog, and
//!   under pressure `BestEffort` tenants degrade to skip-commit (load
//!   shedding) instead of inflating the neighbors' p99.
//! - **Weighted fairness**: a monitor thread samples each tenant's frame
//!   backlog; a (non-BestEffort) tenant behind its deadline budget gets its
//!   boost flag set, which routes its pool jobs onto the urgent lane until
//!   it catches up.
//! - **Containment**: a faulting tenant degrades through its own
//!   [`StageCtx`](crate::tasks::StageCtx) ladder and health ledger; other
//!   tenants' outputs stay bit-identical to solo runs (the isolation tests
//!   assert exactly that).
//!
//! Observability composes per tenant: each tenant's span
//! [`Recorder`](obs::Recorder) drains into one Chrome trace under its own
//! `pid`, so a single `chrome://tracing` load shows the whole fleet side by
//! side, and the schedule-conformance checker runs per tenant with a
//! fleet-level rollup.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cds_core::optimal::OptimalConfig;
use cds_core::sharedcache::SharedScheduleCache;
use cds_core::table::ScheduleTable;
use cluster::ClusterSpec;
use obs::{ChromeTrace, RegimeSpec};
use parking_lot::{Condvar, Mutex};
use taskgraph::{builders, AppState, TaskGraph, TaskId};
use vision::{BitMask, Frame, Scene};

use crate::app::{SharedResources, TrackerApp, TrackerConfig};
use crate::error::HealthReport;
use crate::exec_online::OnlineExecutor;
use crate::faults::FaultInjector;
use crate::frame_pool::BufPool;
use crate::lifecycle::{self, AttachOutcome, LifecycleState, TenantSpec};
use crate::measure::{Measurements, RunStats};
use crate::pool::{PriorityClass, WorkerPool};
use crate::regime_rt::RegimeController;
use crate::tasks::PoolJob;

/// Configuration of a fleet run: one tracker template plus the fleet-level
/// knobs (pool size, deadline budget, admission threshold, fairness and
/// lifecycle policy).
#[derive(Clone)]
pub struct FleetConfig {
    /// Per-tenant tracker template. Each tenant clones this with its own
    /// seed (`base.seed + tenant`); `pool_workers` and `recycle_buffers`
    /// on the template are superseded by the fleet's shared resources.
    pub base: TrackerConfig,
    /// Number of streams asking to run (used by [`run_fleet`]; a [`Fleet`]
    /// driven through [`attach`](Fleet::attach) ignores it).
    pub tenants: usize,
    /// Width of the one shared worker pool.
    pub pool_workers: usize,
    /// Per-tenant frame-deadline budget: the p99 criterion, and the STM
    /// input-wait watchdog for every tenant stage.
    pub deadline: Duration,
    /// Admission threshold: a tenant is rejected when measured pool
    /// utilization plus the marginal utilization of one more stream
    /// (utilization ÷ running streams) would exceed this.
    pub max_utilization: f64,
    /// Streams admitted unconditionally before the utilization probe
    /// applies (there is no signal to measure before the first stream).
    pub min_admitted: usize,
    /// Pacing between admission decisions — long enough for the monitor to
    /// sample the marginal load of the previous admission.
    pub admit_interval: Duration,
    /// Monitor sampling period (utilization + per-tenant backlog).
    pub monitor_tick: Duration,
    /// Backlog (frames digitized but not completed) at or above which a
    /// tenant's pool jobs ride the urgent lane.
    pub boost_backlog: u64,
    /// Completed frames excluded from each tenant's statistics.
    pub warmup: usize,
    /// Per-tenant fault injection, indexed by tenant (missing/`None`
    /// entries inject nothing). Faults ride the tenant's own
    /// [`StageCtx`](crate::tasks::StageCtx)
    /// so they perturb only that tenant.
    pub tenant_faults: Vec<Option<Arc<FaultInjector>>>,
    /// Regimes (model counts) every tenant's schedule table covers. Empty
    /// defaults to the template's target count.
    pub regimes: Vec<u32>,
    /// Weight bound of the shared cross-tenant schedule cache.
    pub cache_weight: usize,
    /// Idle-buffer bound of each shared freelist; `0` derives a bound from
    /// the template's channel capacity.
    pub buf_slots: usize,
    /// Re-admission loop: when `true`, rejected streams enter a retry
    /// queue and are re-attached once EWMA utilization drops below
    /// `max_utilization - readmit_hysteresis`. Off by default — a plain
    /// [`run_fleet`] keeps the PR 8 reject-is-final semantics.
    pub readmit: bool,
    /// Hysteresis band of the re-admission gate (see
    /// [`lifecycle::readmit_ready`]): prevents admit/reject flapping when
    /// utilization hovers at the knee.
    pub readmit_hysteresis: f64,
    /// Shed threshold for `BestEffort` tenants: while EWMA utilization
    /// exceeds this, their digitizers skip-commit frames instead of
    /// rendering. `f64::INFINITY` disables shedding.
    pub shed_utilization: f64,
    /// Hysteresis band of the shed gate (release only below
    /// `shed_utilization - shed_hysteresis`).
    pub shed_hysteresis: f64,
}

impl FleetConfig {
    /// A small, fast fleet suitable for tests: tiny frames, a 2-worker
    /// pool, generous deadline, admission effectively open, lifecycle
    /// extras (re-admission, shedding) off.
    #[must_use]
    pub fn small(tenants: usize, n_frames: u64) -> Self {
        let mut base = TrackerConfig::small(2, n_frames);
        base.period = Duration::from_millis(2);
        FleetConfig {
            base,
            tenants,
            pool_workers: 2,
            deadline: Duration::from_secs(5),
            max_utilization: 0.95,
            min_admitted: 1,
            admit_interval: Duration::from_millis(3),
            monitor_tick: Duration::from_millis(1),
            boost_backlog: 4,
            warmup: 0,
            tenant_faults: Vec::new(),
            regimes: vec![1, 2],
            cache_weight: 64,
            buf_slots: 0,
            readmit: false,
            readmit_hysteresis: 0.1,
            shed_utilization: f64::INFINITY,
            shed_hysteresis: 0.1,
        }
    }
}

/// One tenant's outcome within a fleet run.
pub struct TenantRun {
    /// Tenant index (also its Chrome-trace `pid`).
    pub tenant: usize,
    /// Whether admission control (ever) let this stream run.
    pub admitted: bool,
    /// The tenant's scheduling class.
    pub class: PriorityClass,
    /// Where the tenant ended its lifecycle.
    pub state: LifecycleState,
    /// Whether the stream was first rejected and later re-admitted by the
    /// retry loop.
    pub readmitted: bool,
    /// EWMA utilization at the moment the retry loop re-admitted the
    /// stream — by construction at most `max_utilization −
    /// readmit_hysteresis` (the no-flapping evidence).
    pub readmit_utilization: Option<f64>,
    /// Pool utilization observed at the (first) rejection decision, for
    /// tenants the gate turned away.
    pub reject_utilization: Option<f64>,
    /// The tenant's application after the run (health ledger, face logs,
    /// channels, recorder) — `None` when rejected.
    pub app: Option<TrackerApp>,
    /// The tenant's wall-clock statistics — `None` when rejected.
    pub stats: Option<RunStats>,
    /// Monitor ticks during which this tenant held the urgent lane.
    pub boost_ticks: u64,
    /// Frames the shed policy skip-committed for this tenant.
    pub sheds: u64,
}

/// A completed fleet run: per-tenant outcomes plus fleet-level signals.
pub struct FleetRun {
    /// Per-tenant outcomes, indexed by tenant.
    pub tenants: Vec<TenantRun>,
    /// Highest pool utilization any monitor sample observed.
    pub peak_utilization: f64,
    /// Mean pool utilization over all monitor samples.
    pub mean_utilization: f64,
    /// Branch-and-bound searches the shared schedule cache actually ran.
    pub cache_searches: u64,
    /// Table entries served from the shared cache's memory.
    pub cache_hits: u64,
    /// Wall time from fleet launch to the last tenant completion.
    pub wall: Duration,
    /// Jobs the shared pool executed across all tenants.
    pub pool_executed: u64,
    /// The deadline budget the run was judged against.
    pub deadline: Duration,
    /// Warmup frames excluded from per-tenant statistics.
    pub warmup: usize,
    /// Frames each admitted tenant was asked to process (the base budget;
    /// a [`TenantSpec::n_frames`] override supersedes it per tenant).
    pub n_frames: u64,
    /// The schedule table every tenant shares (built once, then served
    /// from the shared cache).
    pub table: ScheduleTable,
    /// T4 (the regime-dependent data-parallel task) in the task graph.
    pub dp_task: TaskId,
}

/// Fleet-level observability: one Chrome trace with a `pid` per tenant,
/// plus the per-tenant schedule-conformance rollup.
pub struct FleetObs {
    /// Chrome `trace.json` covering every traced tenant.
    pub trace_json: String,
    /// `(tenant, conformant)` per traced tenant.
    pub conformance: Vec<(usize, bool)>,
    /// `(tenant, bytes_now, peak_bytes)` per surviving tenant: payload
    /// bytes summed over the tenant's five STM channels, as reported by
    /// the per-channel byte weighers (bytes_now = live + retained).
    pub memory: Vec<(usize, usize, usize)>,
}

impl FleetObs {
    /// Fleet-wide channel-memory high water: the sum of every tenant's
    /// peak channel bytes.
    #[must_use]
    pub fn peak_bytes_total(&self) -> usize {
        self.memory.iter().map(|&(_, _, peak)| peak).sum()
    }
}

/// The final rollup [`Fleet::detach_and_wait`] emits once a departed
/// tenant has fully drained.
pub struct TenantRollup {
    /// Tenant index.
    pub tenant: usize,
    /// Wall-clock statistics over the frames that ran before departure.
    pub stats: RunStats,
    /// The tenant's final health ledger.
    pub health: HealthReport,
    /// Frames the shed policy skip-committed.
    pub sheds: u64,
    /// Frames the tenant digitized before the drain cut production.
    pub digitized: u64,
}

/// What the monitor tracks per admitted tenant.
struct TenantLive {
    tenant: usize,
    class: PriorityClass,
    measure: Arc<Measurements>,
    boost: Arc<AtomicBool>,
    boost_ticks: Arc<AtomicU64>,
    shed: Arc<AtomicBool>,
    shedding: bool,
}

/// One tenant's lifecycle slot: state, knobs, and (eventually) results.
struct TenantSlot {
    spec: TenantSpec,
    state: LifecycleState,
    readmitted: bool,
    readmit_utilization: Option<f64>,
    reject_utilization: Option<f64>,
    boost_ticks: Arc<AtomicU64>,
    halt: Arc<AtomicBool>,
    /// The tenant's own table handle: its `Arc<PipelinedSchedule>` clones
    /// keep the shared cache's entries locked (unevictable) while the
    /// tenant lives; taken on departure so the entries unlock.
    table: Option<ScheduleTable>,
    result: Option<(TrackerApp, RunStats)>,
}

/// Everything the fleet's threads share.
struct FleetInner {
    cfg: FleetConfig,
    workers: usize,
    pool: Arc<WorkerPool<PoolJob>>,
    frame_pool: Option<BufPool<Frame>>,
    mask_pool: Option<BufPool<BitMask>>,
    cache: SharedScheduleCache,
    graph: TaskGraph,
    cluster: ClusterSpec,
    states: Vec<AppState>,
    search: OptimalConfig,
    table: ScheduleTable,
    dp_task: TaskId,
    stop: AtomicBool,
    readmit_enabled: AtomicBool,
    util_bits: AtomicU64,
    /// (peak, sum, samples) of the EWMA utilization.
    util_acc: Mutex<(f64, f64, u64)>,
    live: Mutex<Vec<TenantLive>>,
    slots: Mutex<Vec<TenantSlot>>,
    retry: Mutex<VecDeque<usize>>,
    /// Tenant threads currently running.
    running: AtomicUsize,
    /// Wakes [`Fleet::finish`]/[`Fleet::detach_and_wait`] on any tenant
    /// completion — the condvar replacement for the old polling join.
    done_lock: Mutex<()>,
    done_cv: Condvar,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    t_start: Instant,
}

impl FleetInner {
    fn utilization(&self) -> f64 {
        f64::from_bits(self.util_bits.load(Ordering::Relaxed))
    }

    /// Mark tenant-thread completion and wake every waiter. The lock
    /// acquire/release orders the notification after a waiter's predicate
    /// check, so no completion is missed.
    fn note_done(&self) {
        self.running.fetch_sub(1, Ordering::SeqCst);
        drop(self.done_lock.lock());
        self.done_cv.notify_all();
    }

    /// Build and launch one admitted tenant (index `idx` must already hold
    /// a slot). Called from `attach` and from the monitor's retry loop.
    fn start_tenant(self: &Arc<Self>, idx: usize, readmitted: bool) {
        let cfg = &self.cfg;
        let spec = {
            let mut slots = self.slots.lock();
            let slot = &mut slots[idx];
            slot.state = LifecycleState::Admitted;
            slot.readmitted = readmitted;
            if readmitted {
                slot.readmit_utilization = Some(self.utilization());
            }
            slot.spec.clone()
        };

        // The tenant's table build: a shared-cache hit for every tenant
        // after the first. Holding the table in the slot keeps the cache
        // entries locked for exactly the tenant's lifetime.
        let (tenant_table, _) = ScheduleTable::precompute_shared(
            &self.graph,
            &self.cluster,
            &self.states,
            &self.search,
            &self.cache,
            None,
        );
        let controller = RegimeController::from_schedule_table(
            &tenant_table,
            self.dp_task,
            cfg.base.n_targets as u32,
            2,
        )
        .ok()
        .map(Arc::new);

        let mut tcfg = cfg.base.clone();
        tcfg.seed = cfg.base.seed + idx as u64;
        tcfg.frame_deadline = Some(cfg.deadline);
        tcfg.pool_workers = 0; // the shared pool supersedes it
        tcfg.faults = spec.faults.clone();
        if let Some(p) = spec.period {
            tcfg.period = p;
        }
        if let Some(n) = spec.n_frames {
            tcfg.n_frames = n;
        }
        let scene = Scene::demo(tcfg.width, tcfg.height, tcfg.n_targets, tcfg.seed);

        let boost = Arc::new(AtomicBool::new(false));
        let shed = Arc::new(AtomicBool::new(false));
        let (halt, boost_ticks) = {
            let slots = self.slots.lock();
            (
                Arc::clone(&slots[idx].halt),
                Arc::clone(&slots[idx].boost_ticks),
            )
        };
        let shared = SharedResources {
            pool: Arc::clone(&self.pool),
            pool_workers: self.workers,
            frame_pool: self.frame_pool.clone(),
            mask_pool: self.mask_pool.clone(),
            boost: Arc::clone(&boost),
            class: spec.class,
            halt: Arc::clone(&halt),
            shed: Arc::clone(&shed),
        };
        let app = TrackerApp::build_shared(&tcfg, scene, controller, None, &shared);
        self.slots.lock()[idx].table = Some(tenant_table);
        self.live.lock().push(TenantLive {
            tenant: idx,
            class: spec.class,
            measure: Arc::clone(&app.measure),
            boost,
            boost_ticks,
            shed,
            shedding: false,
        });

        self.running.fetch_add(1, Ordering::SeqCst);
        let inner = Arc::clone(self);
        let warmup = cfg.warmup;
        let handle = thread::Builder::new()
            .name(format!("tenant-{idx}"))
            .spawn(move || {
                let stats = OnlineExecutor::run(&app, warmup);
                inner.finish_tenant(idx, app, stats);
            });
        match handle {
            Ok(h) => self.handles.lock().push(h),
            Err(_) => {
                // The OS refused a thread: the tenant never ran. Record it
                // as departed-with-nothing rather than wedging finish().
                let mut slots = self.slots.lock();
                slots[idx].state = LifecycleState::Departed;
                slots[idx].table = None;
                self.live.lock().retain(|t| t.tenant != idx);
                self.note_done();
            }
        }
    }

    /// Tenant thread epilogue: store results, settle the lifecycle state,
    /// release the tenant's cache locks, and wake waiters.
    fn finish_tenant(&self, idx: usize, app: TrackerApp, stats: RunStats) {
        let departed = {
            let mut slots = self.slots.lock();
            let slot = &mut slots[idx];
            let departed = slot.state == LifecycleState::Draining;
            slot.state = if departed {
                LifecycleState::Departed
            } else {
                LifecycleState::Completed
            };
            slot.result = Some((app, stats));
            // Dropping the tenant's table clones unlocks its shared-cache
            // entries (they become evictable again).
            slot.table = None;
            departed
        };
        self.live.lock().retain(|t| t.tenant != idx);
        if departed {
            // Departure releases capacity: sweep the cache so unlocked
            // entries can actually leave if the weight bound demands it.
            self.cache.release_unused();
        }
        self.note_done();
    }

    /// One monitor pass: sample utilization, drive boost/shed flags, and
    /// retry rejected streams when the re-admission gate opens.
    fn monitor_tick(self: &Arc<Self>, prev_busy: &mut u64, prev_t: &mut Instant) {
        let now = Instant::now();
        let busy = self.pool.busy_ns();
        // Raw per-tick samples are spiky — a long pool job's entire busy
        // time lands in whichever tick it completes on — so the published
        // utilization is a clamped exponential moving average; degenerate
        // windows (zero dt, zero workers) are rejected outright instead of
        // poisoning it (see `lifecycle::utilization_sample`).
        let prev = {
            let bits = self.util_bits.load(Ordering::Relaxed);
            let acc = self.util_acc.lock();
            (acc.2 > 0).then(|| f64::from_bits(bits))
        };
        if let Some(util) = lifecycle::utilization_sample(
            busy.saturating_sub(*prev_busy),
            now.duration_since(*prev_t),
            self.workers,
            prev,
        ) {
            self.util_bits.store(util.to_bits(), Ordering::Relaxed);
            let mut acc = self.util_acc.lock();
            acc.0 = acc.0.max(util);
            acc.1 += util;
            acc.2 += 1;
            *prev_busy = busy;
            *prev_t = now;
        }
        let util = self.utilization();

        for t in self.live.lock().iter_mut() {
            // Boost (urgent lane) is for tenants with service guarantees;
            // a BestEffort tenant never preempts, it sheds instead.
            let behind = t.class != PriorityClass::BestEffort
                && t.measure.backlog() >= self.cfg.boost_backlog;
            t.boost.store(behind, Ordering::Relaxed);
            if behind {
                t.boost_ticks.fetch_add(1, Ordering::Relaxed);
            }
            if t.class == PriorityClass::BestEffort {
                t.shedding = lifecycle::shed_pressure(
                    t.shedding,
                    util,
                    self.cfg.shed_utilization,
                    self.cfg.shed_hysteresis,
                );
                t.shed.store(t.shedding, Ordering::Relaxed);
            }
        }

        // Re-admission: one retry per tick, and only once utilization has
        // dropped a full hysteresis band below the admission threshold.
        if self.cfg.readmit
            && self.readmit_enabled.load(Ordering::SeqCst)
            && lifecycle::readmit_ready(util, self.cfg.max_utilization, self.cfg.readmit_hysteresis)
        {
            let next = self.retry.lock().pop_front();
            if let Some(idx) = next {
                self.start_tenant(idx, true);
            }
        }
    }
}

/// A live fleet: launch once, then [`attach`](Self::attach) and
/// [`detach`](Self::detach) tenants while it runs, and
/// [`finish`](Self::finish) to join everything into a [`FleetRun`].
pub struct Fleet {
    inner: Arc<FleetInner>,
    monitor: Option<thread::JoinHandle<()>>,
}

impl Fleet {
    /// Build the shared runtime (pool, freelists, schedule cache, fleet
    /// table) and start the monitor thread. No tenants yet.
    #[must_use]
    pub fn launch(cfg: FleetConfig) -> Fleet {
        let workers = cfg.pool_workers.max(1);
        let pool: Arc<WorkerPool<PoolJob>> = Arc::new(WorkerPool::new(workers, PoolJob::run));
        let buf_slots = if cfg.buf_slots > 0 {
            cfg.buf_slots
        } else {
            // Bounded regardless of tenant count: overflow returns are
            // dropped, shortfalls allocate fresh — correctness never
            // depends on the freelist being large enough.
            (cfg.base.channel_capacity + 2) * 4
        };
        let (frame_pool, mask_pool): (Option<BufPool<Frame>>, Option<BufPool<BitMask>>) =
            if cfg.base.recycle_buffers {
                (Some(BufPool::new(buf_slots)), Some(BufPool::new(buf_slots)))
            } else {
                (None, None)
            };

        // The cross-tenant schedule cache: this first table build searches,
        // every tenant's build is served from memory.
        let cache = SharedScheduleCache::new(cfg.cache_weight.max(1));
        let graph = builders::color_tracker();
        let cluster = ClusterSpec::single_node(4);
        let dp_task = graph
            .task_by_name("Target Detection")
            .expect("tracker graph has T4"); // INVARIANT: the builder defines T4 by this name

        let regimes: Vec<u32> = if cfg.regimes.is_empty() {
            vec![cfg.base.n_targets as u32]
        } else {
            cfg.regimes.clone()
        };
        let states: Vec<AppState> = regimes.iter().map(|&n| AppState::new(n)).collect();
        let search = OptimalConfig::default().serial();
        let (table, _) =
            ScheduleTable::precompute_shared(&graph, &cluster, &states, &search, &cache, None);

        let inner = Arc::new(FleetInner {
            cfg,
            workers,
            pool,
            frame_pool,
            mask_pool,
            cache,
            graph,
            cluster,
            states,
            search,
            table,
            dp_task,
            stop: AtomicBool::new(false),
            readmit_enabled: AtomicBool::new(true),
            util_bits: AtomicU64::new(0),
            util_acc: Mutex::new((0.0, 0.0, 0)),
            live: Mutex::new(Vec::new()),
            slots: Mutex::new(Vec::new()),
            retry: Mutex::new(VecDeque::new()),
            running: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            t_start: Instant::now(),
        });

        let m_inner = Arc::clone(&inner);
        let monitor = thread::Builder::new()
            .name("fleet-monitor".into())
            .spawn(move || {
                let mut prev_busy = m_inner.pool.busy_ns();
                let mut prev_t = Instant::now();
                while !m_inner.stop.load(Ordering::Relaxed) {
                    thread::sleep(m_inner.cfg.monitor_tick);
                    m_inner.monitor_tick(&mut prev_busy, &mut prev_t);
                }
                // Leave no tenant pinned to the urgent lane after the run.
                for t in m_inner.live.lock().iter() {
                    t.boost.store(false, Ordering::Relaxed);
                }
            })
            .ok();

        Fleet { inner, monitor }
    }

    /// Ask to run one more stream. The EWMA admission gate decides against
    /// *current* measured utilization; a rejected stream (with
    /// [`FleetConfig::readmit`] on) enters the retry queue and may be
    /// re-admitted later by the monitor.
    pub fn attach(&self, spec: TenantSpec) -> AttachOutcome {
        let inner = &self.inner;
        let util = inner.utilization();
        let (idx, admitted) = {
            let mut slots = inner.slots.lock();
            let idx = slots.len();
            let admitted = lifecycle::admit(
                util,
                inner.running.load(Ordering::SeqCst),
                idx,
                inner.cfg.min_admitted,
                inner.cfg.max_utilization,
            );
            slots.push(TenantSlot {
                spec,
                state: LifecycleState::Rejected,
                readmitted: false,
                readmit_utilization: None,
                reject_utilization: (!admitted).then_some(util),
                boost_ticks: Arc::new(AtomicU64::new(0)),
                halt: Arc::new(AtomicBool::new(false)),
                table: None,
                result: None,
            });
            (idx, admitted)
        };
        if admitted {
            inner.start_tenant(idx, false);
        } else if inner.cfg.readmit {
            inner.retry.lock().push_back(idx);
        }
        AttachOutcome {
            tenant: idx,
            admitted,
            utilization: util,
        }
    }

    /// Begin a tenant's departure: its digitizer stops at the next frame
    /// boundary and in-flight frames drain through the pipeline. Returns
    /// `false` unless the tenant is currently `Admitted`. Non-blocking;
    /// use [`detach_and_wait`](Self::detach_and_wait) for the rollup.
    pub fn detach(&self, tenant: usize) -> bool {
        let mut slots = self.inner.slots.lock();
        match slots.get_mut(tenant) {
            Some(slot) if slot.state == LifecycleState::Admitted => {
                slot.state = LifecycleState::Draining;
                slot.halt.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// [`detach`](Self::detach), then block until the tenant has fully
    /// drained (or `timeout` elapses) and emit its final rollup.
    pub fn detach_and_wait(&self, tenant: usize, timeout: Duration) -> Option<TenantRollup> {
        let already_draining = {
            let slots = self.inner.slots.lock();
            slots
                .get(tenant)
                .is_some_and(|s| s.state == LifecycleState::Draining)
        };
        if !self.detach(tenant) && !already_draining {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let inner = &self.inner;
        {
            let mut g = inner.done_lock.lock();
            loop {
                let state = inner.slots.lock()[tenant].state;
                if state == LifecycleState::Departed {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                let _ = inner.done_cv.wait_for(&mut g, deadline - now);
            }
        }
        let slots = inner.slots.lock();
        let (app, stats) = slots[tenant].result.as_ref()?;
        Some(TenantRollup {
            tenant,
            stats: *stats,
            health: app.health.report(),
            sheds: app.measure.shed_count(),
            digitized: app.measure.digitized_count(),
        })
    }

    /// The current EWMA pool utilization the admission gate sees.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.inner.utilization()
    }

    /// A tenant's current lifecycle state.
    #[must_use]
    pub fn tenant_state(&self, tenant: usize) -> Option<LifecycleState> {
        self.inner.slots.lock().get(tenant).map(|s| s.state)
    }

    /// Whether a tenant has been re-admitted by the retry loop.
    #[must_use]
    pub fn tenant_readmitted(&self, tenant: usize) -> bool {
        self.inner
            .slots
            .lock()
            .get(tenant)
            .is_some_and(|s| s.readmitted)
    }

    /// Stop re-admitting, wait (condvar, not polling) for every running
    /// tenant to finish, stop the monitor, and reduce to a [`FleetRun`].
    #[must_use]
    pub fn finish(mut self) -> FleetRun {
        let inner = &self.inner;
        inner.readmit_enabled.store(false, Ordering::SeqCst);
        inner.retry.lock().clear();
        {
            let mut g = inner.done_lock.lock();
            while inner.running.load(Ordering::SeqCst) > 0 {
                inner.done_cv.wait(&mut g);
            }
        }
        inner.stop.store(true, Ordering::SeqCst);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        for h in std::mem::take(&mut *inner.handles.lock()) {
            let _ = h.join();
        }

        let wall = inner.t_start.elapsed();
        let (peak, sum, samples) = *inner.util_acc.lock();
        let mut slots = inner.slots.lock();
        let tenants: Vec<TenantRun> = slots
            .iter_mut()
            .enumerate()
            .map(|(k, slot)| {
                let boost_ticks = slot.boost_ticks.load(Ordering::Relaxed);
                match slot.result.take() {
                    Some((app, stats)) => TenantRun {
                        tenant: k,
                        admitted: true,
                        class: slot.spec.class,
                        state: slot.state,
                        readmitted: slot.readmitted,
                        readmit_utilization: slot.readmit_utilization,
                        reject_utilization: slot.reject_utilization,
                        sheds: app.measure.shed_count(),
                        app: Some(app),
                        stats: Some(stats),
                        boost_ticks,
                    },
                    None => TenantRun {
                        tenant: k,
                        admitted: slot.state != LifecycleState::Rejected,
                        class: slot.spec.class,
                        state: slot.state,
                        readmitted: slot.readmitted,
                        readmit_utilization: slot.readmit_utilization,
                        reject_utilization: slot.reject_utilization,
                        app: None,
                        stats: None,
                        boost_ticks,
                        sheds: 0,
                    },
                }
            })
            .collect();

        FleetRun {
            tenants,
            peak_utilization: peak,
            mean_utilization: if samples > 0 {
                sum / samples as f64
            } else {
                0.0
            },
            cache_searches: inner.cache.searches(),
            cache_hits: inner.cache.hits(),
            wall,
            pool_executed: inner.pool.executed(),
            deadline: inner.cfg.deadline,
            warmup: inner.cfg.warmup,
            n_frames: inner.cfg.base.n_frames,
            table: inner.table.clone(),
            dp_task: inner.dp_task,
        }
    }
}

impl FleetRun {
    /// Streams admission control let run.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.tenants.iter().filter(|t| t.admitted).count()
    }

    /// Streams admission control turned away (and never re-admitted).
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.tenants.len() - self.admitted()
    }

    /// Deadline misses for one admitted tenant: completed frames over the
    /// budget plus frames that entered the pipeline (were digitized) but
    /// never completed. Frames a departed tenant never produced, and
    /// frames the shed policy skip-committed, are not misses — departure
    /// and shedding are policy, not failures.
    #[must_use]
    pub fn deadline_misses(&self, tenant: usize) -> u64 {
        let t = &self.tenants[tenant];
        match (&t.app, &t.stats) {
            (Some(app), Some(stats)) => {
                let over = app.measure.over_deadline(self.deadline, self.warmup);
                over + app
                    .measure
                    .digitized_count()
                    .saturating_sub(stats.frames_completed)
            }
            _ => 0,
        }
    }

    /// Admitted tenants that met the fleet SLO: every frame completed and
    /// p99 latency within the deadline budget.
    #[must_use]
    pub fn tenants_within_slo(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| {
                t.admitted
                    && t.stats.as_ref().is_some_and(|s| {
                        s.frames_completed == self.n_frames && s.p99_latency <= self.deadline
                    })
            })
            .count()
    }

    /// The per-regime predictions of the shared table, for conformance
    /// checking.
    #[must_use]
    pub fn regime_specs(&self) -> Vec<RegimeSpec> {
        self.table
            .states()
            .iter()
            .map(|s| {
                // INVARIANT: states() enumerates exactly the table's keys.
                let sched = self.table.get(s).expect("states() lists table entries");
                let decomp = sched
                    .iteration
                    .decomp
                    .get(&self.dp_task)
                    .map_or((1, 1), |d| (d.fp as u16, d.mp as u16));
                RegimeSpec {
                    regime: s.n_models,
                    predicted_latency_us: sched.latency().0,
                    ii_us: sched.ii.0,
                    occupancy_bound: sched.overlapping_iterations() as u32,
                    decomp,
                    stage_costs_us: sched
                        .iteration
                        .stage_predictions()
                        .iter()
                        .map(|p| (p.task.0 as u8, p.wall.0))
                        .collect(),
                }
            })
            .collect()
    }

    /// Drain every traced tenant's recorder into one Chrome trace (`pid` =
    /// tenant index, process name `tenant-N`) and run the per-tenant
    /// schedule-conformance check against the shared table's predictions.
    /// `None` when no tenant was traced. Recorders are drained: call once.
    #[must_use]
    pub fn observability(&self, tolerance: f64) -> Option<FleetObs> {
        let specs = self.regime_specs();
        let bound = specs.iter().map(|s| s.occupancy_bound).max().unwrap_or(1);
        let stage_names = crate::error::Stage::names();
        let mut chrome = ChromeTrace::new();
        let mut conformance = Vec::new();
        for t in &self.tenants {
            let Some(app) = &t.app else { continue };
            let Some(rec) = &app.recorder else { continue };
            let dump = rec.drain();
            chrome.push_dump(&dump, t.tenant as u32, &format!("tenant-{}", t.tenant));
            let frames = obs::frames::reconstruct(&dump);
            let channels = app.channel_checks(bound);
            let scene = &app.scene;
            let count_fn = move |ts: u64| scene.population_at(ts);
            let report = obs::conformance::check(
                &frames,
                &count_fn,
                &specs,
                &channels,
                tolerance,
                &stage_names,
            );
            conformance.push((t.tenant, report.conformant()));
        }
        if conformance.is_empty() {
            return None;
        }
        // Memory rollup covers every surviving tenant, traced or not: the
        // byte gauges come from the channels themselves, not the recorder.
        let memory = self
            .tenants
            .iter()
            .filter_map(|t| {
                let app = t.app.as_ref()?;
                let now: usize = app.channel_bytes().iter().map(|&(_, b, _)| b).sum();
                Some((t.tenant, now, app.peak_channel_bytes()))
            })
            .collect();
        Some(FleetObs {
            trace_json: chrome.to_json(),
            conformance,
            memory,
        })
    }
}

/// Run a static fleet: admit `cfg.tenants` streams one at a time under the
/// utilization probe (paced by `admit_interval` so the monitor sees each
/// admission's marginal load), let every admitted tenant run to
/// completion, and collect per-tenant statistics. This is the PR 8
/// batch-shaped entry point, now a thin wrapper over the dynamic
/// [`Fleet`] lifecycle.
#[must_use]
pub fn run_fleet(cfg: &FleetConfig) -> FleetRun {
    assert!(cfg.tenants >= 1, "a fleet needs at least one tenant");
    let fleet = Fleet::launch(cfg.clone());
    for k in 0..cfg.tenants {
        if k > 0 {
            thread::sleep(cfg.admit_interval);
        }
        let spec = TenantSpec {
            class: PriorityClass::Standard,
            faults: cfg.tenant_faults.get(k).cloned().flatten(),
            period: None,
            n_frames: None,
        };
        let _ = fleet.attach(spec);
    }
    fleet.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stage;
    use crate::faults::FaultPlan;
    use obs::TraceMode;

    #[test]
    fn fleet_runs_every_tenant_to_completion_with_one_table_search() {
        let cfg = FleetConfig::small(3, 10);
        let run = run_fleet(&cfg);
        assert_eq!(run.admitted(), 3);
        assert_eq!(run.rejected(), 0);
        for t in &run.tenants {
            let stats = t.stats.as_ref().expect("admitted tenant has stats");
            assert_eq!(stats.frames_completed, 10, "tenant {}", t.tenant);
            assert_eq!(t.state, LifecycleState::Completed);
        }
        // The tentpole cache property: the first table build searched each
        // regime once; the fleet's own build plus 3 tenant builds all hit.
        assert_eq!(run.cache_searches, cfg.regimes.len() as u64);
        assert_eq!(run.cache_hits, 3 * cfg.regimes.len() as u64);
        assert!(run.pool_executed > 0, "tenants multiplexed the shared pool");
    }

    #[test]
    fn admission_rejects_past_the_threshold() {
        // A negative threshold can never be met, so everything past
        // min_admitted is rejected — the deterministic degenerate case of
        // the utilization probe.
        let mut cfg = FleetConfig::small(4, 6);
        cfg.max_utilization = -1.0;
        cfg.min_admitted = 2;
        let run = run_fleet(&cfg);
        assert_eq!(run.admitted(), 2);
        assert_eq!(run.rejected(), 2);
        for t in &run.tenants[2..] {
            assert!(!t.admitted);
            assert_eq!(t.state, LifecycleState::Rejected);
            assert!(t.reject_utilization.is_some());
            assert!(t.app.is_none() && t.stats.is_none());
        }
        // Rejection degrades gracefully: admitted tenants still finish.
        for t in &run.tenants[..2] {
            assert_eq!(t.stats.as_ref().unwrap().frames_completed, 6);
        }
    }

    #[test]
    fn boost_flags_engage_when_every_frame_counts_as_backlog() {
        let mut cfg = FleetConfig::small(2, 12);
        cfg.boost_backlog = 0; // any backlog (even 0) holds the urgent lane
        let run = run_fleet(&cfg);
        for t in &run.tenants {
            assert_eq!(t.stats.as_ref().unwrap().frames_completed, 12);
            assert!(t.boost_ticks > 0, "tenant {} never boosted", t.tenant);
        }
    }

    #[test]
    fn faulted_tenant_is_contained_and_others_match_solo_runs_bitwise() {
        let n_frames = 12u64;
        let victim = 1usize;
        let mut cfg = FleetConfig::small(3, n_frames);
        cfg.tenant_faults = vec![
            None,
            Some(
                FaultPlan::new()
                    .stm_error(Stage::Change, 3)
                    .stm_error(Stage::Detect, 7)
                    .build(),
            ),
            None,
        ];
        let run = run_fleet(&cfg);

        let victim_app = run.tenants[victim].app.as_ref().unwrap();
        assert!(
            !victim_app.health.report().is_clean(),
            "injected faults must land in the victim's ledger"
        );
        for t in run.tenants.iter().filter(|t| t.tenant != victim) {
            let app = t.app.as_ref().unwrap();
            assert!(
                app.health.report().is_clean(),
                "tenant {} ledger perturbed by tenant {victim}'s faults",
                t.tenant
            );
            // Bit-identity against a solo run of the same stream: same
            // seed, same schedule table, no fleet, no pool.
            let mut solo_cfg = cfg.base.clone();
            solo_cfg.seed = cfg.base.seed + t.tenant as u64;
            solo_cfg.frame_deadline = Some(cfg.deadline);
            let solo = TrackerApp::build(&solo_cfg, None);
            let solo_stats = OnlineExecutor::run(&solo, 0);
            assert_eq!(solo_stats.frames_completed, n_frames);
            let mut fleet_locs = app.face.locations();
            let mut solo_locs = solo.face.locations();
            fleet_locs.sort_by_key(|(ts, _)| *ts);
            solo_locs.sort_by_key(|(ts, _)| *ts);
            assert_eq!(
                fleet_locs, solo_locs,
                "tenant {} diverged from its solo run",
                t.tenant
            );
        }
    }

    #[test]
    fn fleet_trace_interleaves_tenants_by_pid_and_conformance_rolls_up() {
        let mut cfg = FleetConfig::small(2, 8);
        cfg.base.trace = Some(TraceMode::Full);
        let run = run_fleet(&cfg);
        let obs = run.observability(50.0).expect("both tenants were traced");
        assert_eq!(obs.conformance.len(), 2);
        assert!(obs.trace_json.contains("tenant-0"));
        assert!(obs.trace_json.contains("tenant-1"));
        let events = obs::chrome::validate(&obs.trace_json).expect("trace must parse");
        assert!(events > 0);
    }

    #[test]
    fn detach_drains_and_emits_a_rollup() {
        // A long stream (high frame budget, real period) is detached
        // mid-run: it must settle as Departed with a coherent rollup, and
        // a co-tenant must be untouched.
        let cfg = FleetConfig::small(0, 400);
        let fleet = Fleet::launch(cfg);
        let a = fleet.attach(TenantSpec::default());
        let b = fleet.attach(TenantSpec {
            n_frames: Some(12),
            ..TenantSpec::default()
        });
        assert!(a.admitted && b.admitted);
        assert_eq!(fleet.tenant_state(a.tenant), Some(LifecycleState::Admitted));
        // Let A produce something before pulling it.
        thread::sleep(Duration::from_millis(20));
        let rollup = fleet
            .detach_and_wait(a.tenant, Duration::from_secs(30))
            .expect("tenant A drains within the budget");
        assert_eq!(rollup.tenant, a.tenant);
        assert!(
            rollup.digitized < 400,
            "detach cut production short: {} frames",
            rollup.digitized
        );
        assert_eq!(
            rollup.stats.frames_completed, rollup.digitized,
            "every digitized frame drained to completion"
        );
        assert_eq!(fleet.tenant_state(a.tenant), Some(LifecycleState::Departed));
        let run = fleet.finish();
        assert_eq!(run.tenants[b.tenant].state, LifecycleState::Completed);
        assert_eq!(
            run.tenants[b.tenant]
                .stats
                .as_ref()
                .unwrap()
                .frames_completed,
            12
        );
        assert_eq!(run.deadline_misses(a.tenant), 0, "drained ≠ missed");
        assert_eq!(run.deadline_misses(b.tenant), 0);
    }
}
