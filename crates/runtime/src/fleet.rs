//! Multi-tenant tracker fleet: many independent streams on one shared
//! runtime.
//!
//! Each tenant is a full [`TrackerApp`] — its own STM channels, regime
//! controller, health ledger, and measurement store — but heavy compute is
//! multiplexed onto **one** shared [`WorkerPool`], buffers recycle through
//! **one** bounded pair of freelists, and every tenant's schedule table is
//! built through **one** [`SharedScheduleCache`], so a thousand tenants in
//! the same regime pay for a single branch-and-bound search.
//!
//! Three mechanisms keep the fleet honest under load:
//!
//! - **Admission control**: tenants are admitted one at a time; once the
//!   measured pool utilization plus the marginal cost of one more stream
//!   would cross [`FleetConfig::max_utilization`], further streams are
//!   *rejected* instead of degrading everyone ("admission rejections, not
//!   fleet-wide misses").
//! - **Weighted fairness**: a monitor thread samples each tenant's frame
//!   backlog; a tenant behind its deadline budget gets its boost flag set,
//!   which routes its pool jobs onto the urgent lane until it catches up.
//! - **Containment**: a faulting tenant degrades through its own
//!   [`StageCtx`](crate::tasks::StageCtx) ladder and health ledger; other
//!   tenants' outputs stay bit-identical to solo runs (the isolation tests
//!   below assert exactly that).
//!
//! Observability composes per tenant: each tenant's span
//! [`Recorder`](obs::Recorder) drains
//! into one Chrome trace under its own `pid`, so a single
//! `chrome://tracing` load shows the whole fleet side by side, and the
//! schedule-conformance checker runs per tenant with a fleet-level rollup.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cds_core::optimal::OptimalConfig;
use cds_core::sharedcache::SharedScheduleCache;
use cds_core::table::ScheduleTable;
use cluster::ClusterSpec;
use obs::{ChromeTrace, RegimeSpec};
use parking_lot::Mutex;
use taskgraph::{builders, AppState, TaskId};
use vision::{BitMask, Frame, Scene};

use crate::app::{SharedResources, TrackerApp, TrackerConfig};
use crate::exec_online::OnlineExecutor;
use crate::faults::FaultInjector;
use crate::frame_pool::BufPool;
use crate::measure::{Measurements, RunStats};
use crate::pool::WorkerPool;
use crate::regime_rt::RegimeController;
use crate::tasks::PoolJob;

/// Configuration of a fleet run: one tracker template plus the fleet-level
/// knobs (pool size, deadline budget, admission threshold, fairness
/// policy).
#[derive(Clone)]
pub struct FleetConfig {
    /// Per-tenant tracker template. Each tenant clones this with its own
    /// seed (`base.seed + tenant`); `pool_workers` and `recycle_buffers`
    /// on the template are superseded by the fleet's shared resources.
    pub base: TrackerConfig,
    /// Number of streams asking to run.
    pub tenants: usize,
    /// Width of the one shared worker pool.
    pub pool_workers: usize,
    /// Per-tenant frame-deadline budget: the p99 criterion, and the STM
    /// input-wait watchdog for every tenant stage.
    pub deadline: Duration,
    /// Admission threshold: a tenant is rejected when measured pool
    /// utilization plus the marginal utilization of one more stream
    /// (utilization ÷ admitted streams) would exceed this.
    pub max_utilization: f64,
    /// Streams admitted unconditionally before the utilization probe
    /// applies (there is no signal to measure before the first stream).
    pub min_admitted: usize,
    /// Pacing between admission decisions — long enough for the monitor to
    /// sample the marginal load of the previous admission.
    pub admit_interval: Duration,
    /// Monitor sampling period (utilization + per-tenant backlog).
    pub monitor_tick: Duration,
    /// Backlog (frames digitized but not completed) at or above which a
    /// tenant's pool jobs ride the urgent lane.
    pub boost_backlog: u64,
    /// Completed frames excluded from each tenant's statistics.
    pub warmup: usize,
    /// Per-tenant fault injection, indexed by tenant (missing/`None`
    /// entries inject nothing). Faults ride the tenant's own
    /// [`StageCtx`](crate::tasks::StageCtx)
    /// so they perturb only that tenant.
    pub tenant_faults: Vec<Option<Arc<FaultInjector>>>,
    /// Regimes (model counts) every tenant's schedule table covers. Empty
    /// defaults to the template's target count.
    pub regimes: Vec<u32>,
    /// Weight bound of the shared cross-tenant schedule cache.
    pub cache_weight: usize,
    /// Idle-buffer bound of each shared freelist; `0` derives a bound from
    /// the template's channel capacity.
    pub buf_slots: usize,
}

impl FleetConfig {
    /// A small, fast fleet suitable for tests: tiny frames, a 2-worker
    /// pool, generous deadline, admission effectively open.
    #[must_use]
    pub fn small(tenants: usize, n_frames: u64) -> Self {
        let mut base = TrackerConfig::small(2, n_frames);
        base.period = Duration::from_millis(2);
        FleetConfig {
            base,
            tenants,
            pool_workers: 2,
            deadline: Duration::from_secs(5),
            max_utilization: 0.95,
            min_admitted: 1,
            admit_interval: Duration::from_millis(3),
            monitor_tick: Duration::from_millis(1),
            boost_backlog: 4,
            warmup: 0,
            tenant_faults: Vec::new(),
            regimes: vec![1, 2],
            cache_weight: 64,
            buf_slots: 0,
        }
    }
}

/// One tenant's outcome within a fleet run.
pub struct TenantRun {
    /// Tenant index (also its Chrome-trace `pid`).
    pub tenant: usize,
    /// Whether admission control let this stream run.
    pub admitted: bool,
    /// Pool utilization observed at the rejection decision, for rejected
    /// tenants.
    pub reject_utilization: Option<f64>,
    /// The tenant's application after the run (health ledger, face logs,
    /// channels, recorder) — `None` when rejected.
    pub app: Option<TrackerApp>,
    /// The tenant's wall-clock statistics — `None` when rejected.
    pub stats: Option<RunStats>,
    /// Monitor ticks during which this tenant held the urgent lane.
    pub boost_ticks: u64,
}

/// A completed fleet run: per-tenant outcomes plus fleet-level signals.
pub struct FleetRun {
    /// Per-tenant outcomes, indexed by tenant.
    pub tenants: Vec<TenantRun>,
    /// Highest pool utilization any monitor sample observed.
    pub peak_utilization: f64,
    /// Mean pool utilization over all monitor samples.
    pub mean_utilization: f64,
    /// Branch-and-bound searches the shared schedule cache actually ran.
    pub cache_searches: u64,
    /// Table entries served from the shared cache's memory.
    pub cache_hits: u64,
    /// Wall time from first admission to last tenant completion.
    pub wall: Duration,
    /// Jobs the shared pool executed across all tenants.
    pub pool_executed: u64,
    /// The deadline budget the run was judged against.
    pub deadline: Duration,
    /// Warmup frames excluded from per-tenant statistics.
    pub warmup: usize,
    /// Frames each admitted tenant was asked to process.
    pub n_frames: u64,
    /// The schedule table every tenant shares (built once, then served
    /// from the shared cache).
    pub table: ScheduleTable,
    /// T4 (the regime-dependent data-parallel task) in the task graph.
    pub dp_task: TaskId,
}

/// Fleet-level observability: one Chrome trace with a `pid` per tenant,
/// plus the per-tenant schedule-conformance rollup.
pub struct FleetObs {
    /// Chrome `trace.json` covering every traced tenant.
    pub trace_json: String,
    /// `(tenant, conformant)` per traced tenant.
    pub conformance: Vec<(usize, bool)>,
}

/// What the monitor tracks per admitted tenant.
struct TenantLive {
    tenant: usize,
    measure: Arc<Measurements>,
    boost: Arc<AtomicBool>,
    boost_ticks: Arc<AtomicU64>,
}

impl FleetRun {
    /// Streams admission control let run.
    #[must_use]
    pub fn admitted(&self) -> usize {
        self.tenants.iter().filter(|t| t.admitted).count()
    }

    /// Streams admission control turned away.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.tenants.len() - self.admitted()
    }

    /// Deadline misses for one admitted tenant: completed frames over the
    /// budget plus frames that never completed at all (skipped or lost).
    #[must_use]
    pub fn deadline_misses(&self, tenant: usize) -> u64 {
        let t = &self.tenants[tenant];
        match (&t.app, &t.stats) {
            (Some(app), Some(stats)) => {
                let over = app.measure.over_deadline(self.deadline, self.warmup);
                over + self.n_frames.saturating_sub(stats.frames_completed)
            }
            _ => 0,
        }
    }

    /// Admitted tenants that met the fleet SLO: every frame completed and
    /// p99 latency within the deadline budget.
    #[must_use]
    pub fn tenants_within_slo(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| {
                t.admitted
                    && t.stats.as_ref().is_some_and(|s| {
                        s.frames_completed == self.n_frames && s.p99_latency <= self.deadline
                    })
            })
            .count()
    }

    /// The per-regime predictions of the shared table, for conformance
    /// checking.
    #[must_use]
    pub fn regime_specs(&self) -> Vec<RegimeSpec> {
        self.table
            .states()
            .iter()
            .map(|s| {
                // INVARIANT: states() enumerates exactly the table's keys.
                let sched = self.table.get(s).expect("states() lists table entries");
                let decomp = sched
                    .iteration
                    .decomp
                    .get(&self.dp_task)
                    .map_or((1, 1), |d| (d.fp as u16, d.mp as u16));
                RegimeSpec {
                    regime: s.n_models,
                    predicted_latency_us: sched.latency().0,
                    ii_us: sched.ii.0,
                    occupancy_bound: sched.overlapping_iterations() as u32,
                    decomp,
                    stage_costs_us: sched
                        .iteration
                        .stage_predictions()
                        .iter()
                        .map(|p| (p.task.0 as u8, p.wall.0))
                        .collect(),
                }
            })
            .collect()
    }

    /// Drain every traced tenant's recorder into one Chrome trace (`pid` =
    /// tenant index, process name `tenant-N`) and run the per-tenant
    /// schedule-conformance check against the shared table's predictions.
    /// `None` when no tenant was traced. Recorders are drained: call once.
    #[must_use]
    pub fn observability(&self, tolerance: f64) -> Option<FleetObs> {
        let specs = self.regime_specs();
        let bound = specs.iter().map(|s| s.occupancy_bound).max().unwrap_or(1);
        let stage_names = crate::error::Stage::names();
        let mut chrome = ChromeTrace::new();
        let mut conformance = Vec::new();
        for t in &self.tenants {
            let Some(app) = &t.app else { continue };
            let Some(rec) = &app.recorder else { continue };
            let dump = rec.drain();
            chrome.push_dump(&dump, t.tenant as u32, &format!("tenant-{}", t.tenant));
            let frames = obs::frames::reconstruct(&dump);
            let channels = app.channel_checks(bound);
            let scene = &app.scene;
            let count_fn = move |ts: u64| scene.population_at(ts);
            let report = obs::conformance::check(
                &frames,
                &count_fn,
                &specs,
                &channels,
                tolerance,
                &stage_names,
            );
            conformance.push((t.tenant, report.conformant()));
        }
        if conformance.is_empty() {
            return None;
        }
        Some(FleetObs {
            trace_json: chrome.to_json(),
            conformance,
        })
    }
}

/// Run a fleet: admit tenants one at a time under the utilization probe,
/// multiplex every admitted tenant onto the shared pool with the monitor
/// enforcing weighted fairness, and collect per-tenant statistics.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_fleet(cfg: &FleetConfig) -> FleetRun {
    assert!(cfg.tenants >= 1, "a fleet needs at least one tenant");
    let workers = cfg.pool_workers.max(1);
    let pool: Arc<WorkerPool<PoolJob>> = Arc::new(WorkerPool::new(workers, PoolJob::run));
    let buf_slots = if cfg.buf_slots > 0 {
        cfg.buf_slots
    } else {
        // Bounded regardless of tenant count: overflow returns are dropped,
        // shortfalls allocate fresh — correctness never depends on the
        // freelist being large enough.
        (cfg.base.channel_capacity + 2) * 4
    };
    let (frame_pool, mask_pool): (Option<BufPool<Frame>>, Option<BufPool<BitMask>>) =
        if cfg.base.recycle_buffers {
            (Some(BufPool::new(buf_slots)), Some(BufPool::new(buf_slots)))
        } else {
            (None, None)
        };

    // The cross-tenant schedule cache: tenant 0's table build searches,
    // every later tenant's build is served from memory.
    let cache = SharedScheduleCache::new(cfg.cache_weight.max(1));
    let graph = builders::color_tracker();
    let cluster = ClusterSpec::single_node(4);
    let dp_task = graph
        .task_by_name("Target Detection")
        .expect("tracker graph has T4"); // INVARIANT: the builder defines T4 by this name

    let regimes: Vec<u32> = if cfg.regimes.is_empty() {
        vec![cfg.base.n_targets as u32]
    } else {
        cfg.regimes.clone()
    };
    let states: Vec<AppState> = regimes.iter().map(|&n| AppState::new(n)).collect();
    let search = OptimalConfig::default().serial();
    let (table, _) =
        ScheduleTable::precompute_shared(&graph, &cluster, &states, &search, &cache, None);

    let live: Mutex<Vec<TenantLive>> = Mutex::new(Vec::new());
    let stop = AtomicBool::new(false);
    let util_bits = AtomicU64::new(0);
    let util_acc: Mutex<(f64, f64, u64)> = Mutex::new((0.0, 0.0, 0)); // (peak, sum, samples)
    let done = AtomicUsize::new(0);

    let results: Vec<Mutex<Option<(TrackerApp, RunStats)>>> =
        (0..cfg.tenants).map(|_| Mutex::new(None)).collect();
    let mut admitted_flags = vec![false; cfg.tenants];
    let mut reject_util = vec![None; cfg.tenants];
    let t_start = Instant::now();

    thread::scope(|s| {
        // Monitor: pool utilization (busy_ns delta over wall × workers) and
        // per-tenant backlog → boost flags.
        s.spawn(|| {
            let mut prev_busy = pool.busy_ns();
            let mut prev_t = Instant::now();
            // Raw per-tick samples are spiky — a long pool job's entire
            // busy time lands in whichever tick it completes on — so the
            // published utilization is an exponential moving average.
            let mut ewma: Option<f64> = None;
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(cfg.monitor_tick);
                let now = Instant::now();
                let busy = pool.busy_ns();
                let dt = now.duration_since(prev_t).as_nanos() as f64;
                if dt > 0.0 {
                    let raw = (busy.saturating_sub(prev_busy)) as f64 / (dt * workers as f64);
                    let util = match ewma {
                        Some(prev) => 0.2 * raw + 0.8 * prev,
                        None => raw,
                    };
                    ewma = Some(util);
                    util_bits.store(util.to_bits(), Ordering::Relaxed);
                    let mut acc = util_acc.lock();
                    acc.0 = acc.0.max(util);
                    acc.1 += util;
                    acc.2 += 1;
                }
                prev_busy = busy;
                prev_t = now;
                for t in live.lock().iter() {
                    let behind = t.measure.backlog() >= cfg.boost_backlog;
                    t.boost.store(behind, Ordering::Relaxed);
                    if behind {
                        t.boost_ticks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Leave no tenant pinned to the urgent lane after the run.
            for t in live.lock().iter() {
                t.boost.store(false, Ordering::Relaxed);
            }
        });

        // Admission loop: one decision per tenant, paced so the monitor
        // sees the marginal load of the previous admission.
        let mut admitted = 0usize;
        for k in 0..cfg.tenants {
            if k > 0 {
                thread::sleep(cfg.admit_interval);
            }
            let util = f64::from_bits(util_bits.load(Ordering::Relaxed));
            if k >= cfg.min_admitted.max(1) {
                let marginal = if admitted > 0 {
                    util / admitted as f64
                } else {
                    0.0
                };
                if util + marginal > cfg.max_utilization {
                    reject_util[k] = Some(util);
                    continue;
                }
            }
            admitted += 1;
            admitted_flags[k] = true;

            // The tenant's table build: a shared-cache hit for every tenant
            // after the first.
            let (tenant_table, _) =
                ScheduleTable::precompute_shared(&graph, &cluster, &states, &search, &cache, None);
            let controller = RegimeController::from_schedule_table(
                &tenant_table,
                dp_task,
                cfg.base.n_targets as u32,
                2,
            )
            .ok()
            .map(Arc::new);

            let mut tcfg = cfg.base.clone();
            tcfg.seed = cfg.base.seed + k as u64;
            tcfg.frame_deadline = Some(cfg.deadline);
            tcfg.pool_workers = 0; // the shared pool supersedes it
            tcfg.faults = cfg.tenant_faults.get(k).cloned().flatten();
            let scene = Scene::demo(tcfg.width, tcfg.height, tcfg.n_targets, tcfg.seed);

            let boost = Arc::new(AtomicBool::new(false));
            let boost_ticks = Arc::new(AtomicU64::new(0));
            let shared = SharedResources {
                pool: Arc::clone(&pool),
                pool_workers: workers,
                frame_pool: frame_pool.clone(),
                mask_pool: mask_pool.clone(),
                boost: Arc::clone(&boost),
            };
            let app = TrackerApp::build_shared(&tcfg, scene, controller, None, &shared);
            live.lock().push(TenantLive {
                tenant: k,
                measure: Arc::clone(&app.measure),
                boost,
                boost_ticks,
            });

            let slot = &results[k];
            let done = &done;
            let warmup = cfg.warmup;
            s.spawn(move || {
                let stats = OnlineExecutor::run(&app, warmup);
                *slot.lock() = Some((app, stats));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }

        // All admitted streams have threads; stop the monitor once they all
        // finish (the scope would otherwise never join it).
        while done.load(Ordering::SeqCst) < admitted {
            thread::sleep(cfg.monitor_tick);
        }
        stop.store(true, Ordering::SeqCst);
    });

    let wall = t_start.elapsed();
    let (peak, sum, samples) = *util_acc.lock();
    let live = live.into_inner();
    let tenants: Vec<TenantRun> = (0..cfg.tenants)
        .map(|k| {
            let run = results[k].lock().take();
            let boost_ticks = live
                .iter()
                .find(|t| t.tenant == k)
                .map_or(0, |t| t.boost_ticks.load(Ordering::Relaxed));
            match run {
                Some((app, stats)) => TenantRun {
                    tenant: k,
                    admitted: true,
                    reject_utilization: None,
                    app: Some(app),
                    stats: Some(stats),
                    boost_ticks,
                },
                None => TenantRun {
                    tenant: k,
                    admitted: admitted_flags[k],
                    reject_utilization: reject_util[k],
                    app: None,
                    stats: None,
                    boost_ticks,
                },
            }
        })
        .collect();

    FleetRun {
        tenants,
        peak_utilization: peak,
        mean_utilization: if samples > 0 {
            sum / samples as f64
        } else {
            0.0
        },
        cache_searches: cache.searches(),
        cache_hits: cache.hits(),
        wall,
        pool_executed: pool.executed(),
        deadline: cfg.deadline,
        warmup: cfg.warmup,
        n_frames: cfg.base.n_frames,
        table,
        dp_task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Stage;
    use crate::faults::FaultPlan;
    use obs::TraceMode;

    #[test]
    fn fleet_runs_every_tenant_to_completion_with_one_table_search() {
        let cfg = FleetConfig::small(3, 10);
        let run = run_fleet(&cfg);
        assert_eq!(run.admitted(), 3);
        assert_eq!(run.rejected(), 0);
        for t in &run.tenants {
            let stats = t.stats.as_ref().expect("admitted tenant has stats");
            assert_eq!(stats.frames_completed, 10, "tenant {}", t.tenant);
        }
        // The tentpole cache property: the first table build searched each
        // regime once; the fleet's own build plus 3 tenant builds all hit.
        assert_eq!(run.cache_searches, cfg.regimes.len() as u64);
        assert_eq!(run.cache_hits, 3 * cfg.regimes.len() as u64);
        assert!(run.pool_executed > 0, "tenants multiplexed the shared pool");
    }

    #[test]
    fn admission_rejects_past_the_threshold() {
        // A negative threshold can never be met, so everything past
        // min_admitted is rejected — the deterministic degenerate case of
        // the utilization probe.
        let mut cfg = FleetConfig::small(4, 6);
        cfg.max_utilization = -1.0;
        cfg.min_admitted = 2;
        let run = run_fleet(&cfg);
        assert_eq!(run.admitted(), 2);
        assert_eq!(run.rejected(), 2);
        for t in &run.tenants[2..] {
            assert!(!t.admitted);
            assert!(t.reject_utilization.is_some());
            assert!(t.app.is_none() && t.stats.is_none());
        }
        // Rejection degrades gracefully: admitted tenants still finish.
        for t in &run.tenants[..2] {
            assert_eq!(t.stats.as_ref().unwrap().frames_completed, 6);
        }
    }

    #[test]
    fn boost_flags_engage_when_every_frame_counts_as_backlog() {
        let mut cfg = FleetConfig::small(2, 12);
        cfg.boost_backlog = 0; // any backlog (even 0) holds the urgent lane
        let run = run_fleet(&cfg);
        for t in &run.tenants {
            assert_eq!(t.stats.as_ref().unwrap().frames_completed, 12);
            assert!(t.boost_ticks > 0, "tenant {} never boosted", t.tenant);
        }
    }

    #[test]
    fn faulted_tenant_is_contained_and_others_match_solo_runs_bitwise() {
        let n_frames = 12u64;
        let victim = 1usize;
        let mut cfg = FleetConfig::small(3, n_frames);
        cfg.tenant_faults = vec![
            None,
            Some(
                FaultPlan::new()
                    .stm_error(Stage::Change, 3)
                    .stm_error(Stage::Detect, 7)
                    .build(),
            ),
            None,
        ];
        let run = run_fleet(&cfg);

        let victim_app = run.tenants[victim].app.as_ref().unwrap();
        assert!(
            !victim_app.health.report().is_clean(),
            "injected faults must land in the victim's ledger"
        );
        for t in run.tenants.iter().filter(|t| t.tenant != victim) {
            let app = t.app.as_ref().unwrap();
            assert!(
                app.health.report().is_clean(),
                "tenant {} ledger perturbed by tenant {victim}'s faults",
                t.tenant
            );
            // Bit-identity against a solo run of the same stream: same
            // seed, same schedule table, no fleet, no pool.
            let mut solo_cfg = cfg.base.clone();
            solo_cfg.seed = cfg.base.seed + t.tenant as u64;
            solo_cfg.frame_deadline = Some(cfg.deadline);
            let solo = TrackerApp::build(&solo_cfg, None);
            let solo_stats = OnlineExecutor::run(&solo, 0);
            assert_eq!(solo_stats.frames_completed, n_frames);
            let mut fleet_locs = app.face.locations();
            let mut solo_locs = solo.face.locations();
            fleet_locs.sort_by_key(|(ts, _)| *ts);
            solo_locs.sort_by_key(|(ts, _)| *ts);
            assert_eq!(
                fleet_locs, solo_locs,
                "tenant {} diverged from its solo run",
                t.tenant
            );
        }
    }

    #[test]
    fn fleet_trace_interleaves_tenants_by_pid_and_conformance_rolls_up() {
        let mut cfg = FleetConfig::small(2, 8);
        cfg.base.trace = Some(TraceMode::Full);
        let run = run_fleet(&cfg);
        let obs = run.observability(50.0).expect("both tenants were traced");
        assert_eq!(obs.conformance.len(), 2);
        assert!(obs.trace_json.contains("tenant-0"));
        assert!(obs.trace_json.contains("tenant-1"));
        let events = obs::chrome::validate(&obs.trace_json).expect("trace must parse");
        assert!(events > 0);
    }
}
