//! Buffer recycling for the per-frame data plane.
//!
//! Steady-state tracking allocates (and frees) a full RGB frame and a motion
//! mask every period — pure constant-factor overhead on the online path. A
//! [`BufPool`] keeps returned buffers on a freelist; producers take a
//! recycled buffer when one is idle and only allocate while the pipeline is
//! still filling. Buffers travel through STM channels as [`Pooled`] handles
//! and return to their pool automatically when the GC drops the last
//! reference, so recycling is invisible to consumers (a `Pooled<Frame>`
//! derefs to `Frame` everywhere).
//!
//! Correctness does not depend on buffer contents: every producer that
//! recycles fills the buffer completely (`Scene::render_into` writes every
//! pixel, `change_detection_into` writes every word), which is what keeps
//! pooled output bit-identical to the allocating path.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use vision::{BitMask, Frame};

/// Counters describing a pool's traffic (all monotonic except via
/// [`BufPool::stats`] snapshots).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Buffers allocated because the freelist was empty.
    pub created: u64,
    /// Takes served from the freelist (no allocation).
    pub reused: u64,
    /// Buffers returned to the freelist on drop.
    pub returned: u64,
    /// Buffers dropped on return because the freelist was at `max_idle`.
    pub discarded: u64,
}

struct PoolInner<T> {
    free: Mutex<Vec<T>>,
    max_idle: usize,
    created: AtomicU64,
    reused: AtomicU64,
    returned: AtomicU64,
    discarded: AtomicU64,
}

/// An `Arc`-based freelist of reusable buffers. Cloning shares the pool.
pub struct BufPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufPool<T> {
    fn clone(&self) -> Self {
        BufPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BufPool<T> {
    /// A pool retaining at most `max_idle` idle buffers (excess returns are
    /// dropped — the pool must not grow without bound when a pipeline
    /// drains).
    #[must_use]
    pub fn new(max_idle: usize) -> Self {
        BufPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::with_capacity(max_idle)),
                max_idle,
                created: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                returned: AtomicU64::new(0),
                discarded: AtomicU64::new(0),
            }),
        }
    }

    /// Take a recycled buffer, or build one with `make` when none is idle.
    /// The buffer's previous contents are arbitrary — the caller must fully
    /// overwrite it.
    pub fn take_or(&self, make: impl FnOnce() -> T) -> Pooled<T> {
        let recycled = self.inner.free.lock().pop();
        let buf = match recycled {
            Some(b) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.created.fetch_add(1, Ordering::Relaxed);
                make()
            }
        };
        Pooled {
            buf: Some(buf),
            pool: Arc::downgrade(&self.inner),
        }
    }

    /// Number of idle buffers currently on the freelist.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.inner.free.lock().len()
    }

    /// Snapshot of the pool's traffic counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.inner.created.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            returned: self.inner.returned.load(Ordering::Relaxed),
            discarded: self.inner.discarded.load(Ordering::Relaxed),
        }
    }
}

/// A buffer on loan from a [`BufPool`] (or detached, via
/// [`Pooled::unpooled`]). Dereferences to the buffer; returns it to the pool
/// on drop.
pub struct Pooled<T> {
    buf: Option<T>,
    pool: Weak<PoolInner<T>>,
}

impl<T> Pooled<T> {
    /// Wrap a buffer with no backing pool: drops normally. Lets unpooled and
    /// pooled producers share one channel item type.
    #[must_use]
    pub fn unpooled(buf: T) -> Self {
        Pooled {
            buf: Some(buf),
            pool: Weak::new(),
        }
    }
}

impl<T> Deref for Pooled<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // INVARIANT: `buf` is `Some` from construction until `drop` takes
        // it; no safe API can observe the vacated state.
        self.buf.as_ref().expect("buffer present until drop")
    }
}

impl<T> DerefMut for Pooled<T> {
    fn deref_mut(&mut self) -> &mut T {
        // INVARIANT: see `Deref` — `buf` is only vacated inside `drop`.
        self.buf.as_mut().expect("buffer present until drop")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Pooled<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.deref().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Pooled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.deref() == other.deref()
    }
}

impl<T> Drop for Pooled<T> {
    fn drop(&mut self) {
        let Some(buf) = self.buf.take() else { return };
        // If the pool itself is gone, just drop the buffer.
        if let Some(pool) = self.pool.upgrade() {
            let mut free = pool.free.lock();
            if free.len() < pool.max_idle {
                free.push(buf);
                drop(free);
                pool.returned.fetch_add(1, Ordering::Relaxed);
            } else {
                drop(free);
                pool.discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A recyclable RGB frame (the "Frame" channel item type).
pub type PooledFrame = Pooled<Frame>;
/// A recyclable motion mask (the "Motion Mask" channel item type).
pub type PooledMask = Pooled<BitMask>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_allocate_then_recycle() {
        let pool: BufPool<Vec<u8>> = BufPool::new(4);
        let a = pool.take_or(|| vec![1, 2, 3]);
        assert_eq!(*a, vec![1, 2, 3]);
        drop(a);
        assert_eq!(pool.idle(), 1);
        // The recycled buffer comes back dirty.
        let b = pool.take_or(|| unreachable!("must reuse"));
        assert_eq!(*b, vec![1, 2, 3]);
        let s = pool.stats();
        assert_eq!((s.created, s.reused, s.returned), (1, 1, 1));
    }

    #[test]
    fn freelist_is_capped() {
        let pool: BufPool<u64> = BufPool::new(2);
        let bufs: Vec<_> = (0..5).map(|i| pool.take_or(|| i)).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2);
        let s = pool.stats();
        assert_eq!(s.created, 5);
        assert_eq!(s.returned, 2);
        assert_eq!(s.discarded, 3);
    }

    #[test]
    fn unpooled_and_orphaned_buffers_drop_cleanly() {
        let u = Pooled::unpooled(7u32);
        assert_eq!(*u, 7);
        drop(u);
        let pool: BufPool<u32> = BufPool::new(1);
        let b = pool.take_or(|| 9);
        drop(pool);
        drop(b); // pool already gone: plain drop, no panic
    }

    #[test]
    fn deref_mut_mutates_in_place() {
        let pool: BufPool<Frame> = BufPool::new(1);
        let mut f = pool.take_or(|| Frame::new(4, 4));
        f.set_pixel(0, 0, [9, 9, 9]);
        assert_eq!(f.pixel(0, 0), [9, 9, 9]);
        drop(f);
        let g = pool.take_or(|| unreachable!());
        assert_eq!(g.pixel(0, 0), [9, 9, 9], "recycled buffer keeps contents");
    }

    #[test]
    fn steady_state_allocates_nothing() {
        // Simulated pipeline: at most 3 buffers in flight at once.
        let pool: BufPool<Vec<u8>> = BufPool::new(4);
        let mut in_flight = std::collections::VecDeque::new();
        for _ in 0..100 {
            in_flight.push_back(pool.take_or(|| vec![0; 64]));
            if in_flight.len() > 3 {
                in_flight.pop_front();
            }
        }
        let s = pool.stats();
        assert!(s.created <= 4, "steady state must recycle: {s:?}");
        assert!(s.reused >= 96);
    }
}
