//! # Stampede-like threaded runtime
//!
//! Executes the color tracker as *real* concurrent tasks over
//! [`stm`] channels — the reproduction of the paper's actual execution
//! model, where "each task is a POSIX thread" and "the channel mechanism is
//! provided by Space-Time Memory".
//!
//! Two executors are provided:
//!
//! * [`exec_online::OnlineExecutor`] — one free-running thread per task,
//!   synchronized only by blocking STM gets and channel flow control: the
//!   real-threads analogue of the paper's pthread baseline. Data-parallel
//!   tasks farm chunks to a [`pool::WorkerPool`] through the
//!   splitter/worker/joiner structure of Fig. 9.
//! * [`exec_scheduled::ScheduledExecutor`] — one *master thread per modeled
//!   processor*, each interpreting its precomputed placement sequence from a
//!   [`cds_core::PipelinedSchedule`] (the paper's §3.3 lists exactly this
//!   implementation option: "one might generate a master for each processor
//!   that controls its pre-computed processor-specific schedule").
//!   Dependences are enforced for free by blocking STM gets, so a legal
//!   schedule needs no extra synchronization.
//!
//! [`regime_rt::RegimeController`] closes the constrained-dynamism loop at
//! run time: the peak detector's people count feeds a debounced detector,
//! and the splitter "looks up the decomposition for the current state from
//! a pre-computed table" on every frame.
//!
//! Observability: attach a [`TraceMode`](obs::TraceMode) through
//! [`TrackerConfig::trace`](app::TrackerConfig) and every stage body, STM
//! get/put, pool chunk, skip, and regime switch reports spans into an
//! [`obs::Recorder`] for Chrome-trace export and schedule-conformance
//! checking (see the `obs` crate).

#![warn(missing_docs)]

pub mod adapt;
pub mod app;
pub mod error;
pub mod exec_online;
pub mod exec_scheduled;
pub mod faults;
pub mod fleet;
pub mod frame_pool;
pub mod lifecycle;
pub mod measure;
pub mod pool;
pub mod record;
pub mod regime_rt;
pub mod tasks;

pub use adapt::{
    AdaptConfig, AdaptLoop, AdaptStats, CostFeed, ReschedJob, ReschedReason, StripTuner,
};
pub use app::{SharedResources, TrackerApp, TrackerConfig};
pub use error::{HealthReport, RuntimeError, RuntimeHealth, Stage};
pub use exec_online::OnlineExecutor;
pub use exec_scheduled::ScheduledExecutor;
pub use faults::{FaultInjector, FaultPlan, InjectedCounts};
pub use fleet::{run_fleet, Fleet, FleetConfig, FleetObs, FleetRun, TenantRollup, TenantRun};
pub use frame_pool::{BufPool, PoolStats, Pooled, PooledFrame, PooledMask};
pub use lifecycle::{AttachOutcome, LifecycleState, TenantSpec};
pub use measure::{Measurements, RunStats};
pub use pool::{PoolClosed, PoolHealth, PriorityClass, WorkerPool};
pub use record::{
    record_run, record_run_with_scene, replay_config, replay_run, RecordedRun, ReplayOutcome,
};
pub use regime_rt::{RegimeController, RegimeError, ReschedSwap};
pub use tasks::{PoolJob, StageCtx, TaskBody};
