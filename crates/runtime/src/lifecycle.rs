//! Tenant lifecycle policy for the fleet: admission, re-admission with
//! hysteresis, shed pressure, and the utilization sampling math — every
//! *decision* the fleet monitor makes, as pure functions over sampled
//! numbers, so each one is unit-testable without spinning up threads.
//!
//! The state machine (see ARCHITECTURE.md §8):
//!
//! ```text
//!            attach                    detach              thread exits
//! (new) ───────────────► Admitted ────────────► Draining ─────────────► Departed
//!   │                        │                                             ▲
//!   │ gate rejects           │ runs to completion                          │
//!   ▼                        ▼                                             │
//! Rejected ──► retry queue ──► re-admitted when EWMA ≤ max − hysteresis ───┘
//!                              (Completed when never detached)
//! ```

use std::sync::Arc;
use std::time::Duration;

use crate::faults::FaultInjector;
use crate::pool::PriorityClass;

/// Ignore utilization samples whose window is shorter than this: with a
/// near-zero `dt` the busy-delta/`dt` quotient explodes (and at exactly
/// zero it is NaN/inf), which would poison the EWMA and wedge admission.
pub const MIN_SAMPLE_DT: Duration = Duration::from_micros(100);

/// Raw per-window utilization is clamped here. Values slightly above 1.0
/// are a real signal (a job longer than the tick lands its entire busy
/// time in the window it completes in), but unbounded spikes are
/// measurement artifacts, not load.
pub const MAX_RAW_UTILIZATION: f64 = 2.0;

/// EWMA smoothing factor: `util = ALPHA * raw + (1 - ALPHA) * prev`.
pub const EWMA_ALPHA: f64 = 0.2;

/// What a tenant asks for at [`attach`](crate::fleet::Fleet::attach) time.
#[derive(Clone, Default)]
pub struct TenantSpec {
    /// Scheduling class: picks the pool lane and the shed/boost policy.
    pub class: PriorityClass,
    /// Deterministic fault injection for this tenant (tests).
    pub faults: Option<Arc<FaultInjector>>,
    /// Override the fleet's base digitizer period (e.g. a period-0 hog in
    /// the churn bench). `None` inherits the base config.
    pub period: Option<Duration>,
    /// Override the fleet's base frame budget. `None` inherits.
    pub n_frames: Option<u64>,
}

impl TenantSpec {
    /// A spec for `class` with everything else inherited.
    #[must_use]
    pub fn with_class(class: PriorityClass) -> Self {
        TenantSpec {
            class,
            ..TenantSpec::default()
        }
    }
}

/// Where a tenant is in its lifecycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LifecycleState {
    /// The admission gate turned the stream away (it may sit in the retry
    /// queue awaiting re-admission).
    Rejected,
    /// Admitted and running.
    Admitted,
    /// Detached; the digitizer has stopped and in-flight frames are
    /// draining.
    Draining,
    /// Detached and fully drained: resources released, rollup final.
    Departed,
    /// Ran its whole frame budget to completion (never detached).
    Completed,
}

impl LifecycleState {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LifecycleState::Rejected => "rejected",
            LifecycleState::Admitted => "admitted",
            LifecycleState::Draining => "draining",
            LifecycleState::Departed => "departed",
            LifecycleState::Completed => "completed",
        }
    }
}

/// Outcome of one [`attach`](crate::fleet::Fleet::attach) call.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AttachOutcome {
    /// The tenant's fleet-wide index (stable across its whole lifecycle,
    /// also the seed offset for its scene).
    pub tenant: usize,
    /// Whether the admission gate let it in.
    pub admitted: bool,
    /// The EWMA utilization the gate decided against.
    pub utilization: f64,
}

/// One EWMA utilization update from a raw busy-time sample.
///
/// `busy_delta_ns` is the growth of the pool's cumulative busy time over
/// the window, `dt` the window's wall-clock length, `workers` the pool
/// width, and `prev` the previous EWMA value (`None` for the first
/// sample). Returns `None` — *sample rejected, keep the previous EWMA* —
/// for degenerate windows: `dt` below [`MIN_SAMPLE_DT`] or non-finite
/// quotients, or `workers == 0`. The raw quotient is clamped to
/// `[0, MAX_RAW_UTILIZATION]` so one absurd sample cannot poison the
/// average and wedge admission.
#[must_use]
pub fn utilization_sample(
    busy_delta_ns: u64,
    dt: Duration,
    workers: usize,
    prev: Option<f64>,
) -> Option<f64> {
    if workers == 0 || dt < MIN_SAMPLE_DT {
        return None;
    }
    let raw = busy_delta_ns as f64 / (dt.as_nanos() as f64 * workers as f64);
    if !raw.is_finite() {
        return None;
    }
    let raw = raw.clamp(0.0, MAX_RAW_UTILIZATION);
    Some(match prev {
        Some(p) => EWMA_ALPHA * raw + (1.0 - EWMA_ALPHA) * p,
        None => raw,
    })
}

/// The admission gate: would admitting one more stream, whose cost is
/// estimated as the mean per-stream utilization `util / running`, push the
/// pool past `max_utilization`? The first `min_admitted` streams (counting
/// every stream considered so far, admitted or not) bypass the gate so the
/// fleet cannot starve itself at startup.
#[must_use]
pub fn admit(
    util: f64,
    running: usize,
    considered: usize,
    min_admitted: usize,
    max_utilization: f64,
) -> bool {
    if considered < min_admitted.max(1) {
        return true;
    }
    let marginal = if running > 0 {
        util / running as f64
    } else {
        0.0
    };
    util + marginal <= max_utilization
}

/// The re-admission gate: a previously rejected stream is retried only
/// once EWMA utilization has dropped a full `hysteresis` *below* the
/// admission threshold. The band between the two thresholds is where
/// neither gate fires — that is what prevents flapping (admit at 0.849,
/// reject the next, admit again …) when utilization hovers near the knee.
#[must_use]
pub fn readmit_ready(util: f64, max_utilization: f64, hysteresis: f64) -> bool {
    util <= max_utilization - hysteresis
}

/// The shed gate for BestEffort tenants, with its own hysteresis band:
/// returns the new shed flag given the current one, engaging above
/// `shed_utilization` and releasing only below
/// `shed_utilization - hysteresis`.
#[must_use]
pub fn shed_pressure(
    currently_shedding: bool,
    util: f64,
    shed_utilization: f64,
    hysteresis: f64,
) -> bool {
    if currently_shedding {
        util > shed_utilization - hysteresis
    } else {
        util > shed_utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_samples_are_rejected_not_poisonous() {
        // Zero-length window: the quotient would be inf (or NaN with zero
        // busy) — the sample must be rejected, not folded into the EWMA.
        assert_eq!(
            utilization_sample(1_000_000, Duration::ZERO, 2, Some(0.5)),
            None
        );
        assert_eq!(utilization_sample(0, Duration::ZERO, 2, Some(0.5)), None);
        // Near-zero window below the floor: same rejection.
        assert_eq!(
            utilization_sample(1_000_000, Duration::from_nanos(50), 2, Some(0.5)),
            None
        );
        // No workers: the denominator would be zero.
        assert_eq!(
            utilization_sample(1_000_000, Duration::from_millis(1), 0, Some(0.5)),
            None
        );
    }

    #[test]
    fn spike_samples_are_clamped() {
        // A 1-second busy delta over a 1 ms window (a long job completing)
        // is a raw utilization of 1000: clamped to MAX_RAW_UTILIZATION, so
        // the EWMA moves but stays bounded.
        let u = utilization_sample(1_000_000_000, Duration::from_millis(1), 1, Some(0.0)).unwrap();
        assert!(u <= EWMA_ALPHA * MAX_RAW_UTILIZATION + 1e-12, "u={u}");
        assert!(u.is_finite());
    }

    #[test]
    fn ewma_tracks_and_decays() {
        let first = utilization_sample(500_000, Duration::from_millis(1), 1, None).unwrap();
        assert!((first - 0.5).abs() < 1e-9, "first sample seeds the EWMA");
        let mut u = first;
        for _ in 0..40 {
            u = utilization_sample(0, Duration::from_millis(1), 1, Some(u)).unwrap();
        }
        assert!(u < 0.001, "idle windows decay the EWMA toward 0: {u}");
    }

    #[test]
    fn a_wedged_ewma_recovers_because_bad_samples_never_enter() {
        // The regression this guards: feed a poisonous sequence (zero dt,
        // zero workers, absurd spikes) interleaved with honest samples —
        // the EWMA must stay finite and end up tracking the honest load.
        let mut util: Option<f64> = None;
        for _ in 0..20 {
            if let Some(u) = utilization_sample(0, Duration::ZERO, 0, util) {
                util = Some(u);
            }
            if let Some(u) = utilization_sample(u64::MAX, Duration::from_nanos(1), 3, util) {
                util = Some(u);
            }
            if let Some(u) = utilization_sample(300_000, Duration::from_millis(1), 1, util) {
                util = Some(u);
            }
        }
        let u = util.expect("honest samples were accepted");
        assert!(u.is_finite());
        assert!(
            (u - 0.3).abs() < 0.05,
            "EWMA converged to the honest 0.3 load: {u}"
        );
    }

    #[test]
    fn admission_floor_and_threshold() {
        // Below the floor every stream is admitted regardless of load.
        assert!(admit(5.0, 3, 0, 2, 0.85));
        assert!(admit(5.0, 3, 1, 2, 0.85));
        // Past the floor, the marginal-cost probe gates.
        assert!(admit(0.4, 2, 2, 2, 0.85), "0.4 + 0.2 fits under 0.85");
        assert!(!admit(0.8, 2, 2, 2, 0.85), "0.8 + 0.4 exceeds 0.85");
        // No running streams: zero marginal estimate, gate on util alone.
        assert!(admit(0.5, 0, 5, 1, 0.85));
        assert!(!admit(0.9, 0, 5, 1, 0.85));
    }

    #[test]
    fn readmission_hysteresis_does_not_flap() {
        let max = 0.85;
        let h = 0.10;
        // Utilization hovering just under the admission threshold — the
        // exact region where a hysteresis-free gate would flap (admit,
        // saturate, reject, decay, admit …). None of these may readmit.
        for &u in &[0.84, 0.80, 0.76, 0.7501] {
            assert!(
                !readmit_ready(u, max, h),
                "{u} is inside the hysteresis band: no retry"
            );
        }
        // Only a genuine load drop below max − h retries the stream.
        assert!(readmit_ready(0.75, max, h));
        assert!(readmit_ready(0.2, max, h));
    }

    #[test]
    fn shed_gate_has_its_own_band() {
        let (t, h) = (0.9, 0.2);
        assert!(
            !shed_pressure(false, 0.89, t, h),
            "below threshold: no shed"
        );
        assert!(shed_pressure(false, 0.91, t, h), "above threshold: shed");
        assert!(
            shed_pressure(true, 0.75, t, h),
            "inside the band: keep shedding"
        );
        assert!(!shed_pressure(true, 0.69, t, h), "below the band: release");
    }

    #[test]
    fn states_and_specs_label() {
        assert_eq!(LifecycleState::Draining.label(), "draining");
        assert_eq!(LifecycleState::Completed.label(), "completed");
        let spec = TenantSpec::with_class(PriorityClass::BestEffort);
        assert_eq!(spec.class, PriorityClass::BestEffort);
        assert!(spec.faults.is_none() && spec.period.is_none());
    }
}
